//! Tail-latency-aware load balancing — the paper's Search scenario (§1):
//! "a predefined set of quantiles are computed on query response times
//! across clusters and are employed by load balancers so as to meet
//! strict service-level agreements on query latency".
//!
//! Two index-serving clusters report response times; every window period
//! the balancer shifts traffic share toward the cluster with the lower
//! Q0.99. The decisions made from QLOVE's approximate quantiles are
//! compared against those an exact operator would make.
//!
//! ```text
//! cargo run --release --example search_load_balancer
//! ```

use qlove::core::{Qlove, QloveConfig};
use qlove::sketches::ExactPolicy;
use qlove::stream::QuantilePolicy;
use qlove::workloads::SearchGen;

fn main() {
    let phis = [0.5, 0.99];
    let (window, period) = (40_000, 8_000);

    // Cluster B is degraded: its response times run 25% hotter.
    let cluster_a = SearchGen::generate(1, 600_000);
    let cluster_b: Vec<u64> = SearchGen::generate(2, 600_000)
        .into_iter()
        .map(|v| (v as f64 * 1.25) as u64)
        .collect();

    let mut qlove_a = Qlove::new(QloveConfig::new(&phis, window, period));
    let mut qlove_b = Qlove::new(QloveConfig::new(&phis, window, period));
    let mut exact_a = ExactPolicy::new(&phis, window, period);
    let mut exact_b = ExactPolicy::new(&phis, window, period);

    let mut share_to_a = 0.5f64; // traffic fraction routed to cluster A
    let mut decisions = 0u32;
    let mut agreements = 0u32;

    println!("search load balancer — window {window}, period {period}\n");
    for i in 0..cluster_a.len() {
        let qa = qlove_a.push(cluster_a[i]);
        let qb = qlove_b.push(cluster_b[i]);
        let ea = exact_a.push(cluster_a[i]);
        let eb = exact_b.push(cluster_b[i]);
        let (Some(qa), Some(qb), Some(ea), Some(eb)) = (qa, qb, ea, eb) else {
            continue;
        };
        decisions += 1;

        // Route 10% more traffic toward the cluster with the lower tail.
        let approx_prefers_a = qa[1] <= qb[1];
        let exact_prefers_a = ea[1] <= eb[1];
        if approx_prefers_a == exact_prefers_a {
            agreements += 1;
        }
        share_to_a = (share_to_a + if approx_prefers_a { 0.1 } else { -0.1 }).clamp(0.1, 0.9);

        if decisions <= 6 {
            println!(
                "eval {decisions}: Q0.99 A = {} µs, B = {} µs → route {}% to A \
                 (exact would agree: {})",
                qa[1],
                qb[1],
                (share_to_a * 100.0) as u32,
                approx_prefers_a == exact_prefers_a
            );
        }
    }

    println!("\nbalancing decisions:   {decisions}");
    println!(
        "agreement with exact:  {agreements}/{decisions} ({:.1}%)",
        100.0 * agreements as f64 / decisions as f64
    );
    println!(
        "final share to A:      {:.0}% (B is the degraded cluster)",
        share_to_a * 100.0
    );
}
