//! Theorem-1 error bounds in practice: QLOVE reports a 95% confidence
//! half-width with every answer, estimated from the live data's density.
//! Dense quantiles (the median of a normal marginal) get tight, useful
//! bounds; sparse tail quantiles get honest wide ones — "otherwise the
//! error bound is not informative" (§3.2).
//!
//! ```text
//! cargo run --release --example error_bounds
//! ```

use qlove::core::{Qlove, QloveConfig};
use qlove::workloads::NormalGen;

fn main() {
    let phis = [0.1, 0.5, 0.9, 0.99];
    let (window, period) = (64_000, 8_000);

    let cfg = QloveConfig::without_fewk(&phis, window, period).quantize(None);
    let mut q = Qlove::new(cfg);

    println!("Theorem-1 bounds on N(1M, 50K²) — window {window}, period {period}\n");
    println!(
        "{:>6}  {:>10}  {:>12}  {:>10}",
        "phi", "estimate", "95% bound", "relative"
    );

    let mut printed = false;
    for v in NormalGen::paper(9).take(400_000) {
        if let Some(ans) = q.push_detailed(v) {
            if printed {
                continue; // show one evaluation in detail
            }
            printed = true;
            for (j, &phi) in phis.iter().enumerate() {
                match &ans.bounds[j] {
                    Some(b) => println!(
                        "{:>6}  {:>10}  {:>12}  {:>9.3}%",
                        phi,
                        ans.values[j],
                        format!("±{:.0}", b.half_width),
                        100.0 * b.half_width / ans.values[j] as f64
                    ),
                    None => println!(
                        "{:>6}  {:>10}  {:>12}  {:>10}",
                        phi, ans.values[j], "n/a", "-"
                    ),
                }
            }
        }
    }
    println!(
        "\nthe bound widens toward the tail (lower density f(p_φ) in the \
         denominator) and shrinks as √(n·m) with more data — exactly \
         Theorem 1's formula."
    );
}
