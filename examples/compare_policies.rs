//! Side-by-side comparison of every quantile policy in the workspace —
//! a pocket version of the paper's Table 1 you can point at any stream.
//!
//! ```text
//! cargo run --release --example compare_policies
//! ```

use qlove::core::{Qlove, QloveConfig};
use qlove::rbtree::FreqTree;
use qlove::sketches::{AmPolicy, CmqsPolicy, ExactPolicy, MomentPolicy, RandomPolicy};
use qlove::stream::QuantilePolicy;
use qlove::workloads::NetMonGen;
use std::collections::VecDeque;
use std::time::Instant;

fn main() {
    let phis = [0.5, 0.9, 0.99, 0.999];
    let (window, period, eps) = (64_000, 8_000, 0.02);
    let data = NetMonGen::generate(123, 1_000_000);

    let policies: Vec<Box<dyn QuantilePolicy>> = vec![
        Box::new(Qlove::new(QloveConfig::new(&phis, window, period))),
        Box::new(ExactPolicy::new(&phis, window, period)),
        Box::new(CmqsPolicy::new(&phis, window, period, eps)),
        Box::new(AmPolicy::new(&phis, window, period, eps)),
        Box::new(RandomPolicy::from_epsilon(&phis, window, period, eps)),
        Box::new(MomentPolicy::new(&phis, window, period, 12)),
    ];

    println!(
        "{:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "policy", "err%(.5)", "err%(.99)", "err%(.999)", "M ev/s", "space", "evals"
    );
    for mut policy in policies {
        // Exact ground truth maintained incrementally alongside.
        let mut truth: FreqTree<u64> = FreqTree::new();
        let mut live: VecDeque<u64> = VecDeque::new();
        let mut err = [0.0f64; 4];
        let mut evals = 0u32;
        let start = Instant::now();
        for &v in &data {
            truth.insert(v, 1);
            live.push_back(v);
            if live.len() > window {
                truth.remove(live.pop_front().unwrap(), 1).unwrap();
            }
            if let Some(ans) = policy.push(v) {
                evals += 1;
                for (j, &phi) in phis.iter().enumerate() {
                    let exact = truth.quantile(phi).unwrap() as f64;
                    err[j] += ((ans[j] as f64 - exact) / exact).abs() * 100.0;
                }
            }
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:>8}  {:>9.2}  {:>9.2}  {:>9.2}  {:>9.2}  {:>9}  {:>9}",
            policy.name(),
            err[0] / evals as f64,
            err[2] / evals as f64,
            err[3] / evals as f64,
            data.len() as f64 / secs / 1e6,
            policy.space_variables(),
            evals
        );
    }
    println!(
        "\n(throughput here includes the harness's own ground-truth tree; \
         use the qlove-bench binaries for clean throughput numbers)"
    );
}
