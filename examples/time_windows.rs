//! Event-time windows (§2): "evaluate the query every one minute
//! (window period) for the elements seen last one hour (window size)".
//!
//! Telemetry arrives at an irregular rate — that is the whole reason
//! time windows differ from count windows. This example replays a
//! NetMon-like stream whose arrival rate doubles during a simulated
//! incident and computes exact quantiles over "last 10 minutes,
//! evaluated per minute" windows.
//!
//! ```text
//! cargo run --release --example time_windows
//! ```

use qlove::stream::ops::ExactQuantileOp;
use qlove::stream::{Event, TimeSlidingWindow, TimeWindowSpec};
use qlove::workloads::NetMonGen;

const MINUTE: u64 = 60_000_000; // µs

fn main() {
    // Last 10 minutes, evaluated every minute, Q0.5/Q0.99.
    let spec = TimeWindowSpec::sliding(10 * MINUTE, MINUTE);
    let mut window = TimeSlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.99]), spec);

    println!("time windows — size 10 min, period 1 min (event time)\n");
    println!(
        "{:>8}  {:>9}  {:>8}  {:>8}",
        "minute", "events", "Q0.5", "Q0.99"
    );

    let mut clock: u64 = 0;
    let values = NetMonGen::generate(2025, 400_000);
    for (i, &latency) in values.iter().enumerate() {
        // Normal traffic: ~200 events/s. Minutes 12–17: an incident
        // doubles the rate and inflates latencies.
        let minute = clock / MINUTE;
        let incident = (12..17).contains(&minute);
        let gap = if incident { 2_500 } else { 5_000 }; // µs between events
        clock += gap;
        let value = if incident { latency * 3 } else { latency };

        for result in window.push(Event::new(value, clock)) {
            println!(
                "{:>8}  {:>9}  {:>8}  {:>8}{}",
                result.window_end / MINUTE,
                result.events,
                result.result[0],
                result.result[1],
                if (12..27).contains(&(result.window_end / MINUTE)) {
                    "   ← incident in window"
                } else {
                    ""
                }
            );
        }
        if clock > 30 * MINUTE || i + 1 == values.len() {
            break;
        }
    }

    println!(
        "\nnote how the per-window event count doubles during the incident \
         — a count-based window would have silently halved its time span \
         instead."
    );
}
