//! Quickstart: monitor quantiles of a latency stream with QLOVE.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's `Qmonitor` query (§5.1) in its simplest form:
//! answer Q0.5 / Q0.9 / Q0.99 / Q0.999 over a sliding window of the last
//! 80,000 latency samples, re-evaluated every 10,000 arrivals.

use qlove::core::{Qlove, QloveConfig};
use qlove::stream::QuantilePolicy;
use qlove::workloads::NetMonGen;

fn main() {
    let phis = [0.5, 0.9, 0.99, 0.999];
    let (window, period) = (80_000, 10_000);

    // Paper defaults: 3-significant-digit quantization + automatic few-k
    // tail budgets. See `QloveConfig` for the knobs.
    let config = QloveConfig::new(&phis, window, period);
    let mut monitor = Qlove::new(config);

    println!("QLOVE quickstart — window {window}, period {period}");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}  {:>8}  space",
        "event#", "Q0.5", "Q0.9", "Q0.99", "Q0.999"
    );

    for (i, latency_us) in NetMonGen::new(7).take(400_000).enumerate() {
        if let Some(q) = monitor.push(latency_us) {
            println!(
                "{:>10}  {:>8}  {:>8}  {:>8}  {:>8}  {} vars",
                i + 1,
                q[0],
                q[1],
                q[2],
                q[3],
                monitor.space_variables()
            );
        }
    }

    // The detailed API also reports provenance and Theorem-1 bounds.
    let mut detailed = Qlove::new(QloveConfig::new(&phis, window, period));
    let mut last = None;
    for v in NetMonGen::new(7).take(200_000) {
        if let Some(ans) = detailed.push_detailed(v) {
            last = Some(ans);
        }
    }
    if let Some(ans) = last {
        println!("\nlast evaluation, with provenance and 95% error bounds:");
        for (j, &phi) in phis.iter().enumerate() {
            let bound = ans.bounds[j]
                .map(|b| format!("±{:.1}", b.half_width))
                .unwrap_or_else(|| "±?".into());
            println!(
                "  Q{phi:<5} = {:>8} µs  ({:?}, {bound})",
                ans.values[j], ans.sources[j]
            );
        }
    }
}
