//! Bursty-traffic handling (§4): inject the paper's 10× burst into a
//! latency stream and watch QLOVE's runtime pipeline selection — the
//! Mann-Whitney detector flips the Q0.999 answer from Level-2 averaging
//! to sample-k merging while the burst is inside the window, then back.
//!
//! ```text
//! cargo run --release --example burst_detection
//! ```

use qlove::core::{AnswerSource, FewKConfig, Qlove, QloveConfig};
use qlove::workloads::{burst::inject_burst, NetMonGen};

fn main() {
    let phi = 0.999;
    let (window, period) = (32_000, 4_000);

    let mut data = NetMonGen::generate(55, 400_000);
    inject_burst(&mut data, window, period, phi, 10);

    let fewk = FewKConfig::with_fractions(0.125, 0.5);
    let mut q = Qlove::new(QloveConfig::new(&[phi], window, period).fewk(Some(fewk)));

    println!("burst detection — window {window}, period {period}, Q{phi}");
    println!(
        "bursts: top N(1−φ) of every {}th sub-window ×10\n",
        window / period
    );
    println!(
        "{:>6}  {:>10}  {:>9}  pipeline",
        "eval", "Q0.999", "bursty?"
    );

    let mut eval = 0;
    let mut source_counts = [0u32; 3];
    for &v in &data {
        if let Some(ans) = q.push_detailed(v) {
            eval += 1;
            let idx = match ans.sources[0] {
                AnswerSource::Level2 => 0,
                AnswerSource::TopK => 1,
                AnswerSource::SampleK => 2,
            };
            source_counts[idx] += 1;
            if eval <= 20 {
                println!(
                    "{:>6}  {:>10}  {:>9}  {:?}",
                    eval, ans.values[0], ans.bursty, ans.sources[0]
                );
            }
        }
    }

    println!("\npipeline usage over {eval} evaluations:");
    println!("  Level-2 mean : {}", source_counts[0]);
    println!("  top-k merge  : {}", source_counts[1]);
    println!("  sample-k     : {}", source_counts[2]);
    println!(
        "\nwith one burst per window, sample-k should dominate — every \
         evaluation has a bursty sub-window in range."
    );
}
