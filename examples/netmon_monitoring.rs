//! Network-latency monitoring with threshold alerting — the paper's
//! motivating NetMon scenario (§1): a dashboard computes a fixed set of
//! quantiles over datacenter RTTs and compares them against SLO
//! thresholds to "discover outliers"; approximate quantiles are only
//! usable if their *value* error is small enough not to flip those
//! threshold decisions.
//!
//! This example runs QLOVE and an exact operator side by side and counts
//! decision disagreements (false/missed alerts). With QLOVE's <5% value
//! error the alert streams should agree essentially always.
//!
//! ```text
//! cargo run --release --example netmon_monitoring
//! ```

use qlove::core::{Qlove, QloveConfig};
use qlove::sketches::ExactPolicy;
use qlove::stream::QuantilePolicy;
use qlove::workloads::NetMonGen;

/// SLO: alert when Q0.99 RTT exceeds 2,500 µs or Q0.999 exceeds 11,500 µs.
const Q99_SLO_US: u64 = 2_500;
const Q999_SLO_US: u64 = 11_500;

fn main() {
    let phis = [0.5, 0.9, 0.99, 0.999];
    let (window, period) = (64_000, 8_000);

    let mut qlove = Qlove::new(QloveConfig::new(&phis, window, period));
    let mut exact = ExactPolicy::new(&phis, window, period);

    let mut evaluations = 0u32;
    let mut agreements = 0u32;
    let mut alerts = 0u32;

    println!("NetMon monitoring — window {window}, period {period}");
    println!("SLO: Q0.99 ≤ {Q99_SLO_US} µs, Q0.999 ≤ {Q999_SLO_US} µs\n");

    for v in NetMonGen::new(2024).take(1_000_000) {
        let approx = qlove.push(v);
        let truth = exact.push(v);
        let (Some(a), Some(t)) = (approx, truth) else {
            continue;
        };
        evaluations += 1;

        let approx_alert = a[2] > Q99_SLO_US || a[3] > Q999_SLO_US;
        let exact_alert = t[2] > Q99_SLO_US || t[3] > Q999_SLO_US;
        if approx_alert == exact_alert {
            agreements += 1;
        }
        if approx_alert {
            alerts += 1;
            if alerts <= 5 {
                println!(
                    "ALERT at evaluation {evaluations}: Q0.99 = {} µs, Q0.999 = {} µs \
                     (exact: {}, {})",
                    a[2], a[3], t[2], t[3]
                );
            }
        }
    }

    println!("\nevaluations:          {evaluations}");
    println!("alerts raised:        {alerts}");
    println!(
        "decision agreement:   {agreements}/{evaluations} ({:.1}%)",
        100.0 * agreements as f64 / evaluations as f64
    );
    println!(
        "state size:           QLOVE {} vs Exact {} variables ({:.1}× smaller)",
        qlove.space_variables(),
        exact.space_variables(),
        exact.space_variables() as f64 / qlove.space_variables() as f64
    );
}
