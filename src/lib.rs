//! # qlove — facade crate
//!
//! Re-exports the whole QLOVE workspace behind one dependency so that
//! examples, integration tests, and downstream users can write
//! `use qlove::core::Qlove;` without naming each sub-crate.
//!
//! See the individual crates for the substance:
//!
//! * [`core`] — the QLOVE operator (the paper's contribution, §3–§4).
//! * [`stream`] — the mini streaming engine (incremental evaluation, §2).
//! * [`sketches`] — baseline quantile sketches compared in §5 (Exact,
//!   GK, CMQS, AM, Random, Moment).
//! * [`workloads`] — dataset generators standing in for the paper's
//!   NetMon/Search traces plus the synthetic Normal/Uniform/Pareto/AR(1).
//! * [`stats`] — statistical substrate (normal distribution, Mann-Whitney
//!   U, KDE, Theorem-1 error bound, histograms).
//! * [`freqstore`] — pluggable Level-1 frequency-store backends: the
//!   `FreqStore` trait, the flat `DenseFreqStore` for quantized
//!   domains, and runtime backend dispatch.
//! * [`rbtree`] — the order-statistic frequency red-black tree backing
//!   Level-1 state and the Exact baseline.
//! * [`shm`] — shared-memory primitives behind the `shm:` transport:
//!   Pod layout validation, mapped slabs, the seqlock summary ring,
//!   and mmap-backed checkpoint files.
//! * [`telemetry`] — the observability plane: lock-free metrics
//!   registry (counters/gauges/log-bucketed histograms), the bounded
//!   structured event journal, and the shared monotonic clock.
//! * [`transport`] — the multi-process distributed runtime: framed
//!   QLVT socket protocol, worker runtime, pipelined coordinator.
//! * [`wire`] — varint primitives and the QLVS summary codec shared by
//!   snapshot IO and the transport.

pub use qlove_core as core;
pub use qlove_freqstore as freqstore;
pub use qlove_rbtree as rbtree;
pub use qlove_shm as shm;
pub use qlove_sketches as sketches;
pub use qlove_stats as stats;
pub use qlove_stream as stream;
pub use qlove_telemetry as telemetry;
pub use qlove_transport as transport;
pub use qlove_wire as wire;
pub use qlove_workloads as workloads;
