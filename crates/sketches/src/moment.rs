//! Moment sketch — Gan, Ding, Tai, Sharan, Bailis ("Moment-Based
//! Quantile Sketches for Efficient High Cardinality Aggregation
//! Queries", VLDB 2018).
//!
//! §5.1's fifth policy: "mergeable moment-based quantile sketches to
//! predict the original data distribution from moment statistics". The
//! sketch stores `min`, `max`, `count` and the first `K` power sums;
//! a query reconstructs the **maximum-entropy** density consistent with
//! those moments and reads quantiles off its CDF.
//!
//! Following the original system's guidance for heavy-tailed data (and
//! telemetry latencies are exactly that), moments are accumulated in the
//! log domain `x = ln(1 + v)`: raw 12th powers of ~74,000 µs values would
//! burn through f64 precision, while `ln` keeps the domain within ~\[0,12\].
//!
//! The solver is a damped Newton iteration on the max-entropy dual
//! potential over a Chebyshev basis, with grid quadrature — the same
//! construction as the reference implementation, sized down to have no
//! dependencies.

use crate::subwindows::{subwindow_count, Ring};
use qlove_stream::QuantilePolicy;

/// Number of quadrature points for the density grid. 512 keeps the solve
/// fast; quantile read-off interpolates between grid cells.
const GRID: usize = 512;
/// Newton iteration cap.
const MAX_ITERS: usize = 60;
/// Gradient-norm convergence tolerance.
const TOL: f64 = 1e-8;

/// A mergeable moment sketch over `u64` telemetry values.
#[derive(Debug, Clone)]
pub struct MomentSketch {
    k: usize,
    count: u64,
    min: f64,
    max: f64,
    /// Power sums of `ln(1+v)`: `sums[i] = Σ x^i` (so `sums[0] == count`).
    sums: Vec<f64>,
}

impl MomentSketch {
    /// Sketch tracking `k` moments (the paper's Table 1 uses `K = 12`).
    ///
    /// # Panics
    /// Panics unless `2 ≤ k ≤ 16` (higher orders are numerically useless
    /// in f64).
    pub fn new(k: usize) -> Self {
        assert!((2..=16).contains(&k), "moment order must lie in 2..=16");
        Self {
            k,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sums: vec![0.0; k + 1],
        }
    }

    /// Moment order `K`.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Observations accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Insert one value.
    pub fn insert(&mut self, v: u64) {
        let x = (1.0 + v as f64).ln();
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let mut p = 1.0;
        for s in self.sums.iter_mut() {
            *s += p;
            p *= x;
        }
    }

    /// Merge another sketch of the same order (the "mergeable" property
    /// that makes per-sub-window deployment trivial).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "cannot merge sketches of different order");
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += *b;
        }
    }

    /// Stored scalars: k+1 power sums, min, max, count.
    pub fn space_variables(&self) -> usize {
        self.sums.len() + 3
    }

    /// Estimate the φ-quantile (in the original value domain).
    /// Returns `None` on an empty sketch.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        let xs = self.quantiles(&[phi])?;
        Some(xs[0])
    }

    /// Estimate several quantiles with one max-entropy solve.
    pub fn quantiles(&self, phis: &[f64]) -> Option<Vec<u64>> {
        if self.count == 0 {
            return None;
        }
        let span = self.max - self.min;
        if span <= 0.0 {
            // Point mass.
            let v = (self.min.exp() - 1.0).round().max(0.0) as u64;
            return Some(vec![v; phis.len()]);
        }
        let density = self.solve_density();
        // CDF on the grid, then inverse-interpolate each phi.
        let mut cdf = vec![0.0; GRID + 1];
        let ds = 2.0 / GRID as f64;
        for i in 0..GRID {
            cdf[i + 1] = cdf[i] + density[i] * ds;
        }
        let total = cdf[GRID];
        let out = phis
            .iter()
            .map(|&phi| {
                let target = phi.clamp(0.0, 1.0) * total;
                let cell = cdf.partition_point(|&c| c < target).clamp(1, GRID);
                let (c0, c1) = (cdf[cell - 1], cdf[cell]);
                let frac = if c1 > c0 {
                    (target - c0) / (c1 - c0)
                } else {
                    0.5
                };
                let s = -1.0 + (cell as f64 - 1.0 + frac) * ds;
                let x = (s + 1.0) / 2.0 * span + self.min;
                (x.exp() - 1.0).round().max(0.0) as u64
            })
            .collect();
        Some(out)
    }

    /// Max-entropy density on the standardized grid `s ∈ [-1, 1]`
    /// (midpoints of `GRID` cells).
    fn solve_density(&self) -> Vec<f64> {
        let k = self.k;
        let eta = self.chebyshev_moments();

        // Chebyshev values at grid midpoints, T[j][i] = T_j(s_i).
        let ds = 2.0 / GRID as f64;
        let mut s_pts = [0.0; GRID];
        for (i, s) in s_pts.iter_mut().enumerate() {
            *s = -1.0 + (i as f64 + 0.5) * ds;
        }
        let mut t = vec![vec![0.0; GRID]; k + 1];
        for i in 0..GRID {
            t[0][i] = 1.0;
            if k >= 1 {
                t[1][i] = s_pts[i];
            }
        }
        for j in 2..=k {
            for i in 0..GRID {
                t[j][i] = 2.0 * s_pts[i] * t[j - 1][i] - t[j - 2][i];
            }
        }

        // Newton on F(λ) = ∫exp(Σλ_j T_j) − Σλ_j η_j.
        let mut lambda = vec![0.0; k + 1];
        lambda[0] = -(2.0f64).ln(); // start at the uniform density 1/2
        let mut weights = vec![0.0; GRID];
        for _ in 0..MAX_ITERS {
            for i in 0..GRID {
                let mut e = 0.0;
                for j in 0..=k {
                    e += lambda[j] * t[j][i];
                }
                weights[i] = e.exp() * ds;
            }
            // Gradient g_j = ∫T_j f − η_j; Hessian H_jl = ∫T_j T_l f.
            let mut g = vec![0.0; k + 1];
            let mut h = vec![vec![0.0; k + 1]; k + 1];
            for i in 0..GRID {
                let w = weights[i];
                for j in 0..=k {
                    let tj = t[j][i];
                    g[j] += tj * w;
                    for l in j..=k {
                        h[j][l] += tj * t[l][i] * w;
                    }
                }
            }
            for j in 0..=k {
                g[j] -= eta[j];
                #[allow(clippy::needless_range_loop)] // mirror copy across the diagonal
                for l in 0..j {
                    h[j][l] = h[l][j];
                }
            }
            let gnorm: f64 = g.iter().map(|x| x * x).sum::<f64>().sqrt();
            if gnorm < TOL {
                break;
            }
            let Some(step) = solve_linear(&mut h, &g) else {
                break; // singular Hessian: accept current density
            };
            // Damped update: halve until the potential is finite and the
            // step is sane.
            let mut scale = 1.0;
            for _ in 0..30 {
                let cand: Vec<f64> = lambda
                    .iter()
                    .zip(&step)
                    .map(|(l, s)| l - scale * s)
                    .collect();
                let max_exp = (0..GRID)
                    .map(|i| (0..=k).map(|j| cand[j] * t[j][i]).sum::<f64>())
                    .fold(f64::NEG_INFINITY, f64::max);
                if max_exp < 300.0 {
                    lambda = cand;
                    break;
                }
                scale *= 0.5;
            }
        }
        // Final density values at midpoints.
        (0..GRID)
            .map(|i| {
                let e: f64 = (0..=k).map(|j| lambda[j] * t[j][i]).sum();
                e.exp()
            })
            .collect()
    }

    /// Sample Chebyshev moments η_j = E[T_j(s)], s the affine map of the
    /// log-domain value onto [-1, 1], derived from the raw power sums.
    fn chebyshev_moments(&self) -> Vec<f64> {
        let k = self.k;
        let n = self.count as f64;
        let span = self.max - self.min;
        let a = 2.0 / span;
        let b = -(self.max + self.min) / span;
        // E[s^m] = Σ_i C(m,i) a^i b^(m-i) E[x^i].
        let mut s_moments = vec![0.0; k + 1];
        for (m, sm) in s_moments.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..=m {
                acc += binom(m, i) * a.powi(i as i32) * b.powi((m - i) as i32) * (self.sums[i] / n);
            }
            *sm = acc;
        }
        // T_j as power-basis coefficients via the recurrence.
        let mut coeffs: Vec<Vec<f64>> = vec![vec![1.0], vec![0.0, 1.0]];
        for j in 2..=k {
            let mut c = vec![0.0; j + 1];
            for (p, &v) in coeffs[j - 1].iter().enumerate() {
                c[p + 1] += 2.0 * v;
            }
            for (p, &v) in coeffs[j - 2].iter().enumerate() {
                c[p] -= v;
            }
            coeffs.push(c);
        }
        (0..=k)
            .map(|j| {
                coeffs[j]
                    .iter()
                    .enumerate()
                    .map(|(p, &c)| c * s_moments[p])
                    .sum()
            })
            .collect()
    }
}

fn binom(n: usize, k: usize) -> f64 {
    let mut r = 1.0;
    for i in 0..k.min(n - k) {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

/// Gaussian elimination with partial pivoting; consumes `a`. Returns
/// `None` when the system is numerically singular.
fn solve_linear(a: &mut [Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    let mut x = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[piv][col].abs() {
                piv = row;
            }
        }
        if a[piv][col].abs() < 1e-13 {
            return None;
        }
        a.swap(col, piv);
        x.swap(col, piv);
        // Eliminate.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            #[allow(clippy::needless_range_loop)] // simultaneous read of a[col] and write of a[row]
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        x[col] /= a[col][col];
        for row in 0..col {
            x[row] -= a[row][col] * x[col];
        }
        a[col][col] = 1.0;
    }
    Some(x)
}

/// Moment sketch deployed per sub-window over a sliding window, merged
/// at evaluation — the policy form used in Table 1.
#[derive(Debug)]
pub struct MomentPolicy {
    phis: Vec<f64>,
    period: usize,
    k: usize,
    inflight: MomentSketch,
    completed: Ring<MomentSketch>,
    filled: usize,
}

impl MomentPolicy {
    /// Sub-window moment sketches of order `k` over `window`/`period`.
    pub fn new(phis: &[f64], window: usize, period: usize, k: usize) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        let n_sub = subwindow_count(window, period);
        Self {
            phis: phis.to_vec(),
            period,
            k,
            inflight: MomentSketch::new(k),
            completed: Ring::new(n_sub),
            filled: 0,
        }
    }
}

impl QuantilePolicy for MomentPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.inflight.insert(value);
        self.filled += 1;
        if self.filled < self.period {
            return None;
        }
        self.filled = 0;
        let sketch = std::mem::replace(&mut self.inflight, MomentSketch::new(self.k));
        self.completed.push(sketch);
        if !self.completed.is_full() {
            return None;
        }
        let mut merged = MomentSketch::new(self.k);
        for s in self.completed.iter() {
            merged.merge(s);
        }
        merged.quantiles(&self.phis)
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        self.completed
            .iter()
            .map(MomentSketch::space_variables)
            .sum::<usize>()
            + self.inflight.space_variables()
    }

    fn name(&self) -> &'static str {
        "Moment"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_returns_none() {
        let s = MomentSketch::new(8);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "moment order")]
    fn rejects_extreme_order() {
        MomentSketch::new(40);
    }

    #[test]
    fn point_mass_is_exact() {
        let mut s = MomentSketch::new(8);
        for _ in 0..1000 {
            s.insert(777);
        }
        assert_eq!(s.quantile(0.5), Some(777));
        assert_eq!(s.quantile(0.999), Some(777));
    }

    #[test]
    fn uniform_distribution_quantiles_close() {
        let mut s = MomentSketch::new(10);
        for v in 0..10_000u64 {
            s.insert(v);
        }
        for &(phi, want) in &[(0.25, 2500.0), (0.5, 5000.0), (0.9, 9000.0)] {
            let got = s.quantile(phi).unwrap() as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.12, "phi={phi}: got {got}, want {want}");
        }
    }

    #[test]
    fn lognormal_like_median_close() {
        // Deterministic heavy-tail-ish data: exp of a triangular ramp.
        let data: Vec<u64> = (0..20_000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 20_000.0;
                ((6.0 + 1.2 * qlove_stats::norm_inv_cdf(u)).exp()) as u64
            })
            .collect();
        let mut s = MomentSketch::new(12);
        for &v in &data {
            s.insert(v);
        }
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let exact = qlove_stats::quantile_sorted(&sorted, 0.5) as f64;
        let got = s.quantile(0.5).unwrap() as f64;
        assert!(
            (got - exact).abs() / exact < 0.10,
            "median {got} vs exact {exact}"
        );
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let data_a: Vec<u64> = (0..5000u64).map(|i| (i * 97) % 4096).collect();
        let data_b: Vec<u64> = (0..5000u64).map(|i| (i * 193) % 8192).collect();
        let mut bulk = MomentSketch::new(10);
        let mut a = MomentSketch::new(10);
        let mut b = MomentSketch::new(10);
        for &v in &data_a {
            bulk.insert(v);
            a.insert(v);
        }
        for &v in &data_b {
            bulk.insert(v);
            b.insert(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        for (x, y) in a.sums.iter().zip(&bulk.sums) {
            assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0));
        }
        assert_eq!(a.quantile(0.9), bulk.quantile(0.9));
    }

    #[test]
    #[should_panic(expected = "different order")]
    fn merge_rejects_mismatched_order() {
        let mut a = MomentSketch::new(8);
        let b = MomentSketch::new(10);
        a.merge(&b);
    }

    #[test]
    fn space_is_constant() {
        let mut s = MomentSketch::new(12);
        for v in 0..100_000u64 {
            s.insert(v);
        }
        assert_eq!(s.space_variables(), 12 + 1 + 3);
    }

    #[test]
    fn policy_emits_and_orders_quantiles() {
        let mut p = MomentPolicy::new(&[0.5, 0.9, 0.99], 2000, 500, 8);
        let data: Vec<u64> = (0..8000u64).map(|i| (i * 2654435761) % 10_000).collect();
        let mut emissions = 0;
        for &v in &data {
            if let Some(out) = p.push(v) {
                emissions += 1;
                assert!(out[0] <= out[1] && out[1] <= out[2], "quantiles ordered");
            }
        }
        assert_eq!(emissions, (8000 - 2000) / 500 + 1);
    }

    #[test]
    fn solve_linear_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [0.8, 1.4]
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_linear(&mut a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_singular_returns_none() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(&mut a, &[1.0, 2.0]).is_none());
    }
}
