//! # qlove-sketches — the competing quantile algorithms of §5
//!
//! QLOVE's evaluation compares against five policies; all of them are
//! implemented here from scratch so that Table 1, Figure 4/5 and the
//! sensitivity studies can be regenerated:
//!
//! * [`exact`] — the `Exact` baseline: a frequency red-black tree over
//!   the whole window with per-element deaccumulation (§5.1).
//! * [`gk`] — Greenwald–Khanna ε-summaries, the building block of the
//!   two deterministic sliding-window algorithms.
//! * [`cmqs`] — **CMQS**, Lin et al. ICDE 2004: per-sub-window sketches
//!   of capacity `⌊εP/2⌋`, combined at query time (§5.2's description).
//! * [`am`] — **AM**, Arasu & Manku PODS 2004: dyadic block summaries
//!   with merge-on-completion, better space than CMQS at equal ε.
//! * [`random`] — the sampling-based algorithm of Luo et al. (VLDBJ
//!   2016): per-sub-window reservoirs merged at query time, probabilistic
//!   rank guarantees.
//! * [`moment`] — the Moment sketch (Gan et al., VLDB 2018): power sums
//!   plus maximum-entropy inversion on a Chebyshev basis, with the
//!   log-transform variant for heavy-tailed telemetry.
//!
//! Three **extended baselines** beyond the paper's evaluation round out
//! the modern landscape (all post-date or parallel the paper):
//!
//! * [`ddsketch`] — DDSketch (VLDB 2019): guaranteed bounded *relative
//!   value error*, the very metric QLOVE optimizes.
//! * [`kll`] — KLL (FOCS 2016): today's default optimal rank-error
//!   sketch.
//! * [`ckms`] — CKMS high-biased quantiles (PODS 2006, the paper's
//!   reference \[8\]): deterministic relative-rank guarantees at the tail.
//! * [`tdigest`] — t-digest (Dunning & Ertl): the de-facto industry
//!   sketch, with rank accuracy pinched toward the extremes.
//!
//! Every policy implements [`qlove_stream::QuantilePolicy`], so harness
//! code drives them interchangeably with QLOVE itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod am;
pub mod ckms;
pub mod cmqs;
pub mod ddsketch;
pub mod exact;
pub mod gk;
pub mod kll;
pub mod moment;
pub mod random;
mod subwindows;
pub mod tdigest;

pub use am::AmPolicy;
pub use ckms::{CkmsPolicy, CkmsSketch};
pub use cmqs::CmqsPolicy;
pub use ddsketch::{DdSketch, DdSketchPolicy};
pub use exact::ExactPolicy;
pub use gk::GkSketch;
pub use kll::{KllPolicy, KllSketch};
pub use moment::{MomentPolicy, MomentSketch};
pub use random::RandomPolicy;
pub use tdigest::{TDigest, TDigestPolicy};
