//! AM — Arasu & Manku, "Approximate Counts and Quantiles over Sliding
//! Windows" (PODS 2004).
//!
//! The second deterministic baseline of §5. Its idea: maintain summaries
//! over **dyadic blocks** of the stream (blocks of 1, 2, 4, … periods,
//! aligned to their size), so that any window suffix can be covered by
//! `O(log)` disjoint blocks — fewer, bigger summaries than CMQS, hence
//! the better space at equal ε the original paper proves.
//!
//! Implementation: per-level in-flight GK summaries; level `l` freezes a
//! block every `2^l` periods, compacted to a fixed per-block capacity.
//! Expired blocks (fully outside the window) are dropped. A query covers
//! the last `N/P` periods greedily with the largest completed aligned
//! blocks and combines their weighted pairs, just like CMQS's
//! query-time merge.

use crate::gk::{query_weighted_union, GkSketch};
use crate::subwindows::subwindow_count;
use qlove_stream::QuantilePolicy;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
struct Block {
    /// First period index this block covers; aligned to `2^level`.
    start: u64,
    pairs: Vec<(u64, u64)>,
}

#[derive(Debug)]
struct Level {
    /// Completed blocks, oldest first.
    blocks: VecDeque<Block>,
    /// Summary of the block currently filling at this level.
    inflight: GkSketch,
}

/// AM dyadic sliding-window quantiles with deterministic ε rank error.
#[derive(Debug)]
pub struct AmPolicy {
    phis: Vec<f64>,
    period: usize,
    n_sub: usize,
    epsilon: f64,
    /// Per-block summary capacity (tuples) at every level.
    capacity: usize,
    levels: Vec<Level>,
    /// Completed periods so far.
    periods_done: u64,
    filled: usize,
}

impl AmPolicy {
    /// AM over `window`/`period` with rank tolerance `epsilon`.
    pub fn new(phis: &[f64], window: usize, period: usize, epsilon: f64) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
        let n_sub = subwindow_count(window, period);
        // Levels 0..=L with 2^L ≤ n_sub.
        let max_level = (usize::BITS - 1 - n_sub.leading_zeros()) as usize;
        // Each cover uses ≤ 2 blocks per level; giving each block rank
        // slack (block_size · ε/2) keeps the union within εN (§ of the
        // original proof); capacity 2/ε tuples achieves that slack.
        let capacity = ((2.0 / epsilon).ceil() as usize).max(2);
        let levels = (0..=max_level)
            .map(|_| Level {
                blocks: VecDeque::new(),
                inflight: GkSketch::new(epsilon / 2.0),
            })
            .collect();
        Self {
            phis: phis.to_vec(),
            period,
            n_sub,
            epsilon,
            capacity,
            levels,
            periods_done: 0,
            filled: 0,
        }
    }

    /// Configured rank tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Oldest period index still inside the window ending after
    /// `periods_done` completed periods.
    fn window_start(&self) -> u64 {
        self.periods_done.saturating_sub(self.n_sub as u64)
    }

    fn freeze_completed_levels(&mut self) {
        let t = self.periods_done; // period just completed is t-1
        for (l, level) in self.levels.iter_mut().enumerate() {
            let span = 1u64 << l;
            if t.is_multiple_of(span) {
                // Block [t - span, t) completed at this level.
                let mut sk =
                    std::mem::replace(&mut level.inflight, GkSketch::new(self.epsilon / 2.0));
                sk.shrink_to(self.capacity);
                level.blocks.push_back(Block {
                    start: t - span,
                    pairs: sk.weighted_pairs().collect(),
                });
            }
        }
        // Drop blocks that ended at or before the window start.
        let ws = self.window_start();
        for (l, level) in self.levels.iter_mut().enumerate() {
            let span = 1u64 << l;
            while level.blocks.front().is_some_and(|b| b.start + span <= ws) {
                level.blocks.pop_front();
            }
        }
    }

    /// Greedy disjoint dyadic cover of periods `[window_start, t)`.
    fn cover(&self) -> Vec<&Block> {
        let mut out = Vec::new();
        let mut p = self.window_start();
        let t = self.periods_done;
        while p < t {
            // Largest aligned completed block starting exactly at p.
            let mut chosen: Option<(usize, &Block)> = None;
            for (l, level) in self.levels.iter().enumerate().rev() {
                let span = 1u64 << l;
                if p.is_multiple_of(span) && p + span <= t {
                    if let Some(b) = level.blocks.iter().find(|b| b.start == p) {
                        chosen = Some((l, b));
                        break;
                    }
                }
            }
            let (l, b) = chosen.expect("level-0 block always exists per completed period");
            out.push(b);
            p += 1u64 << l;
        }
        out
    }
}

impl QuantilePolicy for AmPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        for level in &mut self.levels {
            level.inflight.insert(value);
        }
        self.filled += 1;
        if self.filled < self.period {
            return None;
        }
        self.filled = 0;
        self.periods_done += 1;
        self.freeze_completed_levels();

        if self.periods_done < self.n_sub as u64 {
            return None;
        }
        let cover = self.cover();
        let mut union: Vec<(u64, u64)> =
            cover.iter().flat_map(|b| b.pairs.iter().copied()).collect();
        let total: u64 = union.iter().map(|p| p.1).sum();
        let out = self
            .phis
            .iter()
            .map(|&phi| {
                let r = ((phi * total as f64).ceil() as u64).clamp(1, total);
                query_weighted_union(&mut union, r).expect("non-empty cover")
            })
            .collect();
        Some(out)
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        self.levels
            .iter()
            .map(|level| {
                let frozen: usize = level.blocks.iter().map(|b| b.pairs.len() * 2).sum();
                frozen + level.inflight.space_variables()
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "AM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_stats::{quantile_rank, rank_of_value};

    fn stream(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect()
    }

    #[test]
    fn rank_error_stays_within_epsilon() {
        let eps = 0.05;
        let (window, period) = (4096, 512);
        let mut p = AmPolicy::new(&[0.1, 0.5, 0.9, 0.99], window, period, eps);
        let data = stream(16_000);
        let mut evals = 0;
        for (i, &v) in data.iter().enumerate() {
            if let Some(out) = p.push(v) {
                evals += 1;
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                for (qi, &phi) in p.phis().iter().enumerate() {
                    let exact_r = quantile_rank(phi, window);
                    let got_r = rank_of_value(&win, &out[qi]).max(1);
                    let e = (exact_r as f64 - got_r as f64).abs() / window as f64;
                    assert!(e <= eps + 0.01, "phi={phi} rank err {e} at {i}");
                }
            }
        }
        assert!(evals > 5);
    }

    #[test]
    fn cover_uses_few_blocks() {
        let (window, period) = (8192, 512); // 16 sub-windows, levels 0..=4
        let mut p = AmPolicy::new(&[0.5], window, period, 0.05);
        for &v in &stream(40_000) {
            p.push(v);
        }
        let cover = p.cover();
        // A 16-period cover needs at most ~2·log2(16) blocks; greedy from
        // an aligned boundary often does better.
        assert!(cover.len() <= 9, "cover used {} blocks", cover.len());
        // Blocks are disjoint and contiguous.
        let mut pos = p.window_start();
        for b in &cover {
            assert_eq!(b.start, pos);
            let span = cover_span(&p, b);
            pos += span;
        }
        assert_eq!(pos, p.periods_done);
    }

    fn cover_span(p: &AmPolicy, target: &Block) -> u64 {
        for (l, level) in p.levels.iter().enumerate() {
            if level.blocks.iter().any(|b| std::ptr::eq(b, target)) {
                return 1u64 << l;
            }
        }
        panic!("block not found in any level");
    }

    #[test]
    fn expired_blocks_are_dropped() {
        let (window, period) = (2048, 256);
        let mut p = AmPolicy::new(&[0.5], window, period, 0.05);
        for &v in &stream(100_000) {
            p.push(v);
        }
        for (l, level) in p.levels.iter().enumerate() {
            let span = 1u64 << l;
            // Live blocks per level bounded by windows-worth plus one
            // in-freeze block.
            assert!(
                level.blocks.len() as u64 <= p.n_sub as u64 / span + 2,
                "level {l} holds {} blocks",
                level.blocks.len()
            );
        }
    }

    #[test]
    fn evaluates_every_period_once_warm() {
        let mut p = AmPolicy::new(&[0.5], 1024, 128, 0.05);
        let mut eval_at = Vec::new();
        for (i, &v) in stream(4096).iter().enumerate() {
            if p.push(v).is_some() {
                eval_at.push(i + 1);
            }
        }
        assert_eq!(eval_at.first(), Some(&1024));
        assert!(eval_at.windows(2).all(|w| w[1] - w[0] == 128));
    }

    #[test]
    fn single_subwindow_degenerates_to_tumbling() {
        let mut p = AmPolicy::new(&[0.5], 256, 256, 0.05);
        let mut outs = 0;
        for &v in &stream(1024) {
            if p.push(v).is_some() {
                outs += 1;
            }
        }
        assert_eq!(outs, 4);
    }
}
