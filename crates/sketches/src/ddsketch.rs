//! DDSketch — Masson, Rim, Lee ("DDSketch: a fast and fully-mergeable
//! quantile sketch with relative-error guarantees", VLDB 2019).
//!
//! Not part of the paper's evaluation (it appeared the same year), but
//! the natural *post-hoc* comparison point: DDSketch guarantees bounded
//! **relative value error** by construction — exactly the metric QLOVE
//! optimizes for — via logarithmically-spaced buckets. The extended
//! harness pits it against QLOVE (`cargo run -p qlove-bench --bin
//! ddsketch_comparison`) to see how the paper's workload-driven design
//! compares with a guarantee-driven one on the same telemetry.
//!
//! Implementation: the standard collapsing-lowest variant. Values map to
//! bucket `⌈log_γ v⌉` with `γ = (1+α)/(1−α)`; any value in a bucket can
//! be reported as the bucket midpoint with relative error ≤ α. When the
//! bucket count exceeds the budget, the lowest buckets collapse (the
//! guarantee then holds for quantiles above the collapsed mass — the
//! tail, which is what telemetry monitoring asks about).

use crate::subwindows::{subwindow_count, Ring};
use qlove_stream::QuantilePolicy;
use std::collections::BTreeMap;

/// A DDSketch over positive `u64` values with relative accuracy `alpha`.
#[derive(Debug, Clone)]
pub struct DdSketch {
    alpha: f64,
    gamma_ln: f64,
    /// Bucket index → count. BTreeMap keeps quantile walks ordered and
    /// collapsing cheap; bucket counts are small (~log range / α).
    buckets: BTreeMap<i32, u64>,
    /// Values equal to zero get a dedicated bucket.
    zero_count: u64,
    count: u64,
    max_buckets: usize,
}

impl DdSketch {
    /// Sketch with relative error `alpha` (e.g. 0.01 = 1%) and a bucket
    /// budget (the reference implementation defaults to 2048; telemetry
    /// ranges fit comfortably in a few hundred).
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        assert!(max_buckets >= 2, "need at least two buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            gamma_ln: gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            max_buckets,
        }
    }

    /// Configured relative accuracy α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Observations inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Live buckets (excluding the zero bucket).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, v: u64) -> i32 {
        debug_assert!(v > 0);
        ((v as f64).ln() / self.gamma_ln).ceil() as i32
    }

    fn bucket_value(&self, idx: i32) -> u64 {
        // Midpoint of (γ^(i−1), γ^i] in the relative sense: 2γ^i/(γ+1).
        let gamma = self.gamma_ln.exp();
        let upper = (idx as f64 * self.gamma_ln).exp();
        ((2.0 * upper) / (gamma + 1.0)).round().max(1.0) as u64
    }

    /// Insert one observation.
    pub fn insert(&mut self, v: u64) {
        self.count += 1;
        if v == 0 {
            self.zero_count += 1;
            return;
        }
        *self.buckets.entry(self.bucket_of(v)).or_insert(0) += 1;
        if self.buckets.len() > self.max_buckets {
            self.collapse_lowest();
        }
    }

    /// Collapse the two lowest buckets into one (the reference
    /// "collapsing lowest dense" strategy): tail accuracy is preserved,
    /// the collapsed low quantiles lose their guarantee.
    fn collapse_lowest(&mut self) {
        let mut it = self.buckets.iter();
        let (Some((&lo, &lo_c)), Some((&next, _))) = (it.next(), it.next()) else {
            return;
        };
        drop(it);
        self.buckets.remove(&lo);
        *self.buckets.get_mut(&next).expect("key just observed") += lo_c;
    }

    /// Merge another sketch with identical α (bucket indices align).
    pub fn merge(&mut self, other: &Self) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge DDSketches of different alpha"
        );
        self.count += other.count;
        self.zero_count += other.zero_count;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        while self.buckets.len() > self.max_buckets {
            self.collapse_lowest();
        }
    }

    /// φ-quantile under the paper's `⌈φn⌉` rank convention.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((phi * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero_count {
            return Some(0);
        }
        let mut acc = self.zero_count;
        for (&idx, &c) in &self.buckets {
            acc += c;
            if acc >= rank {
                return Some(self.bucket_value(idx));
            }
        }
        self.buckets
            .keys()
            .next_back()
            .map(|&i| self.bucket_value(i))
    }

    /// Stored scalars: 2 per bucket plus counters.
    pub fn space_variables(&self) -> usize {
        self.buckets.len() * 2 + 3
    }
}

/// DDSketch deployed per sub-window over a sliding window (merge at
/// evaluation), mirroring how every other policy in the harness runs.
#[derive(Debug)]
pub struct DdSketchPolicy {
    phis: Vec<f64>,
    period: usize,
    alpha: f64,
    max_buckets: usize,
    inflight: DdSketch,
    completed: Ring<DdSketch>,
    filled: usize,
}

impl DdSketchPolicy {
    /// Per-sub-window DDSketches with relative accuracy `alpha`.
    pub fn new(phis: &[f64], window: usize, period: usize, alpha: f64) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        let n_sub = subwindow_count(window, period);
        let max_buckets = 1024;
        Self {
            phis: phis.to_vec(),
            period,
            alpha,
            max_buckets,
            inflight: DdSketch::new(alpha, max_buckets),
            completed: Ring::new(n_sub),
            filled: 0,
        }
    }
}

impl QuantilePolicy for DdSketchPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.inflight.insert(value);
        self.filled += 1;
        if self.filled < self.period {
            return None;
        }
        self.filled = 0;
        let sketch = std::mem::replace(
            &mut self.inflight,
            DdSketch::new(self.alpha, self.max_buckets),
        );
        self.completed.push(sketch);
        if !self.completed.is_full() {
            return None;
        }
        let mut merged = DdSketch::new(self.alpha, self.max_buckets);
        for s in self.completed.iter() {
            merged.merge(s);
        }
        Some(
            self.phis
                .iter()
                .map(|&p| merged.quantile(p).expect("window non-empty"))
                .collect(),
        )
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        self.completed
            .iter()
            .map(DdSketch::space_variables)
            .sum::<usize>()
            + self.inflight.space_variables()
    }

    fn name(&self) -> &'static str {
        "DDSketch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let s = DdSketch::new(0.01, 128);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        DdSketch::new(1.5, 128);
    }

    #[test]
    fn relative_error_bounded_by_alpha() {
        let alpha = 0.02;
        let mut s = DdSketch::new(alpha, 2048);
        let mut data: Vec<u64> = (0..50_000u64)
            .map(|i| 1 + (i * 2654435761) % 1_000_000)
            .collect();
        for &v in &data {
            s.insert(v);
        }
        data.sort_unstable();
        for &phi in &[0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = qlove_stats::quantile_sorted(&data, phi) as f64;
            let got = s.quantile(phi).unwrap() as f64;
            let rel = ((got - exact) / exact).abs();
            assert!(rel <= alpha + 1e-6, "phi={phi}: rel {rel} > α");
        }
    }

    #[test]
    fn zero_values_handled() {
        let mut s = DdSketch::new(0.01, 128);
        for _ in 0..60 {
            s.insert(0);
        }
        for _ in 0..40 {
            s.insert(1000);
        }
        assert_eq!(s.quantile(0.5), Some(0));
        let q9 = s.quantile(0.9).unwrap();
        assert!((q9 as f64 - 1000.0).abs() / 1000.0 < 0.011);
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let mut a = DdSketch::new(0.01, 2048);
        let mut b = DdSketch::new(0.01, 2048);
        let mut bulk = DdSketch::new(0.01, 2048);
        for v in 1..4000u64 {
            a.insert(v);
            bulk.insert(v);
        }
        for v in 4000..9000u64 {
            b.insert(v);
            bulk.insert(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        for &phi in &[0.1, 0.5, 0.99] {
            assert_eq!(a.quantile(phi), bulk.quantile(phi), "phi={phi}");
        }
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = DdSketch::new(0.01, 128);
        let b = DdSketch::new(0.02, 128);
        a.merge(&b);
    }

    #[test]
    fn collapsing_preserves_tail_accuracy() {
        let alpha = 0.02;
        // Tiny budget forces collapsing of the low buckets.
        let mut s = DdSketch::new(alpha, 32);
        let mut data: Vec<u64> = (0..20_000u64)
            .map(|i| 1 + (i * 48271) % 5_000_000)
            .collect();
        for &v in &data {
            s.insert(v);
        }
        assert!(s.bucket_count() <= 32);
        data.sort_unstable();
        // High quantiles keep the guarantee even after collapsing.
        for &phi in &[0.9, 0.99, 0.999] {
            let exact = qlove_stats::quantile_sorted(&data, phi) as f64;
            let got = s.quantile(phi).unwrap() as f64;
            let rel = ((got - exact) / exact).abs();
            assert!(rel <= alpha + 1e-6, "phi={phi}: rel {rel}");
        }
    }

    #[test]
    fn space_is_compact() {
        let mut s = DdSketch::new(0.01, 2048);
        for v in 1..1_000_000u64 {
            s.insert(v % 100_000 + 1);
        }
        // ln(1e5)/ln(γ) ≈ 575 buckets at α = 1%.
        assert!(s.space_variables() < 1500, "{}", s.space_variables());
    }

    #[test]
    fn policy_sliding_schedule_and_accuracy() {
        let (window, period) = (8_000, 1_000);
        let mut p = DdSketchPolicy::new(&[0.5, 0.99], window, period, 0.01);
        let data: Vec<u64> = (0..40_000u64).map(|i| 1 + (i * 7919) % 90_000).collect();
        let mut evals = 0;
        for (i, &v) in data.iter().enumerate() {
            if let Some(ans) = p.push(v) {
                evals += 1;
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                for (j, &phi) in [0.5, 0.99].iter().enumerate() {
                    let exact = qlove_stats::quantile_sorted(&win, phi) as f64;
                    let rel = ((ans[j] as f64 - exact) / exact).abs();
                    assert!(rel < 0.011, "phi={phi} rel={rel} at {i}");
                }
            }
        }
        assert_eq!(evals, (40_000 - window) / period + 1);
    }
}
