//! CMQS — "Continuously Maintaining Quantile Summaries of the most
//! recent N elements over a data stream" (Lin, Lu, Xu, Yu — ICDE 2004).
//!
//! The paper's strongest deterministic competitor (§5.2): the stream is
//! cut into sub-windows aligned with the period; each sub-window builds
//! a sketch, frozen at capacity `⌊εP/2⌋` when the sub-window completes;
//! "all active sketches are combined to compute approximate quantiles
//! over a sliding window". Rank error is bounded by `εN` — which is
//! exactly the contract whose *value*-error consequences on heavy-tailed
//! telemetry QLOVE attacks.
//!
//! Implementation notes: the in-flight sub-window runs a GK summary at
//! `ε/2`; freezing shrinks it to the paper's capacity with the
//! rank-spaced compaction of [`GkSketch::shrink_to`]; queries combine
//! the live sketches' weighted pairs (`O(S log S)` in total summary
//! size, dominated by the sort).

use crate::gk::{query_weighted_union, GkSketch};
use crate::subwindows::{subwindow_count, Ring};
use qlove_stream::QuantilePolicy;

/// One frozen sub-window summary: weighted (value, gap) pairs.
#[derive(Debug, Clone)]
struct FrozenSketch {
    pairs: Vec<(u64, u64)>,
}

/// CMQS sliding-window quantiles with deterministic ε rank error.
#[derive(Debug)]
pub struct CmqsPolicy {
    phis: Vec<f64>,
    window: usize,
    period: usize,
    epsilon: f64,
    capacity: usize,
    inflight: GkSketch,
    completed: Ring<FrozenSketch>,
    filled: usize,
}

impl CmqsPolicy {
    /// CMQS over `window`/`period` with rank tolerance `epsilon`.
    ///
    /// The per-sub-window capacity follows the paper: `⌊εP/2⌋` tuples
    /// (floored at 2 so degenerate configurations still answer).
    pub fn new(phis: &[f64], window: usize, period: usize, epsilon: f64) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
        let n_sub = subwindow_count(window, period);
        // Paper capacity ⌊εP/2⌋, floored at ⌈1/ε⌉ so that each frozen
        // sketch's largest rank gap stays ≤ εP and the midpoint-combined
        // union stays within εN/2 even for tiny periods.
        let capacity = (((epsilon * period as f64) / 2.0).floor() as usize)
            .max((1.0 / epsilon).ceil() as usize)
            .max(2);
        Self {
            phis: phis.to_vec(),
            window,
            period,
            epsilon,
            capacity,
            inflight: GkSketch::new(epsilon / 2.0),
            completed: Ring::new(n_sub),
            filled: 0,
        }
    }

    /// Configured rank tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Analytical space bound in variables: `N/P` sketches of `⌊εP/2⌋`
    /// tuples × 3 scalars, plus the worst-case in-flight GK summary
    /// (`(1/(2ε'))·log(2ε'P)` tuples at ε' = ε/2).
    pub fn analytical_space_variables(&self) -> usize {
        let n_sub = self.window / self.period;
        let frozen = n_sub * self.capacity * 3;
        let e = self.epsilon / 2.0;
        let gk = ((1.0 / (2.0 * e)) * (2.0 * e * self.period as f64).max(2.0).log2())
            .ceil()
            .max(1.0) as usize;
        frozen + gk * 3
    }
}

impl QuantilePolicy for CmqsPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.inflight.insert(value);
        self.filled += 1;
        if self.filled < self.period {
            return None;
        }
        // Sub-window boundary: freeze at the paper's capacity.
        self.filled = 0;
        let mut sketch = std::mem::replace(&mut self.inflight, GkSketch::new(self.epsilon / 2.0));
        sketch.shrink_to(self.capacity);
        let pairs: Vec<(u64, u64)> = sketch.weighted_pairs().collect();
        self.completed.push(FrozenSketch { pairs });

        if !self.completed.is_full() {
            return None;
        }
        // Combine all active sketches.
        let mut union: Vec<(u64, u64)> = self
            .completed
            .iter()
            .flat_map(|s| s.pairs.iter().copied())
            .collect();
        let total: u64 = union.iter().map(|p| p.1).sum();
        let out = self
            .phis
            .iter()
            .map(|&phi| {
                let r = ((phi * total as f64).ceil() as u64).clamp(1, total);
                query_weighted_union(&mut union, r).expect("non-empty union")
            })
            .collect();
        Some(out)
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        let frozen: usize = self.completed.iter().map(|s| s.pairs.len() * 2).sum();
        frozen + self.inflight.space_variables()
    }

    fn name(&self) -> &'static str {
        "CMQS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_stats::{quantile_rank, rank_of_value};

    fn deterministic_stream(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect()
    }

    #[test]
    fn rank_error_stays_within_epsilon() {
        let eps = 0.05;
        let (window, period) = (4000, 500);
        let mut p = CmqsPolicy::new(&[0.1, 0.5, 0.9, 0.99], window, period, eps);
        let data = deterministic_stream(12_000);
        for (i, &v) in data.iter().enumerate() {
            if let Some(out) = p.push(v) {
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                for (qi, &phi) in p.phis().iter().enumerate() {
                    let exact_r = quantile_rank(phi, window);
                    let got_r = rank_of_value(&win, &out[qi]).max(1);
                    let e = (exact_r as f64 - got_r as f64).abs() / window as f64;
                    // ε/2 per frozen sketch + compaction slack; the
                    // overall contract is ε.
                    assert!(e <= eps + 0.01, "phi={phi} rank error {e} at {i}");
                }
            }
        }
    }

    #[test]
    fn evaluates_once_per_period_when_full() {
        let mut p = CmqsPolicy::new(&[0.5], 1000, 250, 0.05);
        let mut eval_at = Vec::new();
        for (i, &v) in deterministic_stream(3000).iter().enumerate() {
            if p.push(v).is_some() {
                eval_at.push(i + 1);
            }
        }
        assert_eq!(eval_at.first(), Some(&1000));
        assert!(eval_at.windows(2).all(|w| w[1] - w[0] == 250));
    }

    #[test]
    fn space_is_sublinear_in_window() {
        let (window, period, eps) = (100_000, 10_000, 0.02);
        let mut p = CmqsPolicy::new(&[0.5], window, period, eps);
        for &v in &deterministic_stream(150_000) {
            p.push(v);
        }
        let space = p.space_variables();
        assert!(space < window / 2, "space {space} not sublinear");
        assert!(space > 0);
    }

    #[test]
    fn capacity_follows_paper_formula() {
        // ⌊0.02·16000/2⌋ = 160 tuples per frozen sub-window (Table 1's
        // configuration) — above the ⌈1/ε⌉ = 50 floor.
        let p = CmqsPolicy::new(&[0.5], 128_000, 16_000, 0.02);
        assert_eq!(p.capacity, 160);
        // Tiny periods hit the accuracy floor instead: ⌊0.02·1000/2⌋ = 10
        // would let single gaps exceed εP.
        let p = CmqsPolicy::new(&[0.5], 100_000, 1000, 0.02);
        assert_eq!(p.capacity, 50);
    }

    #[test]
    fn analytical_space_exceeds_frozen_payload() {
        let p = CmqsPolicy::new(&[0.5], 128_000, 16_000, 0.02);
        // 8 sub-windows × 160 tuples × 3 = 3840 + in-flight term.
        assert!(p.analytical_space_variables() >= 3840);
    }

    #[test]
    fn tumbling_configuration_works() {
        let mut p = CmqsPolicy::new(&[0.5], 500, 500, 0.05);
        let mut outs = 0;
        for &v in &deterministic_stream(2500) {
            if p.push(v).is_some() {
                outs += 1;
            }
        }
        assert_eq!(outs, 5);
    }
}
