//! CKMS biased quantiles — Cormode, Korn, Muthukrishnan, Srivastava
//! ("Space- and time-efficient deterministic algorithms for biased
//! quantiles over data streams", PODS 2006) — the paper’s reference \[8\].
//!
//! §6 discusses it directly: biased quantiles give deterministic
//! *relative rank* guarantees — fine resolution exactly at the extreme
//! quantiles QLOVE cares about — but "the memory consumed by \[8\]
//! includes a parameter that represents the maximum value a streaming
//! element can have", and it still bounds rank, not value. Implemented
//! here in the **high-biased** form (invariant `f(r, n) = 2ε(n − r)`:
//! allowed rank slack shrinks linearly toward the maximum) so the
//! extended harness can measure exactly the trade-off §6 argues about.

use crate::gk::query_weighted_union;
use crate::subwindows::{subwindow_count, Ring};
use qlove_stream::QuantilePolicy;

#[derive(Debug, Clone, Copy)]
struct Tuple {
    v: u64,
    g: u64,
    delta: u64,
}

/// High-biased CKMS summary: rank error at rank `r` bounded by
/// `ε·(n − r)` — proportionally tighter toward the maximum.
#[derive(Debug, Clone)]
pub struct CkmsSketch {
    epsilon: f64,
    tuples: Vec<Tuple>,
    n: u64,
    since_compress: u64,
}

impl CkmsSketch {
    /// Summary with relative rank tolerance `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
        Self {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            since_compress: 0,
        }
    }

    /// Configured tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Elements observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Stored tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// The invariant `f(r, n) = max(1, ⌊2ε(n − r)⌋)`.
    fn invariant(&self, r: u64) -> u64 {
        let slack = 2.0 * self.epsilon * (self.n.saturating_sub(r)) as f64;
        (slack.floor() as u64).max(1)
    }

    /// Insert one observation.
    pub fn insert(&mut self, v: u64) {
        self.n += 1;
        let pos = self.tuples.partition_point(|t| t.v < v);
        // Rank of the insertion point.
        let rmin: u64 = self.tuples[..pos].iter().map(|t| t.g).sum();
        let delta = if pos == 0 || pos == self.tuples.len() {
            0
        } else {
            self.invariant(rmin).saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });
        self.since_compress += 1;
        if self.since_compress >= (1.0 / (2.0 * self.epsilon)).floor().max(1.0) as u64 {
            self.compress();
            self.since_compress = 0;
        }
    }

    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.push(self.tuples[0]);
        let mut rmin = self.tuples[0].g;
        for i in 1..self.tuples.len() - 1 {
            let t = self.tuples[i];
            rmin += t.g;
            let out_len = out.len();
            let last = out.last_mut().expect("seeded");
            if out_len > 1 && last.g + t.g + t.delta <= self.invariant(rmin) {
                *last = Tuple {
                    v: t.v,
                    g: last.g + t.g,
                    delta: t.delta,
                };
            } else {
                out.push(t);
            }
        }
        out.push(*self.tuples.last().expect("len ≥ 3"));
        self.tuples = out;
    }

    /// φ-quantile under the paper's `⌈φn⌉` rank convention.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let r = ((phi * self.n as f64).ceil() as u64).clamp(1, self.n);
        if r == 1 {
            return self.tuples.first().map(|t| t.v);
        }
        if r == self.n {
            return self.tuples.last().map(|t| t.v);
        }
        let mut rmin = 0u64;
        for t in &self.tuples {
            rmin += t.g;
            if rmin + t.delta >= r {
                return Some(t.v);
            }
        }
        self.tuples.last().map(|t| t.v)
    }

    /// Rank-preserving weighted pairs for query-time combination.
    pub fn weighted_pairs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.tuples.iter().map(|t| (t.v, t.g))
    }

    /// Stored scalars (3 per tuple).
    pub fn space_variables(&self) -> usize {
        self.tuples.len() * 3
    }
}

/// CKMS deployed per sub-window over a sliding window.
#[derive(Debug)]
pub struct CkmsPolicy {
    phis: Vec<f64>,
    period: usize,
    epsilon: f64,
    inflight: CkmsSketch,
    completed: Ring<Vec<(u64, u64)>>,
    filled: usize,
}

impl CkmsPolicy {
    /// Per-sub-window high-biased summaries with tolerance `epsilon`.
    pub fn new(phis: &[f64], window: usize, period: usize, epsilon: f64) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        let n_sub = subwindow_count(window, period);
        Self {
            phis: phis.to_vec(),
            period,
            epsilon,
            inflight: CkmsSketch::new(epsilon),
            completed: Ring::new(n_sub),
            filled: 0,
        }
    }
}

impl QuantilePolicy for CkmsPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.inflight.insert(value);
        self.filled += 1;
        if self.filled < self.period {
            return None;
        }
        self.filled = 0;
        let sketch = std::mem::replace(&mut self.inflight, CkmsSketch::new(self.epsilon));
        self.completed.push(sketch.weighted_pairs().collect());
        if !self.completed.is_full() {
            return None;
        }
        let mut union: Vec<(u64, u64)> = self
            .completed
            .iter()
            .flat_map(|p| p.iter().copied())
            .collect();
        let total: u64 = union.iter().map(|p| p.1).sum();
        Some(
            self.phis
                .iter()
                .map(|&phi| {
                    let r = ((phi * total as f64).ceil() as u64).clamp(1, total);
                    query_weighted_union(&mut union, r).expect("non-empty union")
                })
                .collect(),
        )
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        self.completed.iter().map(|p| p.len() * 2).sum::<usize>() + self.inflight.space_variables()
    }

    fn name(&self) -> &'static str {
        "CKMS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let s = CkmsSketch::new(0.05);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn high_quantiles_are_sharply_resolved() {
        let eps = 0.05;
        let mut s = CkmsSketch::new(eps);
        let mut data: Vec<u64> = (0..50_000u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        for &v in &data {
            s.insert(v);
        }
        data.sort_unstable();
        // The bias: rank error at rank r must be ≤ ε(n − r) + small
        // slack — a few ranks at Q0.999, much looser at Q0.5.
        for &phi in &[0.9, 0.99, 0.999, 0.9999] {
            let got = s.quantile(phi).unwrap();
            let got_rank = data.partition_point(|&x| x <= got) as f64;
            let want_rank = (phi * data.len() as f64).ceil();
            let allowed = eps * (data.len() as f64 - want_rank) + 2.0;
            assert!(
                (got_rank - want_rank).abs() <= allowed + 1.0,
                "phi={phi}: |{got_rank} − {want_rank}| > {allowed}"
            );
        }
    }

    #[test]
    fn summary_grows_modestly() {
        let mut s = CkmsSketch::new(0.05);
        for v in 0..100_000u64 {
            s.insert((v * 48271) % 999_983);
        }
        // O((1/ε)·log(εn)) with the bias constant; well under 1%.
        assert!(s.tuple_count() < 1_000, "{} tuples", s.tuple_count());
    }

    #[test]
    fn extremes_exact() {
        let mut s = CkmsSketch::new(0.1);
        for v in [9u64, 2, 44, 7, 100] {
            s.insert(v);
        }
        assert_eq!(s.quantile(1e-9), Some(2));
        assert_eq!(s.quantile(1.0), Some(100));
    }

    #[test]
    fn policy_tracks_high_quantiles_over_sliding_window() {
        let (window, period) = (8_000, 1_000);
        let mut p = CkmsPolicy::new(&[0.99, 0.999], window, period, 0.05);
        let data: Vec<u64> = (0..32_000u64).map(|i| (i * 7919) % 100_000).collect();
        let mut worst = 0.0f64;
        for (i, &v) in data.iter().enumerate() {
            if let Some(ans) = p.push(v) {
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                for (j, &phi) in [0.99, 0.999].iter().enumerate() {
                    let exact = qlove_stats::quantile_sorted(&win, phi) as f64;
                    worst = worst.max(((ans[j] as f64 - exact) / exact).abs());
                }
            }
        }
        // Dense uniform values: biased rank precision ⇒ small value error.
        assert!(worst < 0.02, "tail drift {worst}");
    }
}
