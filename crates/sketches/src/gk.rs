//! Greenwald–Khanna ε-approximate quantile summary.
//!
//! The classic one-pass summary (SIGMOD 2001): a sorted list of tuples
//! `(v, g, Δ)` where `g` is the gap in minimum rank to the previous tuple
//! and `Δ` the uncertainty of the tuple's rank. It guarantees that any
//! rank query is answered within `εn` — the *rank-error* contract whose
//! value-error consequences on skewed telemetry motivate QLOVE (§1).
//!
//! Both deterministic sliding-window baselines build on it: CMQS keeps a
//! GK summary per sub-window, AM per dyadic block. For those uses the
//! summary exposes [`GkSketch::weighted_pairs`] (a rank-preserving
//! weighted sample) so multiple summaries can be combined at query time.

use qlove_stream::QuantilePolicy;

#[derive(Debug, Clone, Copy)]
struct Tuple {
    v: u64,
    /// rmin(i) − rmin(i−1).
    g: u64,
    /// rmax(i) − rmin(i).
    delta: u64,
}

/// A Greenwald–Khanna ε-summary over a stream of `u64` values.
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    tuples: Vec<Tuple>,
    n: u64,
    since_compress: u64,
}

impl GkSketch {
    /// New summary with rank-error tolerance `epsilon` (e.g. 0.02 for the
    /// paper's Table 1 configuration).
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1)");
        Self {
            epsilon,
            tuples: Vec::new(),
            n: 0,
            since_compress: 0,
        }
    }

    /// Configured tolerance.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Elements observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Stored tuples (the summary's size).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Insert one observation, compressing periodically (every
    /// `⌊1/(2ε)⌋` inserts, the GK schedule).
    pub fn insert(&mut self, v: u64) {
        self.n += 1;
        // Find first tuple with value ≥ v.
        let pos = self.tuples.partition_point(|t| t.v < v);
        let delta = if pos == 0 || pos == self.tuples.len() {
            // New minimum or maximum: rank known exactly.
            0
        } else {
            // Standard GK: inherit the successor's uncertainty,
            // Δ = g_{i+1} + Δ_{i+1} − 1, capped by the global invariant
            // bound ⌊2εn⌋ − 1. Successor-based deltas keep duplicates of
            // an existing tuple tight instead of maximally uncertain.
            let succ = &self.tuples[pos];
            let cap = ((2.0 * self.epsilon * self.n as f64).floor() as u64).saturating_sub(1);
            (succ.g + succ.delta).saturating_sub(1).min(cap)
        };
        self.tuples.insert(pos, Tuple { v, g: 1, delta });

        self.since_compress += 1;
        let interval = (1.0 / (2.0 * self.epsilon)).floor().max(1.0) as u64;
        if self.since_compress >= interval {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// How many tuples at each extreme COMPRESS leaves untouched. Real
    /// GK banding protects recently-inserted tuples, which in practice
    /// keeps the distribution extremes finely resolved; this emulates
    /// that effect directly (and §1's whole argument — rank error turns
    /// into huge tail *value* error — depends on the baselines being
    /// honest, not strawmen).
    fn protected(&self) -> usize {
        ((1.0 / (8.0 * self.epsilon)).ceil() as usize).max(1)
    }

    /// GK COMPRESS: merge tuple `i` into `i+1` when the merged span
    /// stays under a threshold. Canonical GK uses `2εn` with band
    /// restrictions; this implementation skips the banding and
    /// compensates with the half threshold `εn` in the body plus a
    /// high-biased (CKMS-style) cap near the maximum, yielding
    /// comparable summary sizes while trivially preserving the
    /// invariant.
    fn compress(&mut self) {
        let protect = self.protected();
        if self.tuples.len() < 2 * protect + 3 {
            return;
        }
        let uniform = (self.epsilon * self.n as f64).floor() as u64;
        let mut out: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        out.extend_from_slice(&self.tuples[..protect]);
        let mut rmin: u64 = out.iter().map(|t| t.g).sum();
        let merge_end = self.tuples.len() - protect;
        for i in protect..merge_end {
            let t = self.tuples[i];
            rmin += t.g;
            // High-biased invariant (CKMS-style): near the maximum the
            // allowed merged span shrinks proportionally to the distance
            // from the top, keeping the tail resolved at ~25% relative
            // rank precision. This matches the *measured* tail behaviour
            // of the paper's CMQS/AM implementations (observed rank
            // errors of a few 1e-4 at Q0.999, i.e. tens of ranks — far
            // tighter than the uniform εn bound, far looser than exact).
            let from_top = self.n.saturating_sub(rmin);
            let threshold = uniform.min((0.25 * from_top as f64).floor() as u64).max(1);
            let out_len = out.len();
            let last = out.last_mut().expect("seeded with protected head");
            let mergeable = out_len > protect // keep the protected head intact
                && last.g + t.g + t.delta <= threshold;
            if mergeable {
                // Merge `last` into `t`: t absorbs last's gap.
                let merged = Tuple {
                    v: t.v,
                    g: last.g + t.g,
                    delta: t.delta,
                };
                *last = merged;
            } else {
                out.push(t);
            }
        }
        out.extend_from_slice(&self.tuples[merge_end..]);
        self.tuples = out;
    }

    /// Rank query: a value whose rank is within the summary invariant's
    /// tolerance of `r` (1-indexed).
    pub fn query_rank(&self, r: u64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let r = r.clamp(1, self.n);
        // The summary tracks the exact extremes (Δ = 0 at both ends);
        // answer them directly.
        if r == 1 {
            return self.tuples.first().map(|t| t.v);
        }
        if r == self.n {
            return self.tuples.last().map(|t| t.v);
        }
        // First tuple whose maximum possible rank reaches r: its true
        // rank lies in [rmin, rmax], so the answer is within g+Δ of r —
        // the summary invariant. (The textbook "first rmax > r + εn,
        // return predecessor" rule degenerates to the maximum for any
        // r within εn of n, a systematic tail bias.)
        let mut rmin = 0u64;
        for t in &self.tuples {
            rmin += t.g;
            if rmin + t.delta >= r {
                return Some(t.v);
            }
        }
        self.tuples.last().map(|t| t.v)
    }

    /// φ-quantile under the paper's `⌈φn⌉` rank convention.
    pub fn query(&self, phi: f64) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let r = ((phi * self.n as f64).ceil() as u64).clamp(1, self.n);
        self.query_rank(r)
    }

    /// Rank-preserving weighted sample `(value, weight)` with
    /// `Σ weight = n`: tuple `i` contributes its gap `g`. Sorting several
    /// summaries' pairs together and walking cumulative weights answers
    /// rank queries over their union within the sum of the individual
    /// tolerances — the query-time combine used by CMQS and AM.
    pub fn weighted_pairs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.tuples.iter().map(|t| (t.v, t.g))
    }

    /// Shrink to at most `capacity` tuples (used when a sub-window
    /// summary is frozen at the paper's `⌊εP/2⌋` capacity).
    ///
    /// Rank targets are **biased toward the tail**: half the budget is
    /// spent geometrically from the maximum down (resolution ~13% of the
    /// distance-from-top at every scale), half uniformly over the body.
    /// This mirrors how the measured CMQS/AM systems behave — their GK
    /// substrate keeps extreme tuples finely resolved — so the baselines'
    /// published accuracy shape (sub-2% at Q0.99, tens of percent at
    /// Q0.999 on heavy tails) reproduces instead of a strawman collapse.
    /// Total weight is conserved exactly.
    pub fn shrink_to(&mut self, capacity: usize) {
        if capacity < 4 || self.tuples.len() <= capacity || self.n == 0 {
            return;
        }
        let n = self.n;
        // Build ascending cumulative-rank targets.
        let tail_budget = (capacity / 4).max(2);
        let body_budget = capacity - tail_budget;
        let mut targets: Vec<u64> = Vec::with_capacity(capacity + 1);
        // Uniform body coverage.
        let step = (n as f64 / body_budget as f64).max(1.0);
        let mut x = step;
        while x < n as f64 {
            targets.push(x as u64);
            x += step;
        }
        // Geometric tail coverage: ranks n − ⌈q^j⌉ for j = 0..tail_budget.
        let ratio = (n as f64).powf(1.0 / tail_budget as f64).max(1.0 + 1e-9);
        let mut from_top = 1.0f64;
        for _ in 0..tail_budget {
            let t = n.saturating_sub(from_top.ceil() as u64);
            if t >= 1 {
                targets.push(t);
            }
            from_top *= ratio;
        }
        targets.push(n);
        targets.sort_unstable();
        targets.dedup();

        let mut out: Vec<Tuple> = Vec::with_capacity(targets.len());
        let mut ti = 0usize;
        let mut rmin = 0u64;
        let mut carried_g = 0u64;
        let last_idx = self.tuples.len() - 1;
        for (i, t) in self.tuples.iter().enumerate() {
            rmin += t.g;
            carried_g += t.g;
            let hit = ti < targets.len() && rmin >= targets[ti];
            if hit || i == last_idx {
                out.push(Tuple {
                    v: t.v,
                    g: carried_g,
                    delta: t.delta,
                });
                carried_g = 0;
                while ti < targets.len() && targets[ti] <= rmin {
                    ti += 1;
                }
            }
        }
        self.tuples = out;
    }

    /// Number of stored scalars (3 per tuple) — the space metric.
    pub fn space_variables(&self) -> usize {
        self.tuples.len() * 3
    }
}

/// A GK summary wrapped as a whole-window sliding policy (kept mostly
/// for tests/examples: GK itself cannot deaccumulate, so the sliding
/// variants in [`crate::cmqs`]/[`crate::am`] are what §5 benchmarks).
#[derive(Debug)]
pub struct GkTumblingPolicy {
    phis: Vec<f64>,
    window: usize,
    sketch: GkSketch,
    epsilon: f64,
    filled: usize,
}

impl GkTumblingPolicy {
    /// GK over tumbling windows of `window` elements.
    pub fn new(phis: &[f64], window: usize, epsilon: f64) -> Self {
        assert!(window > 0);
        Self {
            phis: phis.to_vec(),
            window,
            sketch: GkSketch::new(epsilon),
            epsilon,
            filled: 0,
        }
    }
}

impl QuantilePolicy for GkTumblingPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.sketch.insert(value);
        self.filled += 1;
        if self.filled == self.window {
            let out = self
                .phis
                .iter()
                .map(|&p| self.sketch.query(p).expect("window non-empty"))
                .collect();
            self.sketch = GkSketch::new(self.epsilon);
            self.filled = 0;
            Some(out)
        } else {
            None
        }
    }
    fn phis(&self) -> &[f64] {
        &self.phis
    }
    fn space_variables(&self) -> usize {
        self.sketch.space_variables()
    }
    fn name(&self) -> &'static str {
        "GK"
    }
}

/// Combine several weighted-pair streams and answer a rank query over
/// the union: sort by value, walk cumulative weight to rank `r`.
/// Shared by CMQS and AM query paths.
///
/// Each pair `(v, w)` summarizes `w` elements ending at `v` (the frozen
/// summaries preserve cumulative rank at kept tuples, so `v` sits at the
/// right edge of its span). A query rank landing mid-span interpolates
/// linearly between the previous pair's value and `v` — the standard
/// weighted-percentile estimate, which removes the systematic half-gap
/// bias a pure right-edge walk would carry (each of `N/P` summaries
/// would otherwise undercount by ~half its rank gap).
pub(crate) fn query_weighted_union(pairs: &mut [(u64, u64)], r: u64) -> Option<u64> {
    if pairs.is_empty() {
        return None;
    }
    pairs.sort_unstable_by_key(|p| p.0);
    let total: u64 = pairs.iter().map(|p| p.1).sum();
    let r = r.clamp(1, total);
    let mut acc = 0u64;
    let mut prev_v: Option<u64> = None;
    for &(v, w) in pairs.iter() {
        if r <= acc + w {
            return Some(match prev_v {
                Some(pv) if v > pv && w > 0 => {
                    let frac = (r - acc) as f64 / w as f64;
                    (pv as f64 + (v - pv) as f64 * frac).round() as u64
                }
                _ => v,
            });
        }
        acc += w;
        prev_v = Some(v);
    }
    pairs.last().map(|p| p.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_err(sorted: &[u64], answer: u64, r: u64) -> f64 {
        // Distance from r to the nearest rank occupied by `answer`.
        let lo = sorted.partition_point(|&x| x < answer) as i64 + 1;
        let hi = sorted.partition_point(|&x| x <= answer) as i64;
        let r = r as i64;
        let d = if r < lo {
            lo - r
        } else if r > hi {
            r - hi
        } else {
            0
        };
        d as f64 / sorted.len() as f64
    }

    #[test]
    fn empty_sketch_returns_none() {
        let s = GkSketch::new(0.05);
        assert_eq!(s.query(0.5), None);
        assert_eq!(s.query_rank(1), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        GkSketch::new(0.0);
    }

    #[test]
    fn single_value() {
        let mut s = GkSketch::new(0.1);
        s.insert(42);
        assert_eq!(s.query(0.5), Some(42));
        assert_eq!(s.query(1.0), Some(42));
    }

    #[test]
    fn rank_error_within_epsilon_uniform() {
        let eps = 0.02;
        let mut s = GkSketch::new(eps);
        let mut data: Vec<u64> = (0..10_000u64).map(|i| (i * 2654435761) % 100_000).collect();
        for &v in &data {
            s.insert(v);
        }
        data.sort_unstable();
        for &phi in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let r = ((phi * data.len() as f64).ceil() as u64).max(1);
            let ans = s.query(phi).unwrap();
            let e = rank_err(&data, ans, r);
            assert!(e <= eps + 1e-9, "phi={phi} rank error {e} > {eps}");
        }
    }

    #[test]
    fn summary_is_sublinear() {
        let mut s = GkSketch::new(0.02);
        for i in 0..50_000u64 {
            s.insert(i);
        }
        // Theory: O((1/ε)·log(εn)) ≈ 50·log2(1000) ≈ 500 tuples.
        assert!(
            s.tuple_count() < 2_000,
            "summary too large: {} tuples",
            s.tuple_count()
        );
    }

    #[test]
    fn extremes_are_exact() {
        let mut s = GkSketch::new(0.05);
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 9973).collect();
        for &v in &data {
            s.insert(v);
        }
        let min = *data.iter().min().unwrap();
        let max = *data.iter().max().unwrap();
        assert_eq!(s.query_rank(1), Some(min));
        assert_eq!(s.query(1.0), Some(max));
    }

    #[test]
    fn weighted_pairs_total_equals_n() {
        let mut s = GkSketch::new(0.05);
        for i in 0..1234u64 {
            s.insert(i % 37);
        }
        let total: u64 = s.weighted_pairs().map(|p| p.1).sum();
        assert_eq!(total, 1234);
    }

    #[test]
    fn shrink_to_respects_capacity_and_total_weight() {
        let mut s = GkSketch::new(0.01);
        for i in 0..20_000u64 {
            s.insert(i);
        }
        let before: u64 = s.weighted_pairs().map(|p| p.1).sum();
        s.shrink_to(50);
        assert!(s.tuple_count() <= 50, "{} tuples", s.tuple_count());
        let after: u64 = s.weighted_pairs().map(|p| p.1).sum();
        assert_eq!(before, after, "shrink must conserve total weight");
    }

    #[test]
    fn query_weighted_union_combines_summaries() {
        let mut a = GkSketch::new(0.02);
        let mut b = GkSketch::new(0.02);
        for i in 0..5000u64 {
            a.insert(i); // 0..5000
            b.insert(i + 5000); // 5000..10000
        }
        let mut pairs: Vec<(u64, u64)> = a.weighted_pairs().chain(b.weighted_pairs()).collect();
        // Median of the union is ≈ 5000.
        let ans = query_weighted_union(&mut pairs, 5000).unwrap();
        assert!(
            (ans as i64 - 5000).unsigned_abs() <= 400,
            "union median {ans}"
        );
    }

    #[test]
    fn tumbling_policy_emits_per_window() {
        let mut p = GkTumblingPolicy::new(&[0.5], 100, 0.05);
        let mut outs = 0;
        for i in 0..1000u64 {
            if let Some(ans) = p.push(i % 100) {
                assert_eq!(ans.len(), 1);
                outs += 1;
            }
        }
        assert_eq!(outs, 10);
        assert_eq!(p.name(), "GK");
    }

    #[test]
    fn heavy_duplicates_are_handled() {
        let mut s = GkSketch::new(0.02);
        for _ in 0..10_000 {
            s.insert(7);
        }
        for _ in 0..100 {
            s.insert(1_000_000);
        }
        assert_eq!(s.query(0.5), Some(7));
        assert_eq!(s.query(1.0), Some(1_000_000));
    }
}
