//! KLL — Karnin, Lang, Liberty ("Optimal quantile approximation in
//! streams", FOCS 2016).
//!
//! The modern optimal rank-error sketch, included as an extended
//! baseline: the paper compares against GK-era deterministic summaries
//! and one sampler; KLL is what an engineer would reach for today, and
//! its failure mode on heavy-tailed telemetry is the same one QLOVE
//! targets — a rank guarantee that says nothing about tail *values*.
//!
//! Implementation: the classic compactor hierarchy. Level `h` holds
//! items of weight `2^h`; when a level overflows its capacity
//! (`k·c^(H−h)`, `c = 2/3`), it is sorted and every second item —
//! random offset — is promoted to level `h+1`.

use crate::gk::query_weighted_union;
use crate::subwindows::{subwindow_count, Ring};
use qlove_stream::QuantilePolicy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const C: f64 = 2.0 / 3.0;

/// A KLL sketch over `u64` values.
#[derive(Debug, Clone)]
pub struct KllSketch {
    k: usize,
    levels: Vec<Vec<u64>>,
    count: u64,
    rng: SmallRng,
    /// Exact extremes (KLL compaction can drop them; monitoring wants
    /// min/max exact, and the reference implementations track them too).
    min: u64,
    max: u64,
}

impl KllSketch {
    /// Sketch with base capacity `k` (accuracy ~ O(1/k) rank error) and
    /// a deterministic seed for the compaction coin flips.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 8, "base capacity must be at least 8");
        Self {
            k,
            levels: vec![Vec::new()],
            count: 0,
            rng: SmallRng::seed_from_u64(seed),
            min: u64::MAX,
            max: 0,
        }
    }

    /// Observations inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total items retained across all compactors.
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    fn capacity(&self, level: usize) -> usize {
        let h = self.levels.len() - 1 - level; // depth below the top
        ((self.k as f64) * C.powi(h as i32)).ceil().max(2.0) as usize
    }

    /// Insert one observation.
    pub fn insert(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.levels[0].push(v);
        self.compact_cascade();
    }

    fn compact_cascade(&mut self) {
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() < self.capacity(level) {
                break;
            }
            if level + 1 == self.levels.len() {
                self.levels.push(Vec::new());
            }
            let mut items = std::mem::take(&mut self.levels[level]);
            items.sort_unstable();
            let offset = usize::from(self.rng.gen::<bool>());
            let promoted: Vec<u64> = items.iter().skip(offset).step_by(2).copied().collect();
            // Items not promoted are discarded — that is the compaction.
            self.levels[level + 1].extend(promoted);
            level += 1;
        }
    }

    /// Weighted `(value, weight)` pairs, `Σ weight·… = count` up to the
    /// parity remainder each compaction throws away.
    pub fn weighted_pairs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.levels
            .iter()
            .enumerate()
            .flat_map(|(h, items)| items.iter().map(move |&v| (v, 1u64 << h)))
    }

    /// φ-quantile under the paper's `⌈φn⌉` rank convention.
    pub fn quantile(&self, phi: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if phi <= 0.0 {
            return Some(self.min);
        }
        if phi >= 1.0 {
            return Some(self.max);
        }
        let mut pairs: Vec<(u64, u64)> = self.weighted_pairs().collect();
        let total: u64 = pairs.iter().map(|p| p.1).sum();
        let r = ((phi * total as f64).ceil() as u64).clamp(1, total);
        query_weighted_union(&mut pairs, r)
    }

    /// Stored scalars.
    pub fn space_variables(&self) -> usize {
        self.retained() + 4
    }
}

/// KLL deployed per sub-window over a sliding window; live sketches'
/// weighted pairs are combined at evaluation.
#[derive(Debug)]
pub struct KllPolicy {
    phis: Vec<f64>,
    period: usize,
    k: usize,
    seed: u64,
    inflight: KllSketch,
    completed: Ring<Vec<(u64, u64)>>,
    filled: usize,
    spawned: u64,
}

impl KllPolicy {
    /// Per-sub-window KLL sketches with base capacity `k`.
    pub fn new(phis: &[f64], window: usize, period: usize, k: usize, seed: u64) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        let n_sub = subwindow_count(window, period);
        Self {
            phis: phis.to_vec(),
            period,
            k,
            seed,
            inflight: KllSketch::new(k, seed),
            completed: Ring::new(n_sub),
            filled: 0,
            spawned: 0,
        }
    }
}

impl QuantilePolicy for KllPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.inflight.insert(value);
        self.filled += 1;
        if self.filled < self.period {
            return None;
        }
        self.filled = 0;
        self.spawned += 1;
        let sketch = std::mem::replace(
            &mut self.inflight,
            KllSketch::new(self.k, self.seed.wrapping_add(self.spawned)),
        );
        self.completed.push(sketch.weighted_pairs().collect());
        if !self.completed.is_full() {
            return None;
        }
        let mut union: Vec<(u64, u64)> = self
            .completed
            .iter()
            .flat_map(|p| p.iter().copied())
            .collect();
        let total: u64 = union.iter().map(|p| p.1).sum();
        Some(
            self.phis
                .iter()
                .map(|&phi| {
                    let r = ((phi * total as f64).ceil() as u64).clamp(1, total);
                    query_weighted_union(&mut union, r).expect("non-empty union")
                })
                .collect(),
        )
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        self.completed.iter().map(|p| p.len() * 2).sum::<usize>() + self.inflight.space_variables()
    }

    fn name(&self) -> &'static str {
        "KLL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let s = KllSketch::new(64, 1);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn extremes_exact() {
        let mut s = KllSketch::new(64, 1);
        for v in [5u64, 900, 2, 77, 1_000_000] {
            s.insert(v);
        }
        assert_eq!(s.quantile(0.0), Some(2));
        assert_eq!(s.quantile(1.0), Some(1_000_000));
    }

    #[test]
    fn rank_error_small_with_reasonable_k() {
        let mut s = KllSketch::new(200, 7);
        let mut data: Vec<u64> = (0..100_000u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        for &v in &data {
            s.insert(v);
        }
        data.sort_unstable();
        for &phi in &[0.1, 0.5, 0.9, 0.99] {
            let got = s.quantile(phi).unwrap();
            let got_rank = data.partition_point(|&x| x <= got) as f64;
            let want_rank = (phi * data.len() as f64).ceil();
            let e = (got_rank - want_rank).abs() / data.len() as f64;
            assert!(e < 0.03, "phi={phi}: rank error {e}");
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut s = KllSketch::new(128, 3);
        for v in 0..1_000_000u64 {
            s.insert(v);
        }
        // O(k·(1/(1−c))) ≈ 3k retained items plus level overhead.
        assert!(s.retained() < 1_200, "retained {}", s.retained());
    }

    #[test]
    fn total_weight_tracks_count_approximately() {
        let mut s = KllSketch::new(64, 5);
        for v in 0..50_000u64 {
            s.insert(v % 997);
        }
        let total: u64 = s.weighted_pairs().map(|p| p.1).sum();
        // Compaction discards the odd remainder at each step; the
        // retained weight stays within a few percent of the true count.
        let rel = (total as f64 - 50_000.0).abs() / 50_000.0;
        assert!(rel < 0.05, "weight drift {rel}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = KllSketch::new(64, seed);
            for v in 0..10_000u64 {
                s.insert((v * 31) % 1009);
            }
            s.quantile(0.9)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn policy_emits_and_tracks_exact_roughly() {
        let (window, period) = (8_000, 1_000);
        let mut p = KllPolicy::new(&[0.5], window, period, 200, 11);
        let data: Vec<u64> = (0..32_000u64).map(|i| (i * 48271) % 65_536).collect();
        let mut worst = 0.0f64;
        for (i, &v) in data.iter().enumerate() {
            if let Some(ans) = p.push(v) {
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                let exact = qlove_stats::quantile_sorted(&win, 0.5) as f64;
                worst = worst.max(((ans[0] as f64 - exact) / exact).abs());
            }
        }
        assert!(worst < 0.05, "median drift {worst}");
    }
}
