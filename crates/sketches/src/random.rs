//! Random — the sampling-based sliding-window quantile algorithm of
//! Luo, Wang, Yi, Cormode ("Quantiles over Data Streams: Experimental
//! Comparisons, New Analyses, and Further Improvements", VLDBJ 2016).
//!
//! §5.1 describes it as "a state of the art using sampling to bound rank
//! error with constant probabilities". The sliding-window form keeps a
//! uniform reservoir per sub-window; at evaluation the live reservoirs
//! are merged and the quantile read off the sorted merged sample. With
//! `k` total samples the rank error concentrates at `O(1/√k)` — fine for
//! central quantiles, but the sparse sampled tail produces exactly the
//! large *value* errors on Q0.999 that Table 1 and the Pareto study
//! report (16.7% and 35.2% in the paper).

use crate::subwindows::{subwindow_count, Ring};
use qlove_stream::QuantilePolicy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sampling-based sliding-window quantiles.
#[derive(Debug)]
pub struct RandomPolicy {
    phis: Vec<f64>,
    period: usize,
    /// Reservoir capacity per sub-window.
    samples_per_subwindow: usize,
    rng: SmallRng,
    inflight: Vec<u64>,
    seen_in_subwindow: usize,
    completed: Ring<Vec<u64>>,
    /// Scratch buffer reused across evaluations.
    merged: Vec<u64>,
}

impl RandomPolicy {
    /// Reservoir size chosen from a rank tolerance: `k_total = ⌈1/ε²⌉`
    /// samples across the window give rank error ≈ ε with constant
    /// probability; split evenly over the `N/P` sub-windows.
    pub fn from_epsilon(phis: &[f64], window: usize, period: usize, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
        let n_sub = subwindow_count(window, period);
        let k_total = (1.0 / (epsilon * epsilon)).ceil() as usize;
        let per_sub = (k_total / n_sub).clamp(1, period);
        Self::with_reservoir(phis, window, period, per_sub, 0xDA7A_CE17)
    }

    /// Explicit per-sub-window reservoir size and RNG seed (deterministic
    /// runs for the harness).
    pub fn with_reservoir(
        phis: &[f64],
        window: usize,
        period: usize,
        samples_per_subwindow: usize,
        seed: u64,
    ) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        assert!(samples_per_subwindow > 0, "need at least one sample");
        let n_sub = subwindow_count(window, period);
        Self {
            phis: phis.to_vec(),
            period,
            samples_per_subwindow: samples_per_subwindow.min(period),
            rng: SmallRng::seed_from_u64(seed),
            inflight: Vec::with_capacity(samples_per_subwindow.min(period)),
            seen_in_subwindow: 0,
            completed: Ring::new(n_sub),
            merged: Vec::new(),
        }
    }

    /// Per-sub-window reservoir capacity.
    pub fn reservoir_size(&self) -> usize {
        self.samples_per_subwindow
    }
}

impl QuantilePolicy for RandomPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        // Vitter's Algorithm R.
        self.seen_in_subwindow += 1;
        if self.inflight.len() < self.samples_per_subwindow {
            self.inflight.push(value);
        } else {
            let j = self.rng.gen_range(0..self.seen_in_subwindow);
            if j < self.samples_per_subwindow {
                self.inflight[j] = value;
            }
        }
        if self.seen_in_subwindow < self.period {
            return None;
        }
        // Sub-window boundary.
        self.seen_in_subwindow = 0;
        let reservoir = std::mem::replace(
            &mut self.inflight,
            Vec::with_capacity(self.samples_per_subwindow),
        );
        self.completed.push(reservoir);
        if !self.completed.is_full() {
            return None;
        }
        // Merge live reservoirs; each is a uniform sample of an
        // equally-sized sub-window, so the concatenation is a uniform
        // sample of the window.
        self.merged.clear();
        for r in self.completed.iter() {
            self.merged.extend_from_slice(r);
        }
        self.merged.sort_unstable();
        let out = self
            .phis
            .iter()
            .map(|&phi| qlove_stats::quantile_sorted(&self.merged, phi))
            .collect();
        Some(out)
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        let frozen: usize = self.completed.iter().map(Vec::len).sum();
        frozen + self.inflight.len()
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_stats::{quantile_rank, rank_of_value};

    fn stream(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect()
    }

    #[test]
    fn from_epsilon_sizes_reservoir() {
        let p = RandomPolicy::from_epsilon(&[0.5], 100_000, 10_000, 0.02);
        // k_total = 2500 over 10 sub-windows → 250 each.
        assert_eq!(p.reservoir_size(), 250);
    }

    #[test]
    fn median_rank_error_is_small() {
        let (window, period) = (8000, 1000);
        let mut p = RandomPolicy::with_reservoir(&[0.5], window, period, 400, 7);
        let data = stream(32_000);
        let mut worst = 0.0f64;
        for (i, &v) in data.iter().enumerate() {
            if let Some(out) = p.push(v) {
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                let exact_r = quantile_rank(0.5, window);
                let got_r = rank_of_value(&win, &out[0]).max(1);
                worst = worst.max((exact_r as f64 - got_r as f64).abs() / window as f64);
            }
        }
        // 3200 merged samples → σ ≈ 0.009 at the median; allow 5σ.
        assert!(worst < 0.045, "median rank error {worst}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = RandomPolicy::with_reservoir(&[0.5, 0.99], 4000, 500, 100, seed);
            stream(12_000)
                .iter()
                .filter_map(|&v| p.push(v))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn space_counts_reservoirs() {
        let (window, period, s) = (4000, 500, 123);
        let mut p = RandomPolicy::with_reservoir(&[0.5], window, period, s, 1);
        for &v in &stream(window) {
            p.push(v);
        }
        // 8 full reservoirs at the first evaluation.
        assert_eq!(p.space_variables(), 8 * s);
    }

    #[test]
    fn reservoir_capped_at_period() {
        let p = RandomPolicy::with_reservoir(&[0.5], 100, 10, 500, 1);
        assert_eq!(p.reservoir_size(), 10);
    }

    #[test]
    fn small_reservoir_misses_extreme_tail() {
        // The motivating failure: a sparse sampled tail misestimates high
        // quantiles on skewed data. Values: 99% small, 1% huge.
        let (window, period) = (10_000, 1000);
        let mut p = RandomPolicy::with_reservoir(&[0.999], window, period, 50, 3);
        // Tail values spread over two orders of magnitude so a mis-ranked
        // sample visibly moves the value (as in NetMon's 1.2K→74K tail).
        let data: Vec<u64> = (0..40_000u64)
            .map(|i| {
                if i % 100 == 99 {
                    100_000 + (i * 7919) % 10_000_000
                } else {
                    i % 500
                }
            })
            .collect();
        let mut any_error_large = false;
        for (i, &v) in data.iter().enumerate() {
            if let Some(out) = p.push(v) {
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                let exact = qlove_stats::quantile_sorted(&win, 0.999);
                let rel = qlove_stats::relative_error_pct(out[0] as f64, exact as f64);
                if rel > 5.0 {
                    any_error_large = true;
                }
            }
        }
        assert!(
            any_error_large,
            "expected visible tail value error from sparse sampling"
        );
    }
}
