//! The `Exact` baseline (§5.1).
//!
//! A frequency red-black tree over the *entire* window. Accumulation
//! inserts into the tree; on a sliding window every expiring element is
//! deaccumulated ("decrements its frequency by one, and is deleted from
//! the red-black tree if the frequency becomes zero"). The paper notes
//! this "outperformed other methods for the exact quantiles" — it is both
//! the accuracy ground truth and the throughput baseline that QLOVE's
//! Figure 4/5 speedups are measured against.

use crate::subwindows::subwindow_count;
use qlove_rbtree::FreqTree;
use qlove_stream::QuantilePolicy;
use std::collections::VecDeque;

/// Exact sliding/tumbling-window quantiles over a frequency tree.
#[derive(Debug)]
pub struct ExactPolicy {
    phis: Vec<f64>,
    window: usize,
    period: usize,
    tree: FreqTree<u64>,
    /// Live elements, oldest first; empty in tumbling mode (no expiry
    /// bookkeeping needed when the whole state resets each period).
    live: VecDeque<u64>,
    since_eval: usize,
}

impl ExactPolicy {
    /// Exact quantiles over windows of `window` elements evaluated every
    /// `period` insertions. `window == period` runs tumbling (cheap
    /// whole-state reset); `window > period` runs sliding (per-element
    /// deaccumulate).
    pub fn new(phis: &[f64], window: usize, period: usize) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        subwindow_count(window, period); // validates the pair
        Self {
            phis: phis.to_vec(),
            window,
            period,
            tree: FreqTree::new(),
            live: VecDeque::with_capacity(if window == period { 0 } else { window + 1 }),
            since_eval: 0,
        }
    }

    fn is_tumbling(&self) -> bool {
        self.window == self.period
    }

    /// Elements currently in the window.
    pub fn len(&self) -> usize {
        self.tree.total() as usize
    }

    /// `true` when the window holds no elements.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Borrow the underlying frequency tree (ground-truth inspection in
    /// tests and harness code).
    pub fn tree(&self) -> &FreqTree<u64> {
        &self.tree
    }
}

impl QuantilePolicy for ExactPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.tree.insert(value, 1);
        if !self.is_tumbling() {
            self.live.push_back(value);
            if self.live.len() > self.window {
                let expired = self.live.pop_front().expect("len > window ≥ 1");
                self.tree
                    .remove(expired, 1)
                    .expect("expired element was previously inserted");
            }
        }
        self.since_eval += 1;

        let full = self.tree.total() as usize == self.window;
        if self.since_eval >= self.period && full {
            self.since_eval = 0;
            let out = self.tree.quantiles(&self.phis).expect("window full");
            if self.is_tumbling() {
                self.tree.clear();
            }
            Some(out)
        } else {
            None
        }
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        // One {value, count} pair per unique element, plus the element
        // ring in sliding mode (stored values awaiting expiry).
        self.tree.unique_len() * 2 + self.live.len()
    }

    fn name(&self) -> &'static str {
        "Exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_stats::quantile_sorted;

    #[test]
    fn tumbling_results_are_exact() {
        let mut p = ExactPolicy::new(&[0.5, 0.9, 1.0], 100, 100);
        let data: Vec<u64> = (0..300u64).map(|i| (i * 613) % 1009).collect();
        let mut outs = Vec::new();
        for &v in &data {
            if let Some(o) = p.push(v) {
                outs.push(o);
            }
        }
        assert_eq!(outs.len(), 3);
        for (w, out) in outs.iter().enumerate() {
            let mut chunk: Vec<u64> = data[w * 100..(w + 1) * 100].to_vec();
            chunk.sort_unstable();
            assert_eq!(out[0], quantile_sorted(&chunk, 0.5));
            assert_eq!(out[1], quantile_sorted(&chunk, 0.9));
            assert_eq!(out[2], quantile_sorted(&chunk, 1.0));
        }
    }

    #[test]
    fn sliding_results_are_exact() {
        let mut p = ExactPolicy::new(&[0.5, 0.99], 60, 20);
        let data: Vec<u64> = (0..200u64).map(|i| (i * 7919) % 523).collect();
        let mut eval_points = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            if let Some(out) = p.push(v) {
                let mut win: Vec<u64> = data[i + 1 - 60..=i].to_vec();
                win.sort_unstable();
                assert_eq!(out[0], quantile_sorted(&win, 0.5), "at {i}");
                assert_eq!(out[1], quantile_sorted(&win, 0.99), "at {i}");
                eval_points.push(i);
            }
        }
        assert_eq!(eval_points, vec![59, 79, 99, 119, 139, 159, 179, 199]);
    }

    #[test]
    fn tumbling_space_has_no_live_ring() {
        let mut p = ExactPolicy::new(&[0.5], 50, 50);
        for v in 0..49u64 {
            p.push(v % 7);
        }
        // 7 unique values → 14 variables, no ring.
        assert_eq!(p.space_variables(), 14);
    }

    #[test]
    fn sliding_space_includes_live_ring() {
        let mut p = ExactPolicy::new(&[0.5], 40, 10);
        for v in 0..40u64 {
            p.push(v % 4);
        }
        assert_eq!(p.space_variables(), 4 * 2 + 40);
    }

    #[test]
    fn duplicates_share_tree_nodes() {
        let mut p = ExactPolicy::new(&[0.5], 1000, 1000);
        for _ in 0..999 {
            p.push(42);
        }
        assert_eq!(p.space_variables(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one quantile")]
    fn rejects_empty_phis() {
        ExactPolicy::new(&[], 10, 10);
    }
}
