//! Small shared plumbing for policies that summarize per sub-window and
//! combine summaries at query time (CMQS, Random — and QLOVE itself uses
//! the same shape in `qlove-core`).

use std::collections::VecDeque;

/// A bounded FIFO of completed sub-window summaries: pushing beyond the
/// capacity evicts the oldest (the sub-window that just slid out of the
/// window).
#[derive(Debug, Clone)]
pub(crate) struct Ring<S> {
    items: VecDeque<S>,
    cap: usize,
}

impl<S> Ring<S> {
    pub(crate) fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Self {
            items: VecDeque::with_capacity(cap + 1),
            cap,
        }
    }

    /// Push a completed summary, returning the evicted one if the ring
    /// was full.
    pub(crate) fn push(&mut self, item: S) -> Option<S> {
        self.items.push_back(item);
        if self.items.len() > self.cap {
            self.items.pop_front()
        } else {
            None
        }
    }

    pub(crate) fn is_full(&self) -> bool {
        self.items.len() == self.cap
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &S> {
        self.items.iter()
    }
}

/// Validate the `(window, period)` pair shared by all sub-window
/// policies and return the sub-window count `n = N/P`.
///
/// # Panics
/// Panics unless `period > 0`, `window ≥ period`, and `period` divides
/// `window` (the paper aligns sub-windows with the period, §3.1).
pub(crate) fn subwindow_count(window: usize, period: usize) -> usize {
    assert!(period > 0, "period must be positive");
    assert!(window >= period, "window must be ≥ period");
    assert!(
        window.is_multiple_of(period),
        "window ({window}) must be a multiple of period ({period}); \
         sub-windows are aligned with the period"
    );
    window / period
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_when_full() {
        let mut r = Ring::new(3);
        assert_eq!(r.push(1), None);
        assert_eq!(r.push(2), None);
        assert!(!r.is_full());
        assert_eq!(r.push(3), None);
        assert!(r.is_full());
        assert_eq!(r.push(4), Some(1));
        let live: Vec<i32> = r.iter().copied().collect();
        assert_eq!(live, vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn subwindow_count_valid() {
        assert_eq!(subwindow_count(128_000, 16_000), 8);
        assert_eq!(subwindow_count(10, 10), 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn subwindow_count_rejects_non_divisible() {
        subwindow_count(100, 30);
    }

    #[test]
    #[should_panic(expected = "≥ period")]
    fn subwindow_count_rejects_small_window() {
        subwindow_count(10, 20);
    }
}
