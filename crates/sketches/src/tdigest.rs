//! t-digest — Dunning & Ertl ("Computing extremely accurate quantiles
//! using t-digests", 2019).
//!
//! The third member of the modern OSS trio (with DDSketch and KLL) that
//! practitioners would reach for instead of the paper's 2004-era
//! baselines. Its design goal is *relative rank accuracy at the
//! extremes*: centroid sizes are bounded by a scale function that
//! pinches toward q = 0 and q = 1, so Q0.999 is resolved by near-
//! singleton centroids while the body is coarsely clustered — a rank
//! analogue of what QLOVE's few-k caches do with raw values.
//!
//! Implementation: the merging variant with the `k₁` scale function
//! `k(q) = (δ/2π)·asin(2q − 1)`; incoming values buffer and periodically
//! merge-compact with existing centroids in one sorted pass.

use crate::subwindows::{subwindow_count, Ring};
use qlove_stream::QuantilePolicy;

/// One centroid: mean and weight.
#[derive(Debug, Clone, Copy)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// A merging t-digest over `u64` values.
#[derive(Debug, Clone)]
pub struct TDigest {
    /// Compression parameter δ: ~δ centroids retained; accuracy at
    /// quantile q scales like `q(1−q)/δ`.
    delta: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    count: u64,
    min: u64,
    max: u64,
}

impl TDigest {
    /// Digest with compression `delta` (typical values 100–500).
    pub fn new(delta: f64) -> Self {
        assert!(delta >= 10.0, "compression must be at least 10");
        Self {
            delta,
            centroids: Vec::new(),
            buffer: Vec::with_capacity((delta * 5.0) as usize),
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Observations inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Centroids currently retained (after flushing the buffer).
    pub fn centroid_count(&mut self) -> usize {
        self.flush();
        self.centroids.len()
    }

    /// Insert one observation.
    pub fn insert(&mut self, v: u64) {
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buffer.push(v as f64);
        if self.buffer.len() >= self.buffer.capacity() {
            self.flush();
        }
    }

    /// Merge another digest (buffered values and centroids alike).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for c in &other.centroids {
            self.merge_weighted(c.mean, c.weight);
        }
        for &v in &other.buffer {
            self.buffer.push(v);
        }
        self.flush();
    }

    fn merge_weighted(&mut self, mean: f64, weight: f64) {
        // Weighted inputs bypass the scalar buffer: stage as a centroid.
        self.centroids.push(Centroid { mean, weight });
    }

    /// The k₁ scale function.
    fn k(&self, q: f64) -> f64 {
        self.delta / (2.0 * std::f64::consts::PI) * (2.0 * q.clamp(0.0, 1.0) - 1.0).asin()
    }

    /// Merge-compact buffer + centroids in one sorted pass.
    fn flush(&mut self) {
        if self.buffer.is_empty() && self.centroids.is_sorted_by(|a, b| a.mean <= b.mean) {
            // Nothing new and already canonical.
            return;
        }
        let mut staged: Vec<Centroid> = self
            .buffer
            .drain(..)
            .map(|v| Centroid {
                mean: v,
                weight: 1.0,
            })
            .collect();
        staged.append(&mut self.centroids);
        staged.sort_by(|a, b| a.mean.partial_cmp(&b.mean).expect("no NaN inputs"));
        let total: f64 = staged.iter().map(|c| c.weight).sum();
        if total == 0.0 {
            return;
        }

        let mut out: Vec<Centroid> = Vec::with_capacity((self.delta * 1.5) as usize);
        let mut q_left = 0.0f64;
        let mut k_limit = self.k(q_left) + 1.0;
        let mut acc: Option<Centroid> = None;
        let mut acc_q = 0.0f64; // cumulative weight before `acc`
        for c in staged {
            match acc.as_mut() {
                None => {
                    acc = Some(c);
                }
                Some(a) => {
                    let q_right = (acc_q + a.weight + c.weight) / total;
                    if self.k(q_right) <= k_limit {
                        // Absorb into the accumulator.
                        let w = a.weight + c.weight;
                        a.mean = (a.mean * a.weight + c.mean * c.weight) / w;
                        a.weight = w;
                    } else {
                        acc_q += a.weight;
                        q_left = acc_q / total;
                        k_limit = self.k(q_left) + 1.0;
                        out.push(*a);
                        *a = c;
                    }
                }
            }
        }
        if let Some(a) = acc {
            out.push(a);
        }
        self.centroids = out;
    }

    /// φ-quantile under the paper's `⌈φn⌉` rank convention (interpolated
    /// between centroid means; extremes are exact).
    pub fn quantile(&mut self, phi: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        self.flush();
        if phi <= 0.0 {
            return Some(self.min);
        }
        if phi >= 1.0 {
            return Some(self.max);
        }
        let total: f64 = self.centroids.iter().map(|c| c.weight).sum();
        let target = phi * total;
        let mut acc = 0.0f64;
        for (i, c) in self.centroids.iter().enumerate() {
            let mid = acc + c.weight / 2.0;
            if target <= mid {
                // Interpolate with the previous centroid (or the min).
                let (m0, q0) = if i == 0 {
                    (self.min as f64, 0.0)
                } else {
                    let p = &self.centroids[i - 1];
                    (p.mean, acc - p.weight / 2.0)
                };
                let frac = if mid > q0 {
                    (target - q0) / (mid - q0)
                } else {
                    1.0
                };
                let v = m0 + (c.mean - m0) * frac.clamp(0.0, 1.0);
                return Some(v.round().max(0.0) as u64);
            }
            acc += c.weight;
        }
        Some(self.max)
    }

    /// Stored scalars: 2 per centroid plus counters (buffer excluded —
    /// it is transient workspace, flushed at every query).
    pub fn space_variables(&self) -> usize {
        self.centroids.len() * 2 + 3
    }
}

/// t-digest deployed per sub-window over a sliding window.
#[derive(Debug)]
pub struct TDigestPolicy {
    phis: Vec<f64>,
    period: usize,
    delta: f64,
    inflight: TDigest,
    completed: Ring<TDigest>,
    filled: usize,
}

impl TDigestPolicy {
    /// Per-sub-window digests with compression `delta`.
    pub fn new(phis: &[f64], window: usize, period: usize, delta: f64) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        let n_sub = subwindow_count(window, period);
        Self {
            phis: phis.to_vec(),
            period,
            delta,
            inflight: TDigest::new(delta),
            completed: Ring::new(n_sub),
            filled: 0,
        }
    }
}

impl QuantilePolicy for TDigestPolicy {
    fn push(&mut self, value: u64) -> Option<Vec<u64>> {
        self.inflight.insert(value);
        self.filled += 1;
        if self.filled < self.period {
            return None;
        }
        self.filled = 0;
        let mut sketch = std::mem::replace(&mut self.inflight, TDigest::new(self.delta));
        sketch.flush();
        self.completed.push(sketch);
        if !self.completed.is_full() {
            return None;
        }
        let mut merged = TDigest::new(self.delta);
        for s in self.completed.iter() {
            merged.merge(s);
        }
        Some(
            self.phis
                .iter()
                .map(|&p| merged.quantile(p).expect("window non-empty"))
                .collect(),
        )
    }

    fn phis(&self) -> &[f64] {
        &self.phis
    }

    fn space_variables(&self) -> usize {
        self.completed
            .iter()
            .map(TDigest::space_variables)
            .sum::<usize>()
            + self.inflight.space_variables()
    }

    fn name(&self) -> &'static str {
        "t-digest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let mut d = TDigest::new(100.0);
        assert_eq!(d.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "compression")]
    fn rejects_tiny_delta() {
        TDigest::new(1.0);
    }

    #[test]
    fn extremes_exact() {
        let mut d = TDigest::new(100.0);
        for v in [9u64, 2, 44, 7, 1_000_000] {
            d.insert(v);
        }
        assert_eq!(d.quantile(0.0), Some(2));
        assert_eq!(d.quantile(1.0), Some(1_000_000));
    }

    #[test]
    fn uniform_quantiles_accurate() {
        let mut d = TDigest::new(200.0);
        let mut data: Vec<u64> = (0..100_000u64)
            .map(|i| (i * 2654435761) % 1_000_003)
            .collect();
        for &v in &data {
            d.insert(v);
        }
        data.sort_unstable();
        for &phi in &[0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = qlove_stats::quantile_sorted(&data, phi) as f64;
            let got = d.quantile(phi).unwrap() as f64;
            let rel = ((got - exact) / exact.max(1.0)).abs();
            assert!(rel < 0.02, "phi={phi}: rel {rel}");
        }
    }

    #[test]
    fn tail_resolution_is_fine_grained() {
        // The k₁ scale function's promise: extreme-quantile rank error
        // shrinks toward the ends.
        let mut d = TDigest::new(200.0);
        let mut data: Vec<u64> = (0..200_000u64).map(|i| (i * 48271) % 999_983).collect();
        for &v in &data {
            d.insert(v);
        }
        data.sort_unstable();
        let got = d.quantile(0.999).unwrap();
        let got_rank = data.partition_point(|&x| x <= got) as f64;
        let want_rank = 0.999 * data.len() as f64;
        let rank_err = (got_rank - want_rank).abs() / data.len() as f64;
        assert!(rank_err < 5e-4, "tail rank error {rank_err}");
    }

    #[test]
    fn centroid_count_bounded_by_delta() {
        let mut d = TDigest::new(100.0);
        for v in 0..500_000u64 {
            d.insert((v * 7919) % 1_000_003);
        }
        let n = d.centroid_count();
        assert!(n < 250, "{n} centroids for δ = 100");
    }

    #[test]
    fn merge_close_to_bulk_insert() {
        let data_a: Vec<u64> = (0..40_000u64).map(|i| (i * 97) % 65_536).collect();
        let data_b: Vec<u64> = (0..40_000u64).map(|i| (i * 193) % 131_072).collect();
        let mut bulk = TDigest::new(200.0);
        let mut a = TDigest::new(200.0);
        let mut b = TDigest::new(200.0);
        for &v in &data_a {
            bulk.insert(v);
            a.insert(v);
        }
        for &v in &data_b {
            bulk.insert(v);
            b.insert(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        for &phi in &[0.1, 0.5, 0.9, 0.99] {
            let x = a.quantile(phi).unwrap() as f64;
            let y = bulk.quantile(phi).unwrap() as f64;
            assert!(((x - y) / y.max(1.0)).abs() < 0.02, "phi={phi}: {x} vs {y}");
        }
    }

    #[test]
    fn policy_sliding_accuracy() {
        let (window, period) = (8_000, 1_000);
        let mut p = TDigestPolicy::new(&[0.5, 0.99], window, period, 150.0);
        let data: Vec<u64> = (0..32_000u64).map(|i| 1 + (i * 7919) % 90_000).collect();
        let mut evals = 0;
        for (i, &v) in data.iter().enumerate() {
            if let Some(ans) = p.push(v) {
                evals += 1;
                let mut win: Vec<u64> = data[i + 1 - window..=i].to_vec();
                win.sort_unstable();
                for (j, &phi) in [0.5, 0.99].iter().enumerate() {
                    let exact = qlove_stats::quantile_sorted(&win, phi) as f64;
                    let rel = ((ans[j] as f64 - exact) / exact).abs();
                    assert!(rel < 0.03, "phi={phi} rel={rel} at {i}");
                }
            }
        }
        assert_eq!(evals, (32_000 - window) / period + 1);
    }
}
