//! The four-function incremental operator contract (§2).
//!
//! > To implement an incremental operator, developers should define the
//! > following functions: `InitialState`, `Accumulate`, `Deaccumulate`,
//! > `ComputeResult`.
//!
//! Operators are *factories plus logic*: the operator value holds query
//! parameters (e.g. which quantiles to answer), while the state it mints
//! holds per-window data. Executors own the state and route events.

/// An incremental aggregate in the paper's sense.
///
/// `Deaccumulate` has a default panicking implementation because some
/// operators are tumbling-only (QLOVE's Level 1 deliberately avoids
/// per-element deaccumulation, §3.1); the sliding executor requires
/// [`IncrementalAggregate::SUPPORTS_DEACCUMULATE`] so misuse fails at
/// construction, not mid-stream.
pub trait IncrementalAggregate {
    /// Per-window mutable state `S`.
    type State;
    /// Event payload type `E`.
    type Input;
    /// Query result type `R`.
    type Output;

    /// Whether `deaccumulate` is implemented (sliding-window capable).
    const SUPPORTS_DEACCUMULATE: bool = true;

    /// `InitialState: () => S`.
    fn initial_state(&self) -> Self::State;

    /// `Accumulate: (S, E) => S` — fold one arriving event into the state.
    fn accumulate(&self, state: &mut Self::State, input: &Self::Input);

    /// Fold a whole batch of arriving events into the state.
    ///
    /// The default loops [`IncrementalAggregate::accumulate`]; operators
    /// with a cheaper bulk path override it (e.g. the exact quantile
    /// operator sorts the batch and inserts run-lengths, one tree
    /// descent per unique value). Overrides must leave the state exactly
    /// as the per-element loop would — the window executors rely on
    /// this when they split batches at evaluation boundaries.
    fn accumulate_batch(&self, state: &mut Self::State, inputs: &[Self::Input]) {
        for input in inputs {
            self.accumulate(state, input);
        }
    }

    /// `Deaccumulate: (S, E) => S` — remove one expiring event.
    fn deaccumulate(&self, state: &mut Self::State, input: &Self::Input) {
        let _ = (state, input);
        unimplemented!("this operator does not support per-element deaccumulation")
    }

    /// `ComputeResult: S => R`.
    fn compute_result(&self, state: &Self::State) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MeanOp;

    #[test]
    fn average_operator_matches_paper_example() {
        // §2's worked example: average via {Count, Sum}.
        let op = MeanOp;
        let mut s = op.initial_state();
        for v in [1.0, 2.0, 3.0, 4.0] {
            op.accumulate(&mut s, &v);
        }
        assert_eq!(op.compute_result(&s), Some(2.5));
        op.deaccumulate(&mut s, &1.0);
        assert_eq!(op.compute_result(&s), Some(3.0));
    }
}
