//! Stock incremental operators.
//!
//! These serve three purposes: they are the worked examples of the §2
//! programming model (average is the paper's own illustration), they give
//! the examples/tests simple operators to exercise the executors with,
//! and `ExactQuantileOp` is the paper's `Exact` baseline packaged as an
//! engine operator.

use crate::aggregate::IncrementalAggregate;
use qlove_rbtree::FreqTree;

/// Running count of events.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountOp;

impl IncrementalAggregate for CountOp {
    type State = u64;
    type Input = f64;
    type Output = u64;

    fn initial_state(&self) -> u64 {
        0
    }
    fn accumulate(&self, state: &mut u64, _input: &f64) {
        *state += 1;
    }
    fn deaccumulate(&self, state: &mut u64, _input: &f64) {
        *state -= 1;
    }
    fn compute_result(&self, state: &u64) -> u64 {
        *state
    }
}

/// Running sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumOp;

impl IncrementalAggregate for SumOp {
    type State = f64;
    type Input = f64;
    type Output = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }
    fn accumulate(&self, state: &mut f64, input: &f64) {
        *state += *input;
    }
    fn deaccumulate(&self, state: &mut f64, input: &f64) {
        *state -= *input;
    }
    fn compute_result(&self, state: &f64) -> f64 {
        *state
    }
}

/// State for [`MeanOp`] — the paper's `{Count, Sum}` pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanState {
    /// Number of live events.
    pub count: u64,
    /// Sum of live event values.
    pub sum: f64,
}

/// Arithmetic mean — the operator §2 uses to introduce incremental
/// evaluation. Returns `None` over an empty window.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanOp;

impl IncrementalAggregate for MeanOp {
    type State = MeanState;
    type Input = f64;
    type Output = Option<f64>;

    fn initial_state(&self) -> MeanState {
        MeanState::default()
    }
    fn accumulate(&self, state: &mut MeanState, input: &f64) {
        state.count += 1;
        state.sum += *input;
    }
    fn deaccumulate(&self, state: &mut MeanState, input: &f64) {
        state.count -= 1;
        state.sum -= *input;
    }
    fn compute_result(&self, state: &MeanState) -> Option<f64> {
        if state.count == 0 {
            None
        } else {
            Some(state.sum / state.count as f64)
        }
    }
}

/// State for [`VarianceOp`]: moments Σx and Σx².
#[derive(Debug, Clone, Copy, Default)]
pub struct VarianceState {
    count: u64,
    sum: f64,
    sum_sq: f64,
}

/// Sample variance via deaccumulatable power sums. (Welford's recurrence
/// is more stable but cannot retract elements; power sums are the
/// standard sliding-window compromise.)
#[derive(Debug, Clone, Copy, Default)]
pub struct VarianceOp;

impl IncrementalAggregate for VarianceOp {
    type State = VarianceState;
    type Input = f64;
    type Output = Option<f64>;

    fn initial_state(&self) -> VarianceState {
        VarianceState::default()
    }
    fn accumulate(&self, state: &mut VarianceState, input: &f64) {
        state.count += 1;
        state.sum += *input;
        state.sum_sq += *input * *input;
    }
    fn deaccumulate(&self, state: &mut VarianceState, input: &f64) {
        state.count -= 1;
        state.sum -= *input;
        state.sum_sq -= *input * *input;
    }
    fn compute_result(&self, state: &VarianceState) -> Option<f64> {
        if state.count < 2 {
            return None;
        }
        let n = state.count as f64;
        let var = (state.sum_sq - state.sum * state.sum / n) / (n - 1.0);
        Some(var.max(0.0)) // clamp tiny negative rounding residue
    }
}

/// The `Exact` baseline (§5.1) as an engine operator: a frequency
/// red-black tree accumulates values and deaccumulates expiring ones
/// ("decrements its frequency by one, and is deleted … if the frequency
/// becomes zero"), answering any quantile set exactly.
#[derive(Debug, Clone)]
pub struct ExactQuantileOp {
    phis: Vec<f64>,
}

impl ExactQuantileOp {
    /// Operator answering the given quantile fractions each evaluation.
    pub fn new(phis: &[f64]) -> Self {
        assert!(!phis.is_empty(), "need at least one quantile");
        assert!(
            phis.iter().all(|p| (0.0..=1.0).contains(p)),
            "quantile fractions must lie in [0, 1]"
        );
        Self {
            phis: phis.to_vec(),
        }
    }

    /// The configured quantile fractions.
    pub fn phis(&self) -> &[f64] {
        &self.phis
    }
}

impl IncrementalAggregate for ExactQuantileOp {
    type State = FreqTree<u64>;
    type Input = u64;
    type Output = Vec<u64>;

    fn initial_state(&self) -> FreqTree<u64> {
        FreqTree::new()
    }
    fn accumulate(&self, state: &mut FreqTree<u64>, input: &u64) {
        state.insert(*input, 1);
    }
    fn accumulate_batch(&self, state: &mut FreqTree<u64>, inputs: &[u64]) {
        // Sort + run-length: one tree descent per unique value. The
        // state is a multiset, so this matches per-element insertion.
        let mut buf = inputs.to_vec();
        state.insert_batch(&mut buf);
    }
    fn deaccumulate(&self, state: &mut FreqTree<u64>, input: &u64) {
        state
            .remove(*input, 1)
            .expect("executor only expires previously-accumulated events");
    }
    fn compute_result(&self, state: &FreqTree<u64>) -> Vec<u64> {
        state.quantiles(&self.phis).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_sum_roundtrip() {
        let c = CountOp;
        let mut cs = c.initial_state();
        let s = SumOp;
        let mut ss = s.initial_state();
        for v in [1.0, 2.0, 3.0] {
            c.accumulate(&mut cs, &v);
            s.accumulate(&mut ss, &v);
        }
        assert_eq!(c.compute_result(&cs), 3);
        assert_eq!(s.compute_result(&ss), 6.0);
        c.deaccumulate(&mut cs, &1.0);
        s.deaccumulate(&mut ss, &1.0);
        assert_eq!(c.compute_result(&cs), 2);
        assert_eq!(s.compute_result(&ss), 5.0);
    }

    #[test]
    fn mean_empty_is_none() {
        let op = MeanOp;
        assert_eq!(op.compute_result(&op.initial_state()), None);
    }

    #[test]
    fn variance_matches_two_pass() {
        let op = VarianceOp;
        let mut s = op.initial_state();
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for v in &data {
            op.accumulate(&mut s, v);
        }
        let v = op.compute_result(&s).unwrap();
        assert!((v - 4.571_428_571).abs() < 1e-9);
        // Retract the first two, compare against direct computation.
        op.deaccumulate(&mut s, &2.0);
        op.deaccumulate(&mut s, &4.0);
        let direct = qlove_stats::variance(&data[2..]).unwrap();
        assert!((op.compute_result(&s).unwrap() - direct).abs() < 1e-9);
    }

    #[test]
    fn variance_needs_two_points() {
        let op = VarianceOp;
        let mut s = op.initial_state();
        assert_eq!(op.compute_result(&s), None);
        op.accumulate(&mut s, &1.0);
        assert_eq!(op.compute_result(&s), None);
    }

    #[test]
    fn exact_quantile_op_accumulate_and_expire() {
        let op = ExactQuantileOp::new(&[0.5, 1.0]);
        let mut s = op.initial_state();
        for v in 1..=10u64 {
            op.accumulate(&mut s, &v);
        }
        assert_eq!(op.compute_result(&s), vec![5, 10]);
        for v in 1..=5u64 {
            op.deaccumulate(&mut s, &v);
        }
        // Remaining: 6..=10 → median ceil(0.5·5)=3rd = 8.
        assert_eq!(op.compute_result(&s), vec![8, 10]);
    }

    #[test]
    #[should_panic(expected = "at least one quantile")]
    fn exact_quantile_op_requires_phis() {
        ExactQuantileOp::new(&[]);
    }
}
