//! Count-based window executors (§2's windowing models).
//!
//! A window query is `(size N, period K)`: evaluate over the latest `N`
//! elements, once per `K` arrivals. `N == K` is a tumbling window (no
//! element outlives one evaluation, no deaccumulation); `N > K` is a
//! sliding window (elements stay live across `N/K` evaluations and must
//! be deaccumulated on expiry).

use crate::aggregate::IncrementalAggregate;
use std::collections::VecDeque;

/// Window size and period, both counted in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window size `N`: how many recent elements a query evaluation sees.
    pub size: usize,
    /// Window period `K`: evaluate after every `K` insertions.
    pub period: usize,
}

impl WindowSpec {
    /// A sliding window (`size ≥ period`).
    ///
    /// # Panics
    /// Panics when `period == 0` or `size < period`.
    pub fn sliding(size: usize, period: usize) -> Self {
        assert!(period > 0, "window period must be positive");
        assert!(size >= period, "window size must be ≥ period");
        Self { size, period }
    }

    /// A tumbling window (`size == period`).
    pub fn tumbling(size: usize) -> Self {
        Self::sliding(size, size)
    }

    /// `true` when size equals period.
    pub fn is_tumbling(&self) -> bool {
        self.size == self.period
    }

    /// Number of whole periods per window (`N/K`, rounded up) — the
    /// sub-window count QLOVE and CMQS partition the window into.
    pub fn subwindows(&self) -> usize {
        self.size.div_ceil(self.period)
    }
}

/// Tumbling-window executor: accumulate `P` events, emit, reset.
///
/// Matches the paper's observation that tumbling queries skip
/// `Deaccumulate` entirely: state is rebuilt from `InitialState` per
/// window (operators with cheap `reset` semantics can make
/// `initial_state` reuse allocations).
#[derive(Debug)]
pub struct TumblingWindow<A: IncrementalAggregate> {
    op: A,
    state: A::State,
    size: usize,
    filled: usize,
}

impl<A: IncrementalAggregate> TumblingWindow<A> {
    /// Build an executor over windows of `size` elements.
    pub fn new(op: A, size: usize) -> Self {
        assert!(size > 0, "window size must be positive");
        let state = op.initial_state();
        Self {
            op,
            state,
            size,
            filled: 0,
        }
    }

    /// Feed one event; returns the window result when this event closes a
    /// window.
    pub fn push(&mut self, input: A::Input) -> Option<A::Output> {
        self.op.accumulate(&mut self.state, &input);
        self.filled += 1;
        if self.filled == self.size {
            let out = self.op.compute_result(&self.state);
            self.state = self.op.initial_state();
            self.filled = 0;
            Some(out)
        } else {
            None
        }
    }

    /// Feed a batch of events in stream order, appending one result per
    /// window the batch closes.
    ///
    /// Batches are split at window boundaries and each full span is
    /// folded with [`IncrementalAggregate::accumulate_batch`], so
    /// results are identical to calling [`TumblingWindow::push`] per
    /// element (given a law-abiding `accumulate_batch`).
    pub fn push_batch(&mut self, inputs: &[A::Input], out: &mut Vec<A::Output>) {
        let mut rest = inputs;
        while !rest.is_empty() {
            let room = self.size - self.filled;
            let (chunk, tail) = rest.split_at(room.min(rest.len()));
            rest = tail;
            self.op.accumulate_batch(&mut self.state, chunk);
            self.filled += chunk.len();
            if self.filled == self.size {
                out.push(self.op.compute_result(&self.state));
                self.state = self.op.initial_state();
                self.filled = 0;
            }
        }
    }

    /// Events accumulated into the currently open window.
    pub fn pending(&self) -> usize {
        self.filled
    }

    /// Access the wrapped operator.
    pub fn operator(&self) -> &A {
        &self.op
    }
}

/// Sliding-window executor: keeps the live elements in a ring buffer and
/// calls `Deaccumulate` for each expiry, exactly as Trill executes
/// sliding aggregates (§2).
///
/// Evaluation policy: the first result is emitted when the window first
/// fills to `N` elements, then every `K` arrivals thereafter — so every
/// emitted result covers exactly `N` elements, which is what the paper's
/// error metrics average over.
#[derive(Debug)]
pub struct SlidingWindow<A: IncrementalAggregate>
where
    A::Input: Clone,
{
    op: A,
    state: A::State,
    spec: WindowSpec,
    live: VecDeque<A::Input>,
    since_eval: usize,
}

impl<A: IncrementalAggregate> SlidingWindow<A>
where
    A::Input: Clone,
{
    /// Build an executor. For genuinely sliding specs the operator must
    /// support deaccumulation.
    ///
    /// # Panics
    /// Panics when `spec` slides but `A::SUPPORTS_DEACCUMULATE` is false.
    pub fn new(op: A, spec: WindowSpec) -> Self {
        assert!(
            spec.is_tumbling() || A::SUPPORTS_DEACCUMULATE,
            "operator cannot deaccumulate; use a tumbling window or a \
             sub-window-based operator"
        );
        let state = op.initial_state();
        Self {
            op,
            state,
            spec,
            live: VecDeque::with_capacity(spec.size + 1),
            since_eval: 0,
        }
    }

    /// Feed one event; returns a result on period boundaries once the
    /// window is full.
    ///
    /// A tumbling spec (`size == period`) takes the cheap path the paper
    /// describes: no element retention, no deaccumulation — the state is
    /// simply reset after each emission.
    pub fn push(&mut self, input: A::Input) -> Option<A::Output> {
        self.op.accumulate(&mut self.state, &input);
        self.since_eval += 1;
        if self.spec.is_tumbling() {
            if self.since_eval == self.spec.period {
                let out = self.op.compute_result(&self.state);
                self.state = self.op.initial_state();
                self.since_eval = 0;
                return Some(out);
            }
            return None;
        }
        self.live.push_back(input);
        if self.live.len() > self.spec.size {
            let expired = self.live.pop_front().expect("len > size ≥ 1");
            self.op.deaccumulate(&mut self.state, &expired);
        }
        if self.live.len() == self.spec.size && self.since_eval >= self.spec.period {
            self.since_eval = 0;
            Some(self.op.compute_result(&self.state))
        } else {
            None
        }
    }

    /// Feed a batch of events in stream order, appending one result per
    /// evaluation boundary the batch crosses.
    ///
    /// The batch is split at evaluation boundaries; between boundaries
    /// the arriving span is folded with
    /// [`IncrementalAggregate::accumulate_batch`] and the expiring span
    /// deaccumulated, so the state observed at each boundary equals the
    /// per-element path's. This requires the operator's
    /// accumulate/deaccumulate to be order-insensitive between
    /// boundaries (true of every multiset/sum-like operator in this
    /// workspace); order-sensitive operators must stick to
    /// [`SlidingWindow::push`].
    pub fn push_batch(&mut self, inputs: &[A::Input], out: &mut Vec<A::Output>) {
        if self.spec.is_tumbling() {
            // Cheap tumbling path: no retention, no deaccumulation.
            let mut rest = inputs;
            while !rest.is_empty() {
                let room = self.spec.period - self.since_eval;
                let (chunk, tail) = rest.split_at(room.min(rest.len()));
                rest = tail;
                self.op.accumulate_batch(&mut self.state, chunk);
                self.since_eval += chunk.len();
                if self.since_eval == self.spec.period {
                    out.push(self.op.compute_result(&self.state));
                    self.state = self.op.initial_state();
                    self.since_eval = 0;
                }
            }
            return;
        }
        let mut rest = inputs;
        while !rest.is_empty() {
            // Elements until the next possible evaluation: the window
            // first filling to `size` (at which point `since_eval ≥
            // period` necessarily holds), then every `period`.
            let until_eval = if self.live.len() < self.spec.size {
                self.spec.size - self.live.len()
            } else {
                self.spec.period - self.since_eval
            };
            let (chunk, tail) = rest.split_at(until_eval.min(rest.len()));
            rest = tail;
            self.op.accumulate_batch(&mut self.state, chunk);
            self.since_eval += chunk.len();
            self.live.extend(chunk.iter().cloned());
            while self.live.len() > self.spec.size {
                let expired = self.live.pop_front().expect("len > size ≥ 1");
                self.op.deaccumulate(&mut self.state, &expired);
            }
            if self.live.len() == self.spec.size && self.since_eval >= self.spec.period {
                self.since_eval = 0;
                out.push(self.op.compute_result(&self.state));
            }
        }
    }

    /// Elements currently inside the window (≤ `N`).
    pub fn len(&self) -> usize {
        if self.spec.is_tumbling() {
            self.since_eval
        } else {
            self.live.len()
        }
    }

    /// `true` when no elements are live in the window.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the live window contents, oldest first.
    pub fn live_elements(&self) -> impl Iterator<Item = &A::Input> {
        self.live.iter()
    }

    /// Access the wrapped operator.
    pub fn operator(&self) -> &A {
        &self.op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, ExactQuantileOp, MeanOp};

    #[test]
    fn spec_constructors_and_validation() {
        let s = WindowSpec::sliding(100, 10);
        assert!(!s.is_tumbling());
        assert_eq!(s.subwindows(), 10);
        let t = WindowSpec::tumbling(50);
        assert!(t.is_tumbling());
        assert_eq!(t.subwindows(), 1);
    }

    #[test]
    #[should_panic(expected = "≥ period")]
    fn spec_rejects_size_below_period() {
        WindowSpec::sliding(5, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn spec_rejects_zero_period() {
        WindowSpec::sliding(10, 0);
    }

    #[test]
    fn tumbling_emits_every_size_events() {
        let mut w = TumblingWindow::new(MeanOp, 4);
        let mut results = Vec::new();
        for v in 1..=12 {
            if let Some(r) = w.push(v as f64) {
                results.push(r.unwrap());
            }
        }
        assert_eq!(results, vec![2.5, 6.5, 10.5]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn tumbling_partial_window_pending() {
        let mut w = TumblingWindow::new(CountOp, 10);
        for v in 0..7 {
            assert!(w.push(v as f64).is_none());
        }
        assert_eq!(w.pending(), 7);
    }

    #[test]
    fn sliding_first_emit_when_full_then_each_period() {
        let mut w = SlidingWindow::new(CountOp, WindowSpec::sliding(6, 2));
        let mut emit_at = Vec::new();
        for i in 1..=12 {
            if w.push(i as f64).is_some() {
                emit_at.push(i);
            }
        }
        assert_eq!(emit_at, vec![6, 8, 10, 12]);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn sliding_window_contents_match_latest_n() {
        let op = ExactQuantileOp::new(&[1.0]); // max of window
        let mut w = SlidingWindow::new(op, WindowSpec::sliding(3, 1));
        let mut maxes = Vec::new();
        for v in [5u64, 1, 9, 2, 3, 10, 4] {
            if let Some(r) = w.push(v) {
                maxes.push(r[0]);
            }
        }
        // Windows: [5,1,9] [1,9,2] [9,2,3] [2,3,10] [3,10,4]
        assert_eq!(maxes, vec![9, 9, 9, 10, 10]);
    }

    #[test]
    fn sliding_equals_recompute_from_scratch() {
        // Deaccumulation must give identical results to recomputation.
        let spec = WindowSpec::sliding(50, 10);
        let op = ExactQuantileOp::new(&[0.5, 0.9]);
        let mut w = SlidingWindow::new(op, spec);
        let data: Vec<u64> = (0..200u64).map(|i| (i * 37) % 101).collect();
        let mut all = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            if let Some(r) = w.push(v) {
                let mut window: Vec<u64> = data[i + 1 - 50..=i].to_vec();
                window.sort_unstable();
                let want = vec![
                    qlove_stats::quantile_sorted(&window, 0.5),
                    qlove_stats::quantile_sorted(&window, 0.9),
                ];
                all.push((r.clone(), want.clone()));
                assert_eq!(r, want, "at event {i}");
            }
        }
        assert_eq!(all.len(), 16); // (200 - 50)/10 + 1
    }

    #[test]
    fn tumbling_spec_via_sliding_executor() {
        // size == period: no deaccumulation ever happens, results match
        // TumblingWindow.
        let mut s = SlidingWindow::new(CountOp, WindowSpec::tumbling(4));
        let mut t = TumblingWindow::new(CountOp, 4);
        for i in 0..16 {
            assert_eq!(s.push(i as f64), t.push(i as f64));
        }
    }

    #[test]
    fn tumbling_push_batch_matches_push() {
        let data: Vec<f64> = (0..103).map(f64::from).collect();
        for split in [1usize, 3, 4, 7, 50, 200] {
            let mut batched = TumblingWindow::new(MeanOp, 4);
            let mut out = Vec::new();
            for chunk in data.chunks(split) {
                batched.push_batch(chunk, &mut out);
            }
            let mut reference = TumblingWindow::new(MeanOp, 4);
            let want: Vec<_> = data.iter().filter_map(|&v| reference.push(v)).collect();
            assert_eq!(out, want, "split {split}");
            assert_eq!(batched.pending(), reference.pending());
        }
    }

    #[test]
    fn sliding_push_batch_matches_push_all_splits() {
        let data: Vec<u64> = (0..500u64).map(|i| (i * 37) % 101).collect();
        let spec = WindowSpec::sliding(50, 10);
        for split in [1usize, 7, 10, 49, 50, 64, 500] {
            let op = ExactQuantileOp::new(&[0.5, 0.9]);
            let mut batched = SlidingWindow::new(op, spec);
            let mut out = Vec::new();
            for chunk in data.chunks(split) {
                batched.push_batch(chunk, &mut out);
            }
            let mut reference = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.9]), spec);
            let want: Vec<_> = data.iter().filter_map(|&v| reference.push(v)).collect();
            assert_eq!(out, want, "split {split}");
            assert_eq!(batched.len(), reference.len());
        }
    }

    #[test]
    fn push_and_push_batch_interleave() {
        // Mixing entry points mid-window must preserve the schedule.
        let spec = WindowSpec::sliding(20, 5);
        let mut mixed = SlidingWindow::new(ExactQuantileOp::new(&[1.0]), spec);
        let mut reference = SlidingWindow::new(ExactQuantileOp::new(&[1.0]), spec);
        let data: Vec<u64> = (0..200u64).map(|i| (i * 13) % 47).collect();
        let mut got = Vec::new();
        let mut iter = data.chunks(7);
        let mut flip = false;
        for chunk in iter.by_ref() {
            if flip {
                mixed.push_batch(chunk, &mut got);
            } else {
                for &v in chunk {
                    if let Some(r) = mixed.push(v) {
                        got.push(r);
                    }
                }
            }
            flip = !flip;
        }
        let want: Vec<_> = data.iter().filter_map(|&v| reference.push(v)).collect();
        assert_eq!(got, want);
    }

    struct NoDeacc;
    impl IncrementalAggregate for NoDeacc {
        type State = ();
        type Input = f64;
        type Output = ();
        const SUPPORTS_DEACCUMULATE: bool = false;
        fn initial_state(&self) {}
        fn accumulate(&self, _: &mut (), _: &f64) {}
        fn compute_result(&self, _: &()) {}
    }

    #[test]
    #[should_panic(expected = "cannot deaccumulate")]
    fn sliding_rejects_tumbling_only_operator() {
        SlidingWindow::new(NoDeacc, WindowSpec::sliding(10, 5));
    }

    #[test]
    fn tumbling_only_operator_allowed_in_tumbling_spec() {
        let mut w = SlidingWindow::new(NoDeacc, WindowSpec::tumbling(3));
        for i in 0..9 {
            w.push(i as f64);
        }
    }
}
