//! # qlove-stream — a minimal incremental streaming engine
//!
//! The paper implements QLOVE inside Microsoft's Trill streaming engine
//! (§2, §5). Trill is closed-source C#, so this crate provides the
//! substrate QLOVE actually needs from it, with the same contract:
//!
//! * an **incremental evaluation** model (§2) where an operator is four
//!   functions — `InitialState`, `Accumulate`, `Deaccumulate`,
//!   `ComputeResult` — captured by [`IncrementalAggregate`];
//! * **tumbling** and **sliding** count-based windows (§2's windowing
//!   models) driven by [`TumblingWindow`] and [`SlidingWindow`]
//!   executors, the latter invoking `Deaccumulate` for every expiring
//!   element exactly as Trill does;
//! * **event-time windows** ([`time_window`]) — §2's "evaluate the query
//!   every one minute for the elements seen last one hour";
//! * a small LINQ-flavoured [`pipeline`] layer so the paper's query
//!   `Stream.Window(size, period).Where(pred).Aggregate(quantiles)`
//!   (§5.1, `Qmonitor`) can be written almost verbatim in Rust;
//! * a [`parallel`] module (crossbeam channel + workers): pipelined
//!   execution that overlaps event generation with operator execution,
//!   per-shard independent windows ([`parallel::run_sharded`]), and a
//!   true distributed executor ([`parallel::run_distributed`]) that
//!   answers one logical window from N ingestion shards by merging
//!   sub-window summaries (§7's distributed-computing extension).
//!
//! Window-size/period semantics follow the paper: a query over windows of
//! `N` elements evaluated every `K` insertions; tumbling means `N == K`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod event;
pub mod ops;
pub mod parallel;
pub mod pipeline;
pub mod policy;
pub mod time_window;
pub mod window;

pub use aggregate::IncrementalAggregate;
pub use event::Event;
pub use parallel::{
    coordinate_pipelined, run_distributed, run_distributed_with_stats, run_pipelined, run_sharded,
    PipelineStats, ShardAccumulator, SummaryMerge,
};
pub use pipeline::Pipeline;
pub use policy::QuantilePolicy;
pub use time_window::{TimeSlidingWindow, TimeWindowSpec, TimedResult};
pub use window::{SlidingWindow, TumblingWindow, WindowSpec};
