//! Pipelined (producer/consumer) execution.
//!
//! The paper measures single-thread operator throughput; to do the same
//! without the workload generator polluting the measurement, the harness
//! runs generation on one thread and the operator on another, connected
//! by a bounded crossbeam channel. This module packages that pattern and
//! also offers a sharded executor (one operator instance per worker, as a
//! distributed deployment would run QLOVE per ingestion shard — §7 notes
//! the design extends to distributed computing).

use crate::aggregate::IncrementalAggregate;
use crate::window::{SlidingWindow, WindowSpec};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// Batch size used on the channel: amortizes per-message synchronization,
/// keeping the channel out of the measured operator cost.
const BATCH: usize = 4096;

/// Run `op` over `values` on a dedicated consumer thread while the
/// producer thread generates input, returning all emitted window results.
///
/// The generic bounds require `Send` because values cross threads; all
/// telemetry payloads used in this workspace are `u64`/`f64`.
pub fn run_pipelined<A, I>(op: A, spec: WindowSpec, values: I) -> Vec<A::Output>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send,
    A::Output: Send,
    A::State: Send,
    I: IntoIterator<Item = A::Input> + Send,
{
    let (tx, rx) = channel::bounded::<Vec<A::Input>>(8);
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut batch = Vec::with_capacity(BATCH);
            for v in values {
                batch.push(v);
                if batch.len() == BATCH
                    && tx.send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH))).is_err() {
                        return;
                    }
            }
            if !batch.is_empty() {
                let _ = tx.send(batch);
            }
        });
        let mut window = SlidingWindow::new(op, spec);
        let mut out = Vec::new();
        for batch in rx.iter() {
            for v in batch {
                if let Some(r) = window.push(v) {
                    out.push(r);
                }
            }
        }
        out
    })
}

/// Shard `values` round-robin across `shards` worker threads, each
/// running an independent sliding-window instance of the operator built
/// by `make_op`; returns each shard's emitted results.
///
/// This models per-shard quantile monitoring (each ingestion pipeline
/// watches its own slice of traffic); it is *not* a distributed merge of
/// one logical window.
pub fn run_sharded<A, F>(
    make_op: F,
    spec: WindowSpec,
    values: &[A::Input],
    shards: usize,
) -> Vec<Vec<A::Output>>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send + Sync,
    A::Output: Send,
    F: Fn() -> A + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let results: Vec<Mutex<Vec<A::Output>>> =
        (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let results = Arc::new(results);
    thread::scope(|scope| {
        for shard in 0..shards {
            let results = Arc::clone(&results);
            let make_op = &make_op;
            scope.spawn(move || {
                let mut window = SlidingWindow::new(make_op(), spec);
                let mut local = Vec::new();
                for v in values.iter().skip(shard).step_by(shards) {
                    if let Some(r) = window.push(v.clone()) {
                        local.push(r);
                    }
                }
                *results[shard].lock() = local;
            });
        }
    });
    Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("worker threads joined; sole owner"))
        .into_iter()
        .map(Mutex::into_inner)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, ExactQuantileOp};

    #[test]
    fn pipelined_matches_sequential() {
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 1000).collect();
        let spec = WindowSpec::sliding(1000, 500);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.99]), spec, data.clone());
        let mut seq_window = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.99]), spec);
        let seq: Vec<_> = data.iter().filter_map(|&v| seq_window.push(v)).collect();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 9);
    }

    #[test]
    fn pipelined_handles_short_streams() {
        let out = run_pipelined(CountOp, WindowSpec::tumbling(10), (0..5).map(f64::from));
        assert!(out.is_empty());
    }

    #[test]
    fn sharded_each_shard_sees_its_slice() {
        let data: Vec<u64> = (0..4000).collect();
        let spec = WindowSpec::tumbling(500);
        let out = run_sharded(|| ExactQuantileOp::new(&[1.0]), spec, &data, 4);
        assert_eq!(out.len(), 4);
        for (shard, results) in out.iter().enumerate() {
            // Each shard got 1000 values → two tumbling windows of 500.
            assert_eq!(results.len(), 2, "shard {shard}");
            // Max of shard's first window: values shard + 4k for k < 500.
            assert_eq!(results[0][0], shard as u64 + 4 * 499);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_shards() {
        let data: Vec<f64> = vec![];
        run_sharded(|| CountOp, WindowSpec::tumbling(1), &data, 0);
    }
}
