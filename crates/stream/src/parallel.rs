//! Pipelined, sharded, and distributed execution.
//!
//! The paper measures single-thread operator throughput; to do the same
//! without the workload generator polluting the measurement, the harness
//! runs generation on one thread and the operator on another, connected
//! by a bounded crossbeam channel ([`run_pipelined`]). Two multi-worker
//! executors build on that substrate, covering the two deployment shapes
//! §7's "extends to distributed computing" remark implies:
//!
//! * [`run_sharded`] — **independent windows**: one operator instance
//!   per worker, each answering its own slice of traffic (per-pipeline
//!   monitoring). Answers are per-shard; nothing is merged.
//! * [`run_distributed`] — **one logical window**: values are dealt
//!   round-robin across shard accumulators, shards surrender mergeable
//!   summaries at every sub-window boundary, and a coordinator folds
//!   them into a single logical window whose answers equal a
//!   single-instance run over the undealt stream. Its merge loop is the
//!   shared double-buffered core [`coordinate_pipelined`], which also
//!   drives the multi-process socket transport (`qlove_transport`):
//!   boundary *b* merges on a dedicated thread while shards ingest
//!   toward boundary *b+1*.
//!
//! Both executors are agnostic to how an operator stores its state:
//! QLOVE's Level-1 backend (red-black tree, or the dense direct-indexed
//! store `qlove_freqstore` enables for quantized domains) rides along
//! inside the operator the `make_op`/`make_shard` closures construct,
//! so the same executor serves either backend — only the cost of
//! [`SummaryMerge::merge_summary`] changes (per-key tree descents vs
//! array adds). Summaries themselves are backend-neutral sorted
//! `(value, frequency)` multisets, so shards and the coordinator may
//! even run different backends.

use crate::aggregate::IncrementalAggregate;
use crate::window::{SlidingWindow, WindowSpec};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Batch size used on the channel: amortizes per-message synchronization,
/// keeping the channel out of the measured operator cost. The consumer
/// feeds each batch straight into the executor's batched ingestion path
/// ([`SlidingWindow::push_batch`]), so the batching survives end to end
/// instead of being undone element by element at the consumer.
pub const BATCH: usize = 4096;

/// Run `op` over `values` on a dedicated consumer thread while the
/// producer thread generates input, returning all emitted window results.
///
/// The generic bounds require `Send` because values cross threads; all
/// telemetry payloads used in this workspace are `u64`/`f64`.
pub fn run_pipelined<A, I>(op: A, spec: WindowSpec, values: I) -> Vec<A::Output>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send,
    A::Output: Send,
    A::State: Send,
    I: IntoIterator<Item = A::Input> + Send,
{
    let (tx, rx) = channel::bounded::<Vec<A::Input>>(8);
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut batch = Vec::with_capacity(BATCH);
            for v in values {
                batch.push(v);
                if batch.len() == BATCH
                    && tx
                        .send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH)))
                        .is_err()
                {
                    return;
                }
            }
            if !batch.is_empty() {
                let _ = tx.send(batch);
            }
        });
        let mut window = SlidingWindow::new(op, spec);
        let mut out = Vec::new();
        for batch in rx.iter() {
            window.push_batch(&batch, &mut out);
        }
        out
    })
}

/// Shard `values` round-robin across `shards` worker threads, each
/// running an **independent** sliding-window instance of the operator
/// built by `make_op`; returns each shard's emitted results.
///
/// This models per-shard quantile monitoring: each ingestion pipeline
/// watches its own slice of traffic and answers for that slice only.
/// For one logical window answered collectively from every shard's
/// data — the distributed merge of sub-window summaries — use
/// [`run_distributed`].
pub fn run_sharded<A, F>(
    make_op: F,
    spec: WindowSpec,
    values: &[A::Input],
    shards: usize,
) -> Vec<Vec<A::Output>>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send + Sync,
    A::Output: Send,
    F: Fn() -> A + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let results: Vec<Mutex<Vec<A::Output>>> = (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let results = Arc::new(results);
    thread::scope(|scope| {
        for shard in 0..shards {
            let results = Arc::clone(&results);
            let make_op = &make_op;
            scope.spawn(move || {
                let mut window = SlidingWindow::new(make_op(), spec);
                let mut local = Vec::new();
                // Re-batch the strided slice so each worker also rides
                // the batched ingestion path.
                let mut batch: Vec<A::Input> = Vec::with_capacity(BATCH);
                for v in values.iter().skip(shard).step_by(shards) {
                    batch.push(v.clone());
                    if batch.len() == BATCH {
                        window.push_batch(&batch, &mut local);
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    window.push_batch(&batch, &mut local);
                }
                *results[shard].lock() = local;
            });
        }
    });
    Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("worker threads joined; sole owner"))
        .into_iter()
        .map(Mutex::into_inner)
        .collect()
}

/// The shard half of a distributed one-logical-window execution: a
/// boundary-free accumulator over one shard's slice of the stream that
/// periodically surrenders its in-flight state as a mergeable summary.
///
/// Implementations must be order-insensitive within a sub-window (a
/// multiset-like state), because the executor deals elements round-robin
/// and shards ingest their slices concurrently. Every summary covers
/// exactly the elements ingested since the previous `take_summary`.
pub trait ShardAccumulator {
    /// Element type ingested.
    type Input;
    /// The mergeable state snapshot shipped to the coordinator.
    type Summary: Send;
    /// Fold a batch of this shard's elements into the in-flight state.
    /// The executor guarantees batches never straddle a logical
    /// sub-window boundary.
    fn ingest_batch(&mut self, values: &[Self::Input]);
    /// Snapshot the in-flight state as a summary and reset it.
    fn take_summary(&mut self) -> Self::Summary;
}

/// The coordinator half of a distributed one-logical-window execution:
/// merges shard summaries into one logical window and emits an answer
/// whenever a merge completes an evaluation.
pub trait SummaryMerge {
    /// Summary type accepted (the shards' [`ShardAccumulator::Summary`]).
    type Summary;
    /// Window evaluation output.
    type Output;
    /// Merge one shard's summary into the logical window. Returns
    /// `Some` when this merge closed a sub-window that produced an
    /// evaluation (at most the final summary of each boundary group
    /// does).
    fn merge_summary(&mut self, summary: &Self::Summary) -> Option<Self::Output>;
}

/// Timing breakdown of a pipelined coordinator run
/// ([`coordinate_pipelined`]): how much merge work was hidden behind
/// summary collection (and, through collection's blocking reads, behind
/// shard ingest).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Boundary groups that went through the merger.
    pub boundaries: usize,
    /// Total time the merger thread spent merging summaries.
    pub merge_ns: u128,
    /// Total time the collector spent assembling boundary groups —
    /// including blocking on shard channels or sockets, which is
    /// exactly the ingest time merging should hide behind.
    pub collect_ns: u128,
    /// Wall-clock time of the whole coordinate loop.
    pub wall_ns: u128,
}

impl PipelineStats {
    /// Merge time that ran concurrently with collection: the busy time
    /// the two pipeline stages spent beyond the wall clock. Zero when
    /// the host serializes them (e.g. a 1-CPU runner) — overlap needs
    /// real parallelism to exist.
    pub fn overlap_ns(&self) -> u128 {
        (self.merge_ns + self.collect_ns).saturating_sub(self.wall_ns)
    }

    /// [`PipelineStats::overlap_ns`] per boundary, in microseconds.
    pub fn overlap_us_per_boundary(&self) -> f64 {
        if self.boundaries == 0 {
            return 0.0;
        }
        self.overlap_ns() as f64 / self.boundaries as f64 / 1e3
    }

    /// Fraction of total merge time hidden behind collection, in
    /// `[0, 1]`. `0.0` when no merging happened.
    pub fn merge_hidden_fraction(&self) -> f64 {
        if self.merge_ns == 0 {
            return 0.0;
        }
        (self.overlap_ns() as f64 / self.merge_ns as f64).min(1.0)
    }
}

/// Drive a [`SummaryMerge`] coordinator over `boundaries` boundary
/// groups with a **double-buffered merge pipeline**: the caller's
/// `collect` closure assembles boundary group *b+1* while a dedicated
/// merger thread folds group *b* into the coordinator.
///
/// This is the shared coordinator core of every distributed backend:
/// the in-process thread executor ([`run_distributed`]) collects from
/// per-shard channels, and the multi-process socket transport
/// (`qlove_transport`) collects by reading summary frames — both hand
/// complete groups to the same merger loop here. Two group buffers
/// rotate through a recycle channel, so steady-state collection
/// allocates nothing and the collector can run at most one full group
/// ahead of the merger (bounded in-flight memory, real backpressure).
///
/// `collect` is called once per boundary, in stream order, with a
/// cleared buffer to fill with that boundary's summaries (in shard
/// order — any order yields the same multiset, shard order keeps runs
/// reproducible). Returning `Err` stops the pipeline: the merger
/// finishes the groups already handed over, then the error is
/// propagated with the answers produced so far discarded.
///
/// Returns the merged answers in stream order plus a [`PipelineStats`]
/// recording how much merge time the pipelining hid.
pub fn coordinate_pipelined<C, E, F>(
    coordinator: &mut C,
    boundaries: usize,
    mut collect: F,
) -> Result<(Vec<C::Output>, PipelineStats), E>
where
    C: SummaryMerge + Send,
    C::Summary: Send,
    C::Output: Send,
    F: FnMut(usize, &mut Vec<C::Summary>) -> Result<(), E>,
{
    let wall_start = Instant::now();
    let (answers, merge_ns, collect_ns) = thread::scope(|scope| {
        // Group channel capacity 1 + two recycled buffers = double
        // buffering: one group being merged, one in flight or being
        // collected.
        let (group_tx, group_rx) = channel::bounded::<Vec<C::Summary>>(1);
        let (recycle_tx, recycle_rx) = channel::bounded::<Vec<C::Summary>>(2);
        for _ in 0..2 {
            assert!(
                recycle_tx.send(Vec::new()).is_ok(),
                "seeding empty group buffers"
            );
        }
        let merger = scope.spawn(move || {
            let mut answers = Vec::new();
            let mut merge_ns = 0u128;
            for group in group_rx.iter() {
                let start = Instant::now();
                for summary in &group {
                    if let Some(answer) = coordinator.merge_summary(summary) {
                        answers.push(answer);
                    }
                }
                merge_ns += start.elapsed().as_nanos();
                // The collector may already be gone (error path); the
                // buffer is simply dropped then.
                let _ = recycle_tx.send(group);
            }
            (answers, merge_ns)
        });
        let mut collect_ns = 0u128;
        let mut failed: Option<E> = None;
        for boundary in 0..boundaries {
            // A closed channel here means the merger thread died; fall
            // through to the join below, which re-raises the merger's
            // actual panic payload instead of a channel artifact.
            let Ok(mut group) = recycle_rx.recv() else {
                break;
            };
            group.clear();
            let start = Instant::now();
            let result = collect(boundary, &mut group);
            collect_ns += start.elapsed().as_nanos();
            match result {
                Ok(()) => {
                    if group_tx.send(group).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        drop(group_tx);
        let (answers, merge_ns) = match merger.join() {
            Ok(out) => out,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        match failed {
            Some(e) => Err(e),
            None => Ok((answers, merge_ns, collect_ns)),
        }
    })?;
    Ok((
        answers,
        PipelineStats {
            boundaries,
            merge_ns,
            collect_ns,
            wall_ns: wall_start.elapsed().as_nanos(),
        },
    ))
}

/// Answer **one logical window** from `shards` ingestion shards.
///
/// Values are dealt round-robin (element `i` to shard `i % shards`, the
/// arrival-order interleaving a distributed ingestion tier produces);
/// each shard accumulates its slice through the batched path and, at
/// every logical sub-window boundary (each `period` elements of the
/// *logical* stream), ships a summary of its partial sub-window to the
/// coordinator. The coordinator merges each boundary's summaries — in
/// stream order across boundaries — and returns the emitted answers.
/// Merging is pipelined through [`coordinate_pipelined`]: boundary
/// *b*'s group merges on a dedicated thread while the shards ingest
/// toward (and the collector assembles) boundary *b+1*.
///
/// Because shard state is a multiset union, the merged sub-window is
/// element-for-element the one a single instance would have built from
/// the undealt stream, so the answers (and the coordinator's trailing
/// in-flight state) match a sequential run exactly. A trailing partial
/// sub-window is shipped and merged too, leaving it pending in the
/// coordinator rather than dropped.
///
/// # Panics
/// Panics when `shards == 0` or `period == 0`.
pub fn run_distributed<S, C, F>(
    make_shard: F,
    coordinator: &mut C,
    period: usize,
    values: &[S::Input],
    shards: usize,
) -> Vec<C::Output>
where
    S: ShardAccumulator,
    S::Input: Clone + Sync,
    S::Summary: Send,
    C: SummaryMerge<Summary = S::Summary> + Send,
    C::Output: Send,
    F: Fn() -> S + Sync,
{
    run_distributed_with_stats(make_shard, coordinator, period, values, shards).0
}

/// [`run_distributed`], additionally reporting the coordinator's
/// [`PipelineStats`] (how much merge time overlapped shard ingest).
pub fn run_distributed_with_stats<S, C, F>(
    make_shard: F,
    coordinator: &mut C,
    period: usize,
    values: &[S::Input],
    shards: usize,
) -> (Vec<C::Output>, PipelineStats)
where
    S: ShardAccumulator,
    S::Input: Clone + Sync,
    S::Summary: Send,
    C: SummaryMerge<Summary = S::Summary> + Send,
    C::Output: Send,
    F: Fn() -> S + Sync,
{
    assert!(shards > 0, "need at least one shard");
    assert!(period > 0, "need a positive sub-window period");
    // One bounded channel per shard: each shard sends its summaries in
    // boundary order, so the k-th message on shard i's channel *is*
    // boundary k — no tagging or reorder buffering needed — and the
    // per-channel capacity is real backpressure (a fast shard can run
    // at most `capacity` boundaries ahead of the coordinator, keeping
    // in-flight summary memory bounded no matter how skewed the shard
    // scheduling gets).
    let boundaries = values.len().div_ceil(period);
    thread::scope(|scope| {
        let mut receivers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<S::Summary>(4);
            receivers.push(rx);
            let make_shard = &make_shard;
            scope.spawn(move || {
                let mut op = make_shard();
                let mut batch: Vec<S::Input> = Vec::with_capacity(BATCH.min(period));
                for (w, sub) in values.chunks(period).enumerate() {
                    // This shard's elements of sub-window `w`: global
                    // indices ≡ shard (mod shards), re-batched so each
                    // worker rides the batched ingestion path.
                    let start = w * period;
                    let first = (shard + shards - start % shards) % shards;
                    for v in sub.iter().skip(first).step_by(shards) {
                        batch.push(v.clone());
                        if batch.len() == BATCH {
                            op.ingest_batch(&batch);
                            batch.clear();
                        }
                    }
                    if !batch.is_empty() {
                        op.ingest_batch(&batch);
                        batch.clear();
                    }
                    if tx.send(op.take_summary()).is_err() {
                        return;
                    }
                }
            });
        }
        // Collect each boundary's summaries in shard order; the shared
        // pipelined core merges group b while the shards ingest toward
        // b+1. (Any group order would produce the same multiset; shard
        // order makes runs reproducible.)
        let collect = |_boundary: usize, group: &mut Vec<S::Summary>| {
            for rx in &receivers {
                group.push(rx.recv().expect("shard thread ended early"));
            }
            Ok::<(), std::convert::Infallible>(())
        };
        let Ok(result) = coordinate_pipelined(coordinator, boundaries, collect);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, ExactQuantileOp};

    #[test]
    fn pipelined_matches_sequential() {
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 1000).collect();
        let spec = WindowSpec::sliding(1000, 500);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.99]), spec, data.clone());
        let mut seq_window = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.99]), spec);
        let seq: Vec<_> = data.iter().filter_map(|&v| seq_window.push(v)).collect();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 9);
    }

    #[test]
    fn pipelined_batch_consumption_matches_sequential_per_element() {
        // The consumer feeds whole channel batches through push_batch;
        // results must equal the sequential per-element executor even
        // when the stream length is not a multiple of the channel batch
        // (forcing a short trailing batch) and the window boundary falls
        // mid-batch.
        let n = BATCH * 3 + 1234;
        let data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 9973).collect();
        let spec = WindowSpec::sliding(5000, 1250);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.999]), spec, data.clone());
        let mut seq = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.999]), spec);
        let want: Vec<_> = data.iter().filter_map(|&v| seq.push(v)).collect();
        assert_eq!(par, want);
        assert!(!par.is_empty());
    }

    #[test]
    fn sharded_batching_matches_unbatched_stride() {
        // Each worker re-batches its strided slice; results must equal a
        // plain per-element walk of the same stride.
        let data: Vec<u64> = (0..3 * BATCH as u64 + 777)
            .map(|i| (i * 31) % 1009)
            .collect();
        let spec = WindowSpec::sliding(1000, 250);
        let shards = 3;
        let out = run_sharded(|| ExactQuantileOp::new(&[0.5]), spec, &data, shards);
        for (shard, results) in out.iter().enumerate() {
            let mut w = SlidingWindow::new(ExactQuantileOp::new(&[0.5]), spec);
            let want: Vec<_> = data
                .iter()
                .skip(shard)
                .step_by(shards)
                .filter_map(|&v| w.push(v))
                .collect();
            assert_eq!(results, &want, "shard {shard}");
        }
    }

    #[test]
    fn pipelined_handles_short_streams() {
        let out = run_pipelined(CountOp, WindowSpec::tumbling(10), (0..5).map(f64::from));
        assert!(out.is_empty());
    }

    #[test]
    fn sharded_each_shard_sees_its_slice() {
        let data: Vec<u64> = (0..4000).collect();
        let spec = WindowSpec::tumbling(500);
        let out = run_sharded(|| ExactQuantileOp::new(&[1.0]), spec, &data, 4);
        assert_eq!(out.len(), 4);
        for (shard, results) in out.iter().enumerate() {
            // Each shard got 1000 values → two tumbling windows of 500.
            assert_eq!(results.len(), 2, "shard {shard}");
            // Max of shard's first window: values shard + 4k for k < 500.
            assert_eq!(results[0][0], shard as u64 + 4 * 499);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_shards() {
        let data: Vec<f64> = vec![];
        run_sharded(|| CountOp, WindowSpec::tumbling(1), &data, 0);
    }

    // ---- run_distributed over a toy mergeable operator -------------------

    /// Shard half of a distributed windowed sum: accumulates a partial
    /// sub-window `(sum, count)`.
    #[derive(Default)]
    struct SumShard {
        sum: u64,
        n: usize,
    }

    impl ShardAccumulator for SumShard {
        type Input = u64;
        type Summary = (u64, usize);
        fn ingest_batch(&mut self, values: &[u64]) {
            self.sum += values.iter().sum::<u64>();
            self.n += values.len();
        }
        fn take_summary(&mut self) -> (u64, usize) {
            let s = (self.sum, self.n);
            self.sum = 0;
            self.n = 0;
            s
        }
    }

    /// Coordinator half: a sliding window of `n_sub` sub-window sums,
    /// emitting the window total at each completed sub-window once full.
    struct SumCoordinator {
        period: usize,
        n_sub: usize,
        filled: usize,
        current: u64,
        ring: std::collections::VecDeque<u64>,
    }

    impl SumCoordinator {
        fn new(period: usize, n_sub: usize) -> Self {
            Self {
                period,
                n_sub,
                filled: 0,
                current: 0,
                ring: Default::default(),
            }
        }
    }

    impl SummaryMerge for SumCoordinator {
        type Summary = (u64, usize);
        type Output = u64;
        fn merge_summary(&mut self, &(sum, n): &(u64, usize)) -> Option<u64> {
            self.current += sum;
            self.filled += n;
            assert!(self.filled <= self.period, "summary crossed a boundary");
            if self.filled < self.period {
                return None;
            }
            self.filled = 0;
            self.ring.push_back(self.current);
            self.current = 0;
            if self.ring.len() > self.n_sub {
                self.ring.pop_front();
            }
            (self.ring.len() == self.n_sub).then(|| self.ring.iter().sum())
        }
    }

    /// Sequential reference: window sums of the undealt stream.
    fn sequential_window_sums(data: &[u64], period: usize, n_sub: usize) -> Vec<u64> {
        let window = period * n_sub;
        (0..(data.len().saturating_sub(window - 1)))
            .filter(|i| i % period == 0)
            .map(|i| data[i..i + window].iter().sum())
            .collect()
    }

    #[test]
    fn distributed_matches_sequential_window_sums() {
        let (period, n_sub) = (500, 4);
        // Lengths straddling BATCH multiples, period multiples, and a
        // trailing partial sub-window.
        for len in [0usize, 499, 2_000, 2_001, BATCH * 2 + 777, 3 * BATCH] {
            let data: Vec<u64> = (0..len as u64).map(|i| (i * 2654435761) % 10_007).collect();
            let want = sequential_window_sums(&data, period, n_sub);
            for shards in [1usize, 2, 3, 7] {
                let mut coord = SumCoordinator::new(period, n_sub);
                let got = run_distributed(SumShard::default, &mut coord, period, &data, shards);
                assert_eq!(got, want, "len {len} shards {shards}");
                // The trailing partial sub-window is merged, not dropped.
                assert_eq!(coord.filled, len % period, "len {len} shards {shards}");
            }
        }
    }

    #[test]
    fn distributed_more_shards_than_period_elements() {
        // Shards that receive no element of some sub-window must still
        // ship (empty) summaries so boundary groups complete.
        let data: Vec<u64> = (0..30u64).collect();
        let mut coord = SumCoordinator::new(10, 2);
        let got = run_distributed(SumShard::default, &mut coord, 10, &data, 16);
        assert_eq!(got, sequential_window_sums(&data, 10, 2));
    }

    #[test]
    fn distributed_stats_cover_every_boundary() {
        let (period, n_sub) = (100, 3);
        let data: Vec<u64> = (0..1050u64).collect();
        let mut coord = SumCoordinator::new(period, n_sub);
        let (got, stats) =
            run_distributed_with_stats(SumShard::default, &mut coord, period, &data, 3);
        assert_eq!(got, sequential_window_sums(&data, period, n_sub));
        // 10 full boundaries + the trailing partial sub-window.
        assert_eq!(stats.boundaries, 11);
        assert!(stats.merge_ns > 0);
        assert!(stats.collect_ns > 0);
        assert!(stats.wall_ns >= stats.merge_ns.max(stats.collect_ns));
        // Overlap is bounded by the merge time it hides.
        assert!(stats.overlap_ns() <= stats.merge_ns + stats.collect_ns);
        assert!((0.0..=1.0).contains(&stats.merge_hidden_fraction()));
    }

    #[test]
    fn coordinate_pipelined_matches_serial_merge_order() {
        // The pipelined core must merge groups in stream order and
        // summaries in the order the collector pushed them, exactly
        // like the old boundary-synchronous loop.
        let groups: Vec<Vec<(u64, usize)>> = (0..20u64)
            .map(|b| (0..4u64).map(|s| (b * 10 + s, 25usize)).collect())
            .collect();
        let mut serial = SumCoordinator::new(100, 2);
        let want: Vec<u64> = groups
            .iter()
            .flatten()
            .filter_map(|s| serial.merge_summary(s))
            .collect();
        let mut pipelined = SumCoordinator::new(100, 2);
        let (got, stats) = coordinate_pipelined(&mut pipelined, groups.len(), |b, group| {
            group.extend(groups[b].iter().copied());
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.boundaries, groups.len());
        assert_eq!(pipelined.filled, serial.filled);
        assert_eq!(pipelined.ring, serial.ring);
    }

    #[test]
    fn coordinate_pipelined_zero_boundaries() {
        let mut coord = SumCoordinator::new(10, 2);
        let (out, stats) =
            coordinate_pipelined(&mut coord, 0, |_, _| Ok::<(), std::convert::Infallible>(()))
                .unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.boundaries, 0);
        assert_eq!(stats.overlap_us_per_boundary(), 0.0);
    }

    #[test]
    fn coordinate_pipelined_propagates_collect_errors() {
        // A collector failure (e.g. a worker socket dying) must surface
        // as the error, not hang or panic, and must leave the
        // already-handed-over groups merged.
        let mut coord = SumCoordinator::new(100, 2);
        let err = coordinate_pipelined(&mut coord, 10, |b, group| {
            if b == 3 {
                return Err("worker died");
            }
            group.push((1, 100));
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err, "worker died");
        // Groups 0..3 were collected and merged before the failure.
        assert_eq!(coord.ring.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn distributed_rejects_zero_shards() {
        let data: Vec<u64> = vec![];
        let mut coord = SumCoordinator::new(10, 2);
        run_distributed(SumShard::default, &mut coord, 10, &data, 0);
    }

    #[test]
    #[should_panic(expected = "positive sub-window period")]
    fn distributed_rejects_zero_period() {
        let data: Vec<u64> = vec![1];
        let mut coord = SumCoordinator::new(10, 2);
        run_distributed(SumShard::default, &mut coord, 0, &data, 2);
    }
}
