//! Pipelined (producer/consumer) execution.
//!
//! The paper measures single-thread operator throughput; to do the same
//! without the workload generator polluting the measurement, the harness
//! runs generation on one thread and the operator on another, connected
//! by a bounded crossbeam channel. This module packages that pattern and
//! also offers a sharded executor (one operator instance per worker, as a
//! distributed deployment would run QLOVE per ingestion shard — §7 notes
//! the design extends to distributed computing).

use crate::aggregate::IncrementalAggregate;
use crate::window::{SlidingWindow, WindowSpec};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// Batch size used on the channel: amortizes per-message synchronization,
/// keeping the channel out of the measured operator cost. The consumer
/// feeds each batch straight into the executor's batched ingestion path
/// ([`SlidingWindow::push_batch`]), so the batching survives end to end
/// instead of being undone element by element at the consumer.
pub const BATCH: usize = 4096;

/// Run `op` over `values` on a dedicated consumer thread while the
/// producer thread generates input, returning all emitted window results.
///
/// The generic bounds require `Send` because values cross threads; all
/// telemetry payloads used in this workspace are `u64`/`f64`.
pub fn run_pipelined<A, I>(op: A, spec: WindowSpec, values: I) -> Vec<A::Output>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send,
    A::Output: Send,
    A::State: Send,
    I: IntoIterator<Item = A::Input> + Send,
{
    let (tx, rx) = channel::bounded::<Vec<A::Input>>(8);
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut batch = Vec::with_capacity(BATCH);
            for v in values {
                batch.push(v);
                if batch.len() == BATCH
                    && tx
                        .send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH)))
                        .is_err()
                {
                    return;
                }
            }
            if !batch.is_empty() {
                let _ = tx.send(batch);
            }
        });
        let mut window = SlidingWindow::new(op, spec);
        let mut out = Vec::new();
        for batch in rx.iter() {
            window.push_batch(&batch, &mut out);
        }
        out
    })
}

/// Shard `values` round-robin across `shards` worker threads, each
/// running an independent sliding-window instance of the operator built
/// by `make_op`; returns each shard's emitted results.
///
/// This models per-shard quantile monitoring (each ingestion pipeline
/// watches its own slice of traffic); it is *not* a distributed merge of
/// one logical window.
pub fn run_sharded<A, F>(
    make_op: F,
    spec: WindowSpec,
    values: &[A::Input],
    shards: usize,
) -> Vec<Vec<A::Output>>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send + Sync,
    A::Output: Send,
    F: Fn() -> A + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let results: Vec<Mutex<Vec<A::Output>>> = (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let results = Arc::new(results);
    thread::scope(|scope| {
        for shard in 0..shards {
            let results = Arc::clone(&results);
            let make_op = &make_op;
            scope.spawn(move || {
                let mut window = SlidingWindow::new(make_op(), spec);
                let mut local = Vec::new();
                // Re-batch the strided slice so each worker also rides
                // the batched ingestion path.
                let mut batch: Vec<A::Input> = Vec::with_capacity(BATCH);
                for v in values.iter().skip(shard).step_by(shards) {
                    batch.push(v.clone());
                    if batch.len() == BATCH {
                        window.push_batch(&batch, &mut local);
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    window.push_batch(&batch, &mut local);
                }
                *results[shard].lock() = local;
            });
        }
    });
    Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("worker threads joined; sole owner"))
        .into_iter()
        .map(Mutex::into_inner)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, ExactQuantileOp};

    #[test]
    fn pipelined_matches_sequential() {
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 1000).collect();
        let spec = WindowSpec::sliding(1000, 500);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.99]), spec, data.clone());
        let mut seq_window = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.99]), spec);
        let seq: Vec<_> = data.iter().filter_map(|&v| seq_window.push(v)).collect();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 9);
    }

    #[test]
    fn pipelined_batch_consumption_matches_sequential_per_element() {
        // The consumer feeds whole channel batches through push_batch;
        // results must equal the sequential per-element executor even
        // when the stream length is not a multiple of the channel batch
        // (forcing a short trailing batch) and the window boundary falls
        // mid-batch.
        let n = BATCH * 3 + 1234;
        let data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 9973).collect();
        let spec = WindowSpec::sliding(5000, 1250);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.999]), spec, data.clone());
        let mut seq = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.999]), spec);
        let want: Vec<_> = data.iter().filter_map(|&v| seq.push(v)).collect();
        assert_eq!(par, want);
        assert!(!par.is_empty());
    }

    #[test]
    fn sharded_batching_matches_unbatched_stride() {
        // Each worker re-batches its strided slice; results must equal a
        // plain per-element walk of the same stride.
        let data: Vec<u64> = (0..3 * BATCH as u64 + 777)
            .map(|i| (i * 31) % 1009)
            .collect();
        let spec = WindowSpec::sliding(1000, 250);
        let shards = 3;
        let out = run_sharded(|| ExactQuantileOp::new(&[0.5]), spec, &data, shards);
        for (shard, results) in out.iter().enumerate() {
            let mut w = SlidingWindow::new(ExactQuantileOp::new(&[0.5]), spec);
            let want: Vec<_> = data
                .iter()
                .skip(shard)
                .step_by(shards)
                .filter_map(|&v| w.push(v))
                .collect();
            assert_eq!(results, &want, "shard {shard}");
        }
    }

    #[test]
    fn pipelined_handles_short_streams() {
        let out = run_pipelined(CountOp, WindowSpec::tumbling(10), (0..5).map(f64::from));
        assert!(out.is_empty());
    }

    #[test]
    fn sharded_each_shard_sees_its_slice() {
        let data: Vec<u64> = (0..4000).collect();
        let spec = WindowSpec::tumbling(500);
        let out = run_sharded(|| ExactQuantileOp::new(&[1.0]), spec, &data, 4);
        assert_eq!(out.len(), 4);
        for (shard, results) in out.iter().enumerate() {
            // Each shard got 1000 values → two tumbling windows of 500.
            assert_eq!(results.len(), 2, "shard {shard}");
            // Max of shard's first window: values shard + 4k for k < 500.
            assert_eq!(results[0][0], shard as u64 + 4 * 499);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_shards() {
        let data: Vec<f64> = vec![];
        run_sharded(|| CountOp, WindowSpec::tumbling(1), &data, 0);
    }
}
