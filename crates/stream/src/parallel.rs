//! Pipelined, sharded, and distributed execution.
//!
//! The paper measures single-thread operator throughput; to do the same
//! without the workload generator polluting the measurement, the harness
//! runs generation on one thread and the operator on another, connected
//! by a bounded crossbeam channel ([`run_pipelined`]). Two multi-worker
//! executors build on that substrate, covering the two deployment shapes
//! §7's "extends to distributed computing" remark implies:
//!
//! * [`run_sharded`] — **independent windows**: one operator instance
//!   per worker, each answering its own slice of traffic (per-pipeline
//!   monitoring). Answers are per-shard; nothing is merged.
//! * [`run_distributed`] — **one logical window**: values are dealt
//!   round-robin across shard accumulators, shards surrender mergeable
//!   summaries at every sub-window boundary, and a coordinator folds
//!   them into a single logical window whose answers equal a
//!   single-instance run over the undealt stream. Its merge loop is the
//!   shared double-buffered core [`coordinate_pipelined`], which also
//!   drives the multi-process socket transport (`qlove_transport`):
//!   boundary *b* merges on a dedicated thread while shards ingest
//!   toward boundary *b+1*.
//!
//! Both executors are agnostic to how an operator stores its state:
//! QLOVE's Level-1 backend (red-black tree, or the dense direct-indexed
//! store `qlove_freqstore` enables for quantized domains) rides along
//! inside the operator the `make_op`/`make_shard` closures construct,
//! so the same executor serves either backend — only the cost of
//! [`SummaryMerge::merge_summary`] changes (per-key tree descents vs
//! array adds). Summaries themselves are backend-neutral sorted
//! `(value, frequency)` multisets, so shards and the coordinator may
//! even run different backends.

use crate::aggregate::IncrementalAggregate;
use crate::window::{SlidingWindow, WindowSpec};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Batch size used on the channel: amortizes per-message synchronization,
/// keeping the channel out of the measured operator cost. The consumer
/// feeds each batch straight into the executor's batched ingestion path
/// ([`SlidingWindow::push_batch`]), so the batching survives end to end
/// instead of being undone element by element at the consumer.
pub const BATCH: usize = 4096;

/// Run `op` over `values` on a dedicated consumer thread while the
/// producer thread generates input, returning all emitted window results.
///
/// The generic bounds require `Send` because values cross threads; all
/// telemetry payloads used in this workspace are `u64`/`f64`.
pub fn run_pipelined<A, I>(op: A, spec: WindowSpec, values: I) -> Vec<A::Output>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send,
    A::Output: Send,
    A::State: Send,
    I: IntoIterator<Item = A::Input> + Send,
{
    let (tx, rx) = channel::bounded::<Vec<A::Input>>(8);
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut batch = Vec::with_capacity(BATCH);
            for v in values {
                batch.push(v);
                if batch.len() == BATCH
                    && tx
                        .send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH)))
                        .is_err()
                {
                    return;
                }
            }
            if !batch.is_empty() {
                let _ = tx.send(batch);
            }
        });
        let mut window = SlidingWindow::new(op, spec);
        let mut out = Vec::new();
        for batch in rx.iter() {
            window.push_batch(&batch, &mut out);
        }
        out
    })
}

/// Shard `values` round-robin across `shards` worker threads, each
/// running an **independent** sliding-window instance of the operator
/// built by `make_op`; returns each shard's emitted results.
///
/// This models per-shard quantile monitoring: each ingestion pipeline
/// watches its own slice of traffic and answers for that slice only.
/// For one logical window answered collectively from every shard's
/// data — the distributed merge of sub-window summaries — use
/// [`run_distributed`].
pub fn run_sharded<A, F>(
    make_op: F,
    spec: WindowSpec,
    values: &[A::Input],
    shards: usize,
) -> Vec<Vec<A::Output>>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send + Sync,
    A::Output: Send,
    F: Fn() -> A + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let results: Vec<Mutex<Vec<A::Output>>> = (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let results = Arc::new(results);
    thread::scope(|scope| {
        for shard in 0..shards {
            let results = Arc::clone(&results);
            let make_op = &make_op;
            scope.spawn(move || {
                let mut window = SlidingWindow::new(make_op(), spec);
                let mut local = Vec::new();
                // Re-batch the strided slice so each worker also rides
                // the batched ingestion path.
                let mut batch: Vec<A::Input> = Vec::with_capacity(BATCH);
                for v in values.iter().skip(shard).step_by(shards) {
                    batch.push(v.clone());
                    if batch.len() == BATCH {
                        window.push_batch(&batch, &mut local);
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    window.push_batch(&batch, &mut local);
                }
                *results[shard].lock() = local;
            });
        }
    });
    Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("worker threads joined; sole owner"))
        .into_iter()
        .map(Mutex::into_inner)
        .collect()
}

/// The shard half of a distributed one-logical-window execution: a
/// boundary-free accumulator over one shard's slice of the stream that
/// periodically surrenders its in-flight state as a mergeable summary.
///
/// Implementations must be order-insensitive within a sub-window (a
/// multiset-like state), because the executor deals elements round-robin
/// and shards ingest their slices concurrently. Every summary covers
/// exactly the elements ingested since the previous `take_summary`.
pub trait ShardAccumulator {
    /// Element type ingested.
    type Input;
    /// The mergeable state snapshot shipped to the coordinator.
    type Summary: Send;
    /// Fold a batch of this shard's elements into the in-flight state.
    /// The executor guarantees batches never straddle a logical
    /// sub-window boundary.
    fn ingest_batch(&mut self, values: &[Self::Input]);
    /// Snapshot the in-flight state as a summary and reset it.
    fn take_summary(&mut self) -> Self::Summary;
}

/// The coordinator half of a distributed one-logical-window execution:
/// merges shard summaries into one logical window and emits an answer
/// whenever a merge completes an evaluation.
pub trait SummaryMerge {
    /// Summary type accepted (the shards' [`ShardAccumulator::Summary`]).
    type Summary;
    /// Window evaluation output.
    type Output;
    /// Merge one shard's summary into the logical window. Returns
    /// `Some` when this merge closed a sub-window that produced an
    /// evaluation (at most the final summary of each boundary group
    /// does).
    fn merge_summary(&mut self, summary: &Self::Summary) -> Option<Self::Output>;
}

/// Timing breakdown of a pipelined coordinator run
/// ([`coordinate_pipelined`]): how much merge work was hidden behind
/// summary collection (and, through collection's blocking reads, behind
/// shard ingest).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Boundary groups that went through the merger.
    pub boundaries: usize,
    /// Total time the merger thread spent merging summaries.
    pub merge_ns: u128,
    /// Total time the collector spent assembling boundary groups —
    /// including blocking on shard channels or sockets, which is
    /// exactly the ingest time merging should hide behind.
    pub collect_ns: u128,
    /// Wall-clock time of the whole coordinate loop.
    pub wall_ns: u128,
}

impl PipelineStats {
    /// Merge time that ran concurrently with collection: the busy time
    /// the two pipeline stages spent beyond the wall clock. Zero when
    /// the host serializes them (e.g. a 1-CPU runner) — overlap needs
    /// real parallelism to exist.
    pub fn overlap_ns(&self) -> u128 {
        (self.merge_ns + self.collect_ns).saturating_sub(self.wall_ns)
    }

    /// [`PipelineStats::overlap_ns`] per boundary, in microseconds.
    pub fn overlap_us_per_boundary(&self) -> f64 {
        if self.boundaries == 0 {
            return 0.0;
        }
        self.overlap_ns() as f64 / self.boundaries as f64 / 1e3
    }

    /// Fraction of total merge time hidden behind collection, in
    /// `[0, 1]`. `0.0` when no merging happened.
    pub fn merge_hidden_fraction(&self) -> f64 {
        if self.merge_ns == 0 {
            return 0.0;
        }
        (self.overlap_ns() as f64 / self.merge_ns as f64).min(1.0)
    }
}

/// Drive a [`SummaryMerge`] coordinator over `boundaries` boundary
/// groups with a **double-buffered merge pipeline**: the caller's
/// `collect` closure assembles boundary group *b+1* while a dedicated
/// merger thread folds group *b* into the coordinator.
///
/// This is the shared coordinator core of every distributed backend:
/// the in-process thread executor ([`run_distributed`]) collects from
/// per-shard channels, and the multi-process socket transport
/// (`qlove_transport`) collects by reading summary frames — both hand
/// complete groups to the same merger loop here. Two group buffers
/// rotate through a recycle channel, so steady-state collection
/// allocates nothing and the collector can run at most one full group
/// ahead of the merger (bounded in-flight memory, real backpressure).
///
/// `collect` is called once per boundary, in stream order, with a
/// cleared buffer to fill with that boundary's summaries (in shard
/// order — any order yields the same multiset, shard order keeps runs
/// reproducible). Returning `Err` stops the pipeline: the merger
/// finishes the groups already handed over, then the error is
/// propagated with the answers produced so far discarded.
///
/// Returns the merged answers in stream order plus a [`PipelineStats`]
/// recording how much merge time the pipelining hid.
pub fn coordinate_pipelined<C, E, F>(
    coordinator: &mut C,
    boundaries: usize,
    mut collect: F,
) -> Result<(Vec<C::Output>, PipelineStats), E>
where
    C: SummaryMerge + Send,
    C::Summary: Send,
    C::Output: Send,
    F: FnMut(usize, &mut Vec<C::Summary>) -> Result<(), E>,
{
    let wall_start = Instant::now();
    let (answers, merge_ns, collect_ns) = thread::scope(|scope| {
        // Group channel capacity 1 + two recycled buffers = double
        // buffering: one group being merged, one in flight or being
        // collected.
        let (group_tx, group_rx) = channel::bounded::<Vec<C::Summary>>(1);
        let (recycle_tx, recycle_rx) = channel::bounded::<Vec<C::Summary>>(2);
        for _ in 0..2 {
            assert!(
                recycle_tx.send(Vec::new()).is_ok(),
                "seeding empty group buffers"
            );
        }
        // Answer latency (merging one boundary group) feeds the global
        // `qlove_answer_merge_us` histogram — observational only, and a
        // no-op when telemetry is disabled.
        let merge_hist = qlove_telemetry::global_metrics().histogram("qlove_answer_merge_us");
        let merger = scope.spawn(move || {
            let mut answers = Vec::new();
            let mut merge_ns = 0u128;
            for group in group_rx.iter() {
                let start = Instant::now();
                for summary in &group {
                    if let Some(answer) = coordinator.merge_summary(summary) {
                        answers.push(answer);
                    }
                }
                let took = start.elapsed();
                merge_hist.observe(took.as_micros() as u64);
                merge_ns += took.as_nanos();
                // The collector may already be gone (error path); the
                // buffer is simply dropped then.
                let _ = recycle_tx.send(group);
            }
            (answers, merge_ns)
        });
        let mut collect_ns = 0u128;
        let mut failed: Option<E> = None;
        for boundary in 0..boundaries {
            // A closed channel here means the merger thread died; fall
            // through to the join below, which re-raises the merger's
            // actual panic payload instead of a channel artifact.
            let Ok(mut group) = recycle_rx.recv() else {
                break;
            };
            group.clear();
            let start = Instant::now();
            let result = collect(boundary, &mut group);
            collect_ns += start.elapsed().as_nanos();
            match result {
                Ok(()) => {
                    if group_tx.send(group).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        drop(group_tx);
        let (answers, merge_ns) = match merger.join() {
            Ok(out) => out,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        match failed {
            Some(e) => Err(e),
            None => Ok((answers, merge_ns, collect_ns)),
        }
    })?;
    Ok((
        answers,
        PipelineStats {
            boundaries,
            merge_ns,
            collect_ns,
            wall_ns: wall_start.elapsed().as_nanos(),
        },
    ))
}

/// Answer **one logical window** from `shards` ingestion shards.
///
/// Values are dealt round-robin (element `i` to shard `i % shards`, the
/// arrival-order interleaving a distributed ingestion tier produces);
/// each shard accumulates its slice through the batched path and, at
/// every logical sub-window boundary (each `period` elements of the
/// *logical* stream), ships a summary of its partial sub-window to the
/// coordinator. The coordinator merges each boundary's summaries — in
/// stream order across boundaries — and returns the emitted answers.
/// Merging is pipelined through [`coordinate_pipelined`]: boundary
/// *b*'s group merges on a dedicated thread while the shards ingest
/// toward (and the collector assembles) boundary *b+1*.
///
/// Because shard state is a multiset union, the merged sub-window is
/// element-for-element the one a single instance would have built from
/// the undealt stream, so the answers (and the coordinator's trailing
/// in-flight state) match a sequential run exactly. A trailing partial
/// sub-window is shipped and merged too, leaving it pending in the
/// coordinator rather than dropped.
///
/// # Panics
/// Panics when `shards == 0` or `period == 0`.
pub fn run_distributed<S, C, F>(
    make_shard: F,
    coordinator: &mut C,
    period: usize,
    values: &[S::Input],
    shards: usize,
) -> Vec<C::Output>
where
    S: ShardAccumulator,
    S::Input: Clone + Sync,
    S::Summary: Send,
    C: SummaryMerge<Summary = S::Summary> + Send,
    C::Output: Send,
    F: Fn() -> S + Sync,
{
    run_distributed_with_stats(make_shard, coordinator, period, values, shards).0
}

/// [`run_distributed`], additionally reporting the coordinator's
/// [`PipelineStats`] (how much merge time overlapped shard ingest).
pub fn run_distributed_with_stats<S, C, F>(
    make_shard: F,
    coordinator: &mut C,
    period: usize,
    values: &[S::Input],
    shards: usize,
) -> (Vec<C::Output>, PipelineStats)
where
    S: ShardAccumulator,
    S::Input: Clone + Sync,
    S::Summary: Send,
    C: SummaryMerge<Summary = S::Summary> + Send,
    C::Output: Send,
    F: Fn() -> S + Sync,
{
    assert!(shards > 0, "need at least one shard");
    assert!(period > 0, "need a positive sub-window period");
    // One bounded channel per shard: each shard sends its summaries in
    // boundary order, so the k-th message on shard i's channel *is*
    // boundary k — no tagging or reorder buffering needed — and the
    // per-channel capacity is real backpressure (a fast shard can run
    // at most `capacity` boundaries ahead of the coordinator, keeping
    // in-flight summary memory bounded no matter how skewed the shard
    // scheduling gets).
    let boundaries = values.len().div_ceil(period);
    thread::scope(|scope| {
        let mut receivers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<S::Summary>(4);
            receivers.push(rx);
            let make_shard = &make_shard;
            scope.spawn(move || {
                let mut op = make_shard();
                let mut batch: Vec<S::Input> = Vec::with_capacity(BATCH.min(period));
                for (w, sub) in values.chunks(period).enumerate() {
                    // This shard's elements of sub-window `w`: global
                    // indices ≡ shard (mod shards), re-batched so each
                    // worker rides the batched ingestion path.
                    let start = w * period;
                    let first = (shard + shards - start % shards) % shards;
                    for v in sub.iter().skip(first).step_by(shards) {
                        batch.push(v.clone());
                        if batch.len() == BATCH {
                            op.ingest_batch(&batch);
                            batch.clear();
                        }
                    }
                    if !batch.is_empty() {
                        op.ingest_batch(&batch);
                        batch.clear();
                    }
                    if tx.send(op.take_summary()).is_err() {
                        return;
                    }
                }
            });
        }
        // Collect each boundary's summaries in shard order; the shared
        // pipelined core merges group b while the shards ingest toward
        // b+1. (Any group order would produce the same multiset; shard
        // order makes runs reproducible.)
        let collect = |_boundary: usize, group: &mut Vec<S::Summary>| {
            for rx in &receivers {
                group.push(rx.recv().expect("shard thread ended early"));
            }
            Ok::<(), std::convert::Infallible>(())
        };
        let Ok(result) = coordinate_pipelined(coordinator, boundaries, collect);
        result
    })
}

// ---------------------------------------------------------------------------
// Live resharding: elastic shard split/merge mid-window.
//
// The dealt-stream executors above freeze the shard set at window start.
// The types here describe a shard set that *changes while the window
// runs*: shards own half-open value ranges (a `RangeTable`), a
// `ReshardPlan` splits one range in two or merges two adjacent ranges,
// and a `ReshardSchedule` pins each plan to the sub-window boundary
// where it takes effect. Because sub-window summaries are commutative
// multiset unions, *where* an element is accumulated never affects the
// merged answer — only that each boundary group covers exactly its
// sub-window — so the shard set can change between two sub-windows with
// answers still bit-identical to a sequential run. `run_resharded` is
// the sequential in-process reference implementation differential tests
// compare against; the socket runtime in `qlove_transport` executes the
// same schedule across worker processes.
// ---------------------------------------------------------------------------

/// One elastic reconfiguration of the shard set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardPlan {
    /// Split `slot`'s value range at `pivot`: the successor covering
    /// `[lo, pivot)` replaces the parent, a second successor covers
    /// `[pivot, hi)`.
    Split {
        /// The live slot to split.
        slot: usize,
        /// New range boundary; must lie strictly inside the slot's range.
        pivot: u64,
    },
    /// Merge `left`'s range with the next range above it into one
    /// successor covering both.
    Merge {
        /// The lower of the two adjacent slots to merge.
        left: usize,
    },
}

/// A [`ReshardPlan`] pinned to the sub-window boundary where it takes
/// effect: sub-windows `< boundary` run on the old shard set,
/// sub-windows `>= boundary` on the new one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardSpec {
    /// First sub-window index dealt under the new shard set (≥ 1).
    pub boundary: u64,
    /// The reconfiguration to apply at that boundary.
    pub plan: ReshardPlan,
}

/// A successor shard created by a reshard: its stable slot id and the
/// lower bound of the value range it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewShard {
    /// The successor's slot id (also its wire session id).
    pub slot: usize,
    /// Lower bound (inclusive) of the successor's value range.
    pub lo: u64,
}

/// What one applied [`ReshardPlan`] did to the shard set.
///
/// Slot ids are never reused: a split retires one slot and creates two,
/// a merge retires two and creates one. By convention the *first*
/// created slot inherits the first retired parent's host (for a split,
/// the low half stays where the parent ran; for a merge, the successor
/// runs where the left parent ran) — the socket runtime uses this to
/// open the successor as a new session on the surviving connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardDelta {
    /// The plan that produced this delta.
    pub plan: ReshardPlan,
    /// Retired slots, in range order.
    pub retired: Vec<usize>,
    /// Created slots, in range order.
    pub created: Vec<NewShard>,
}

/// The dealer's routing table: which shard slot owns which value range.
///
/// Ranges are half-open `[lo, next lo)`, ascending, covering all of
/// `u64` (the first bound is 0, the last range is unbounded above).
/// Routing never affects merged answers — summaries are commutative —
/// so the bounds only steer load; correctness needs nothing from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeTable {
    /// `(lower bound, slot)` per live shard, strictly ascending by
    /// bound; entry `k` owns `[bound_k, bound_{k+1})`.
    bounds: Vec<(u64, usize)>,
    /// Next slot id to assign (slot ids are never reused).
    next_slot: usize,
}

impl RangeTable {
    /// `shards` slots (ids `0..shards`) evenly partitioning `[0, span)`,
    /// with the last slot unbounded above. `span` only steers balance
    /// for the expected value domain (e.g. the quantization range);
    /// values `>= span` simply land in the top slot.
    ///
    /// # Panics
    /// Panics when `shards == 0` or `span < shards` (the bounds could
    /// not be strictly ascending).
    pub fn even(shards: usize, span: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(span >= shards as u64, "span too small for shard count");
        let step = span / shards as u64;
        Self {
            bounds: (0..shards).map(|i| (i as u64 * step, i)).collect(),
            next_slot: shards,
        }
    }

    /// The `(lower bound, slot)` pairs, ascending by bound.
    pub fn bounds(&self) -> &[(u64, usize)] {
        &self.bounds
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// `false` always — a table never goes empty (merges stop at one).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The slot owning `value`.
    pub fn route(&self, value: u64) -> usize {
        let idx = self.bounds.partition_point(|&(lo, _)| lo <= value) - 1;
        self.bounds[idx].1
    }

    /// `slot`'s range as `(lo, hi)`, `hi = None` for the top slot.
    pub fn slot_range(&self, slot: usize) -> Option<(u64, Option<u64>)> {
        let idx = self.bounds.iter().position(|&(_, s)| s == slot)?;
        Some((
            self.bounds[idx].0,
            self.bounds.get(idx + 1).map(|&(lo, _)| lo),
        ))
    }

    /// Apply one plan, mutating the table and reporting what changed.
    /// Fails (leaving the table untouched) when the plan names a dead
    /// slot, a split pivot outside the parent's range, or a merge of
    /// the top slot.
    pub fn apply(&mut self, plan: ReshardPlan) -> Result<ReshardDelta, String> {
        match plan {
            ReshardPlan::Split { slot, pivot } => {
                let idx = self
                    .bounds
                    .iter()
                    .position(|&(_, s)| s == slot)
                    .ok_or_else(|| format!("split: slot {slot} is not live"))?;
                let lo = self.bounds[idx].0;
                let hi = self.bounds.get(idx + 1).map(|&(b, _)| b);
                if pivot <= lo || hi.is_some_and(|h| pivot >= h) {
                    return Err(format!(
                        "split: pivot {pivot} outside slot {slot}'s range [{lo}, {})",
                        hi.map_or("∞".into(), |h| h.to_string())
                    ));
                }
                let (a, b) = (self.next_slot, self.next_slot + 1);
                self.next_slot += 2;
                self.bounds[idx] = (lo, a);
                self.bounds.insert(idx + 1, (pivot, b));
                Ok(ReshardDelta {
                    plan,
                    retired: vec![slot],
                    created: vec![NewShard { slot: a, lo }, NewShard { slot: b, lo: pivot }],
                })
            }
            ReshardPlan::Merge { left } => {
                let idx = self
                    .bounds
                    .iter()
                    .position(|&(_, s)| s == left)
                    .ok_or_else(|| format!("merge: slot {left} is not live"))?;
                if idx + 1 >= self.bounds.len() {
                    return Err(format!("merge: slot {left} has no slot above it"));
                }
                let right = self.bounds[idx + 1].1;
                let lo = self.bounds[idx].0;
                let m = self.next_slot;
                self.next_slot += 1;
                self.bounds.remove(idx + 1);
                self.bounds[idx] = (lo, m);
                Ok(ReshardDelta {
                    plan,
                    retired: vec![left, right],
                    created: vec![NewShard { slot: m, lo }],
                })
            }
        }
    }
}

/// The fully-validated, static timeline of a resharded run: one epoch
/// per applied plan (epoch 0 is the initial shard set), each with the
/// routing table in force and the delta that created it.
///
/// Everything downstream — the in-process reference, the socket
/// dealer, and the epoch-aware collector — derives its view from this
/// one schedule, so dealer and collector agree on group membership for
/// every boundary without runtime coordination.
#[derive(Debug, Clone)]
pub struct ReshardSchedule {
    /// `(first boundary of the epoch, table in force, delta)`; entry 0
    /// is `(0, initial table, None)`.
    epochs: Vec<(u64, RangeTable, Option<ReshardDelta>)>,
}

impl ReshardSchedule {
    /// Validate `specs` (strictly ascending boundaries, all ≥ 1, each
    /// plan legal against the table it amends) and build the timeline.
    pub fn build(shards: usize, span: u64, specs: &[ReshardSpec]) -> Result<Self, String> {
        if shards == 0 {
            return Err("need at least one shard".into());
        }
        if span < shards as u64 {
            return Err(format!("span {span} too small for {shards} shards"));
        }
        let mut epochs = vec![(0u64, RangeTable::even(shards, span), None)];
        for spec in specs {
            let (last_boundary, table, _) = epochs.last().expect("epoch 0 always exists");
            if spec.boundary == 0 {
                return Err("reshard boundary 0 would precede all data; use ≥ 1".into());
            }
            if epochs.len() > 1 && spec.boundary <= *last_boundary {
                return Err(format!(
                    "reshard boundaries must be strictly ascending ({} after {})",
                    spec.boundary, last_boundary
                ));
            }
            let mut table = table.clone();
            let delta = table.apply(spec.plan)?;
            epochs.push((spec.boundary, table, Some(delta)));
        }
        Ok(Self { epochs })
    }

    /// Number of epochs (1 + applied plans).
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// `false` always — epoch 0 always exists.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The epoch in force for sub-window `boundary`.
    pub fn epoch_at(&self, boundary: u64) -> u64 {
        (self
            .epochs
            .partition_point(|&(from, _, _)| from <= boundary)
            - 1) as u64
    }

    /// First sub-window of `epoch`.
    pub fn from_boundary(&self, epoch: u64) -> u64 {
        self.epochs[epoch as usize].0
    }

    /// Routing table in force during `epoch`.
    pub fn table(&self, epoch: u64) -> &RangeTable {
        &self.epochs[epoch as usize].1
    }

    /// The delta that opened `epoch` (`None` for epoch 0).
    pub fn delta(&self, epoch: u64) -> Option<&ReshardDelta> {
        self.epochs[epoch as usize].2.as_ref()
    }

    /// Total slots ever created (initial + successors); slot ids are
    /// dense in `0..slot_count()`.
    pub fn slot_count(&self) -> usize {
        self.epochs
            .last()
            .expect("epoch 0 always exists")
            .1
            .next_slot
    }
}

/// [`run_distributed`] with a shard set that changes mid-window: the
/// sequential **reference implementation** of live resharding, which
/// the socket runtime's differential tests compare against.
///
/// Each sub-window is routed under the schedule's table for that
/// boundary; at each epoch boundary the retired shards are dropped and
/// the successors start empty — exactly what the distributed swap
/// restores from boundary checkpoints, which are empty *at* a boundary
/// (sub-window state was just shipped). Every live shard ships a
/// summary every boundary (empty ones included), so each boundary
/// group covers exactly its sub-window and the merged answers — values,
/// provenance, bounds, burst flags, trailing pending state — are
/// bit-identical to a sequential single-instance run.
pub fn run_resharded<S, C, F>(
    make_shard: F,
    coordinator: &mut C,
    period: usize,
    values: &[u64],
    shards: usize,
    span: u64,
    specs: &[ReshardSpec],
) -> Result<Vec<C::Output>, String>
where
    S: ShardAccumulator<Input = u64>,
    C: SummaryMerge<Summary = S::Summary>,
    F: Fn() -> S,
{
    assert!(period > 0, "need a positive sub-window period");
    let schedule = ReshardSchedule::build(shards, span, specs)?;
    let mut slots: Vec<Option<S>> = Vec::new();
    slots.resize_with(schedule.slot_count(), || None);
    let mut bufs: Vec<Vec<u64>> = vec![Vec::new(); schedule.slot_count()];
    for &(_, slot) in schedule.table(0).bounds() {
        slots[slot] = Some(make_shard());
    }
    let mut epoch = 0u64;
    let mut answers = Vec::new();
    for (w, sub) in values.chunks(period).enumerate() {
        let due = schedule.epoch_at(w as u64);
        while epoch < due {
            epoch += 1;
            let delta = schedule.delta(epoch).expect("non-zero epochs have deltas");
            for &retired in &delta.retired {
                slots[retired] = None;
            }
            for created in &delta.created {
                slots[created.slot] = Some(make_shard());
            }
        }
        let table = schedule.table(epoch);
        for &v in sub {
            bufs[table.route(v)].push(v);
        }
        for &(_, slot) in table.bounds() {
            let shard = slots[slot].as_mut().expect("live slot has a shard");
            let buf = &mut bufs[slot];
            for chunk in buf.chunks(BATCH) {
                shard.ingest_batch(chunk);
            }
            buf.clear();
        }
        for &(_, slot) in table.bounds() {
            let shard = slots[slot].as_mut().expect("live slot has a shard");
            if let Some(answer) = coordinator.merge_summary(&shard.take_summary()) {
                answers.push(answer);
            }
        }
    }
    Ok(answers)
}

/// Derive a reshard schedule from observed load: the **load-triggered
/// policy** behind `qlove_cli --reshard-auto`.
///
/// Walks the stream one sub-window at a time, simulating routing under
/// the evolving table, and emits at most one plan per boundary: a slot
/// whose sub-window element count exceeds `split_above` is split at
/// the median of the values it routed (taking effect at the *next*
/// boundary — decisions are made at boundary granularity, exactly when
/// a live coordinator would make them); when no split triggers, the
/// adjacent pair with the smallest combined count merges if it stays
/// under `split_above / 4` (cold ranges collapse). Deterministic in
/// the input; capped at `max_plans` plans.
pub fn plan_reshards(
    values: &[u64],
    period: usize,
    shards: usize,
    span: u64,
    split_above: usize,
    max_plans: usize,
) -> Result<Vec<ReshardSpec>, String> {
    if period == 0 {
        return Err("need a positive sub-window period".into());
    }
    if shards == 0 {
        return Err("need at least one shard".into());
    }
    if span < shards as u64 {
        return Err(format!("span {span} too small for {shards} shards"));
    }
    if split_above == 0 {
        return Err("--reshard-auto threshold must be positive".into());
    }
    let mut table = RangeTable::even(shards, span);
    let mut routed: Vec<Vec<u64>> = vec![Vec::new(); table.next_slot];
    let mut specs = Vec::new();
    for (w, sub) in values.chunks(period).enumerate() {
        if specs.len() == max_plans {
            break;
        }
        routed.resize_with(table.next_slot, Vec::new);
        for buf in &mut routed {
            buf.clear();
        }
        for &v in sub {
            routed[table.route(v)].push(v);
        }
        let plan = {
            let hottest = table
                .bounds()
                .iter()
                .map(|&(_, slot)| slot)
                .max_by_key(|&slot| routed[slot].len())
                .expect("table is never empty");
            if routed[hottest].len() > split_above {
                // Split the hot slot at the median of what it routed;
                // skipped when every element equals the lower bound
                // (no pivot could peel load off).
                let (lo, _) = table.slot_range(hottest).expect("hottest slot is live");
                let mut sorted = routed[hottest].clone();
                sorted.sort_unstable();
                let median = sorted[sorted.len() / 2];
                let pivot = if median > lo {
                    Some(median)
                } else {
                    sorted.iter().copied().find(|&v| v > lo)
                };
                pivot.map(|pivot| ReshardPlan::Split {
                    slot: hottest,
                    pivot,
                })
            } else if table.len() > 1 {
                // Coldest adjacent pair, merged only while clearly cold.
                let bounds = table.bounds();
                (0..bounds.len() - 1)
                    .min_by_key(|&i| routed[bounds[i].1].len() + routed[bounds[i + 1].1].len())
                    .filter(|&i| {
                        routed[bounds[i].1].len() + routed[bounds[i + 1].1].len() < split_above / 4
                    })
                    .map(|i| ReshardPlan::Merge { left: bounds[i].1 })
            } else {
                None
            }
        };
        if let Some(plan) = plan {
            table.apply(plan).map_err(|e| format!("auto plan: {e}"))?;
            specs.push(ReshardSpec {
                boundary: w as u64 + 1,
                plan,
            });
        }
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, ExactQuantileOp};

    #[test]
    fn pipelined_matches_sequential() {
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 1000).collect();
        let spec = WindowSpec::sliding(1000, 500);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.99]), spec, data.clone());
        let mut seq_window = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.99]), spec);
        let seq: Vec<_> = data.iter().filter_map(|&v| seq_window.push(v)).collect();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 9);
    }

    #[test]
    fn pipelined_batch_consumption_matches_sequential_per_element() {
        // The consumer feeds whole channel batches through push_batch;
        // results must equal the sequential per-element executor even
        // when the stream length is not a multiple of the channel batch
        // (forcing a short trailing batch) and the window boundary falls
        // mid-batch.
        let n = BATCH * 3 + 1234;
        let data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 9973).collect();
        let spec = WindowSpec::sliding(5000, 1250);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.999]), spec, data.clone());
        let mut seq = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.999]), spec);
        let want: Vec<_> = data.iter().filter_map(|&v| seq.push(v)).collect();
        assert_eq!(par, want);
        assert!(!par.is_empty());
    }

    #[test]
    fn sharded_batching_matches_unbatched_stride() {
        // Each worker re-batches its strided slice; results must equal a
        // plain per-element walk of the same stride.
        let data: Vec<u64> = (0..3 * BATCH as u64 + 777)
            .map(|i| (i * 31) % 1009)
            .collect();
        let spec = WindowSpec::sliding(1000, 250);
        let shards = 3;
        let out = run_sharded(|| ExactQuantileOp::new(&[0.5]), spec, &data, shards);
        for (shard, results) in out.iter().enumerate() {
            let mut w = SlidingWindow::new(ExactQuantileOp::new(&[0.5]), spec);
            let want: Vec<_> = data
                .iter()
                .skip(shard)
                .step_by(shards)
                .filter_map(|&v| w.push(v))
                .collect();
            assert_eq!(results, &want, "shard {shard}");
        }
    }

    #[test]
    fn pipelined_handles_short_streams() {
        let out = run_pipelined(CountOp, WindowSpec::tumbling(10), (0..5).map(f64::from));
        assert!(out.is_empty());
    }

    #[test]
    fn sharded_each_shard_sees_its_slice() {
        let data: Vec<u64> = (0..4000).collect();
        let spec = WindowSpec::tumbling(500);
        let out = run_sharded(|| ExactQuantileOp::new(&[1.0]), spec, &data, 4);
        assert_eq!(out.len(), 4);
        for (shard, results) in out.iter().enumerate() {
            // Each shard got 1000 values → two tumbling windows of 500.
            assert_eq!(results.len(), 2, "shard {shard}");
            // Max of shard's first window: values shard + 4k for k < 500.
            assert_eq!(results[0][0], shard as u64 + 4 * 499);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_shards() {
        let data: Vec<f64> = vec![];
        run_sharded(|| CountOp, WindowSpec::tumbling(1), &data, 0);
    }

    // ---- run_distributed over a toy mergeable operator -------------------

    /// Shard half of a distributed windowed sum: accumulates a partial
    /// sub-window `(sum, count)`.
    #[derive(Default)]
    struct SumShard {
        sum: u64,
        n: usize,
    }

    impl ShardAccumulator for SumShard {
        type Input = u64;
        type Summary = (u64, usize);
        fn ingest_batch(&mut self, values: &[u64]) {
            self.sum += values.iter().sum::<u64>();
            self.n += values.len();
        }
        fn take_summary(&mut self) -> (u64, usize) {
            let s = (self.sum, self.n);
            self.sum = 0;
            self.n = 0;
            s
        }
    }

    /// Coordinator half: a sliding window of `n_sub` sub-window sums,
    /// emitting the window total at each completed sub-window once full.
    struct SumCoordinator {
        period: usize,
        n_sub: usize,
        filled: usize,
        current: u64,
        ring: std::collections::VecDeque<u64>,
    }

    impl SumCoordinator {
        fn new(period: usize, n_sub: usize) -> Self {
            Self {
                period,
                n_sub,
                filled: 0,
                current: 0,
                ring: Default::default(),
            }
        }
    }

    impl SummaryMerge for SumCoordinator {
        type Summary = (u64, usize);
        type Output = u64;
        fn merge_summary(&mut self, &(sum, n): &(u64, usize)) -> Option<u64> {
            self.current += sum;
            self.filled += n;
            assert!(self.filled <= self.period, "summary crossed a boundary");
            if self.filled < self.period {
                return None;
            }
            self.filled = 0;
            self.ring.push_back(self.current);
            self.current = 0;
            if self.ring.len() > self.n_sub {
                self.ring.pop_front();
            }
            (self.ring.len() == self.n_sub).then(|| self.ring.iter().sum())
        }
    }

    /// Sequential reference: window sums of the undealt stream.
    fn sequential_window_sums(data: &[u64], period: usize, n_sub: usize) -> Vec<u64> {
        let window = period * n_sub;
        (0..(data.len().saturating_sub(window - 1)))
            .filter(|i| i % period == 0)
            .map(|i| data[i..i + window].iter().sum())
            .collect()
    }

    #[test]
    fn distributed_matches_sequential_window_sums() {
        let (period, n_sub) = (500, 4);
        // Lengths straddling BATCH multiples, period multiples, and a
        // trailing partial sub-window.
        for len in [0usize, 499, 2_000, 2_001, BATCH * 2 + 777, 3 * BATCH] {
            let data: Vec<u64> = (0..len as u64).map(|i| (i * 2654435761) % 10_007).collect();
            let want = sequential_window_sums(&data, period, n_sub);
            for shards in [1usize, 2, 3, 7] {
                let mut coord = SumCoordinator::new(period, n_sub);
                let got = run_distributed(SumShard::default, &mut coord, period, &data, shards);
                assert_eq!(got, want, "len {len} shards {shards}");
                // The trailing partial sub-window is merged, not dropped.
                assert_eq!(coord.filled, len % period, "len {len} shards {shards}");
            }
        }
    }

    #[test]
    fn distributed_more_shards_than_period_elements() {
        // Shards that receive no element of some sub-window must still
        // ship (empty) summaries so boundary groups complete.
        let data: Vec<u64> = (0..30u64).collect();
        let mut coord = SumCoordinator::new(10, 2);
        let got = run_distributed(SumShard::default, &mut coord, 10, &data, 16);
        assert_eq!(got, sequential_window_sums(&data, 10, 2));
    }

    #[test]
    fn range_table_routes_every_value_to_exactly_one_live_slot() {
        let table = RangeTable::even(4, 1_000);
        assert_eq!(table.bounds(), &[(0, 0), (250, 1), (500, 2), (750, 3)]);
        assert_eq!(table.route(0), 0);
        assert_eq!(table.route(249), 0);
        assert_eq!(table.route(250), 1);
        assert_eq!(table.route(999), 3);
        // Values beyond the span land in the (unbounded) top slot.
        assert_eq!(table.route(u64::MAX), 3);
        assert_eq!(table.slot_range(1), Some((250, Some(500))));
        assert_eq!(table.slot_range(3), Some((750, None)));
        assert_eq!(table.slot_range(9), None);
    }

    #[test]
    fn range_table_split_and_merge_never_reuse_slots() {
        let mut table = RangeTable::even(2, 100);
        let delta = table
            .apply(ReshardPlan::Split { slot: 0, pivot: 20 })
            .unwrap();
        assert_eq!(delta.retired, vec![0]);
        assert_eq!(
            delta.created,
            vec![NewShard { slot: 2, lo: 0 }, NewShard { slot: 3, lo: 20 }]
        );
        assert_eq!(table.bounds(), &[(0, 2), (20, 3), (50, 1)]);
        let delta = table.apply(ReshardPlan::Merge { left: 3 }).unwrap();
        assert_eq!(delta.retired, vec![3, 1]);
        assert_eq!(delta.created, vec![NewShard { slot: 4, lo: 20 }]);
        assert_eq!(table.bounds(), &[(0, 2), (20, 4)]);
        // Invalid plans fail and leave the table untouched.
        let before = table.clone();
        assert!(table
            .apply(ReshardPlan::Split { slot: 0, pivot: 5 })
            .is_err()); // dead slot
        assert!(table
            .apply(ReshardPlan::Split { slot: 2, pivot: 0 })
            .is_err()); // pivot ≤ lo
        assert!(table
            .apply(ReshardPlan::Split { slot: 2, pivot: 20 })
            .is_err()); // pivot ≥ hi
        assert!(table.apply(ReshardPlan::Merge { left: 4 }).is_err()); // top slot
        assert!(table.apply(ReshardPlan::Merge { left: 1 }).is_err()); // dead slot
        assert_eq!(table, before);
    }

    #[test]
    fn reshard_schedule_pins_epochs_to_boundaries() {
        let specs = [
            ReshardSpec {
                boundary: 2,
                plan: ReshardPlan::Split {
                    slot: 0,
                    pivot: 100,
                },
            },
            ReshardSpec {
                boundary: 5,
                plan: ReshardPlan::Merge { left: 3 },
            },
        ];
        let schedule = ReshardSchedule::build(2, 1_000, &specs).unwrap();
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule.epoch_at(0), 0);
        assert_eq!(schedule.epoch_at(1), 0);
        assert_eq!(schedule.epoch_at(2), 1);
        assert_eq!(schedule.epoch_at(4), 1);
        assert_eq!(schedule.epoch_at(5), 2);
        assert_eq!(schedule.epoch_at(999), 2);
        assert_eq!(schedule.from_boundary(1), 2);
        assert_eq!(schedule.slot_count(), 5);
        assert_eq!(schedule.table(0).len(), 2);
        assert_eq!(schedule.table(1).len(), 3);
        assert_eq!(schedule.table(2).len(), 2);
        // Rejections: boundary 0, non-ascending boundaries, bad plans.
        let at = |boundary, plan| ReshardSpec { boundary, plan };
        let split = ReshardPlan::Split {
            slot: 0,
            pivot: 100,
        };
        assert!(ReshardSchedule::build(2, 1_000, &[at(0, split)]).is_err());
        assert!(ReshardSchedule::build(
            2,
            1_000,
            &[at(3, split), at(3, ReshardPlan::Merge { left: 2 })]
        )
        .is_err());
        assert!(
            ReshardSchedule::build(2, 1_000, &[at(1, ReshardPlan::Merge { left: 1 })]).is_err()
        );
        assert!(ReshardSchedule::build(0, 1_000, &[]).is_err());
    }

    #[test]
    fn resharded_matches_sequential_at_every_boundary() {
        // The in-process reference: split and merge applied at every
        // sub-window boundary must leave windowed answers (and the
        // coordinator's trailing partial state) identical to the
        // sequential sums — including a trailing partial sub-window and
        // a non-period-multiple length.
        let (period, n_sub) = (250, 3);
        let len = 2_137usize;
        let data: Vec<u64> = (0..len as u64).map(|i| (i * 2654435761) % 1_000).collect();
        let want = sequential_window_sums(&data, period, n_sub);
        let boundaries = len.div_ceil(period) as u64;
        for b in 1..boundaries {
            for plan in [
                ReshardPlan::Split { slot: 0, pivot: 77 },
                ReshardPlan::Merge { left: 0 },
            ] {
                let mut coord = SumCoordinator::new(period, n_sub);
                let got = run_resharded(
                    SumShard::default,
                    &mut coord,
                    period,
                    &data,
                    2,
                    1_000,
                    &[ReshardSpec { boundary: b, plan }],
                )
                .unwrap();
                assert_eq!(got, want, "boundary {b} plan {plan:?}");
                assert_eq!(coord.filled, len % period, "boundary {b} plan {plan:?}");
            }
        }
        // A longer chain: split, split again, then merge back.
        let specs = [
            ReshardSpec {
                boundary: 1,
                plan: ReshardPlan::Split {
                    slot: 0,
                    pivot: 300,
                },
            },
            ReshardSpec {
                boundary: 3,
                plan: ReshardPlan::Split {
                    slot: 3,
                    pivot: 400,
                },
            },
            ReshardSpec {
                boundary: 6,
                plan: ReshardPlan::Merge { left: 4 },
            },
        ];
        let mut coord = SumCoordinator::new(period, n_sub);
        let got = run_resharded(
            SumShard::default,
            &mut coord,
            period,
            &data,
            2,
            1_000,
            &specs,
        )
        .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn plan_reshards_splits_hot_ranges_and_merges_cold_ones() {
        let period = 100;
        // Sub-windows 0..3 concentrate everything in slot 0's range,
        // then the stream goes quiet enough for merges.
        let mut data: Vec<u64> = (0..300u64).map(|i| i % 50).collect();
        data.extend((0..300u64).map(|i| 10 * (i % 100)));
        let specs = plan_reshards(&data, period, 2, 1_000, 80, 4).unwrap();
        assert!(!specs.is_empty());
        assert!(matches!(
            specs[0],
            ReshardSpec {
                boundary: 1,
                plan: ReshardPlan::Split { slot: 0, .. }
            }
        ));
        // Deterministic: same input, same schedule.
        assert_eq!(
            specs,
            plan_reshards(&data, period, 2, 1_000, 80, 4).unwrap()
        );
        // The planned schedule validates and reproduces sequential sums.
        let mut coord = SumCoordinator::new(period, 2);
        let got = run_resharded(
            SumShard::default,
            &mut coord,
            period,
            &data,
            2,
            1_000,
            &specs,
        )
        .unwrap();
        assert_eq!(got, sequential_window_sums(&data, period, 2));
        // The cap is honored.
        assert!(plan_reshards(&data, period, 2, 1_000, 80, 1).unwrap().len() <= 1);
        assert!(plan_reshards(&data, period, 0, 1_000, 80, 4).is_err());
        assert!(plan_reshards(&data, period, 2, 1_000, 0, 4).is_err());
    }

    #[test]
    fn distributed_stats_cover_every_boundary() {
        let (period, n_sub) = (100, 3);
        let data: Vec<u64> = (0..1050u64).collect();
        let mut coord = SumCoordinator::new(period, n_sub);
        let (got, stats) =
            run_distributed_with_stats(SumShard::default, &mut coord, period, &data, 3);
        assert_eq!(got, sequential_window_sums(&data, period, n_sub));
        // 10 full boundaries + the trailing partial sub-window.
        assert_eq!(stats.boundaries, 11);
        assert!(stats.merge_ns > 0);
        assert!(stats.collect_ns > 0);
        assert!(stats.wall_ns >= stats.merge_ns.max(stats.collect_ns));
        // Overlap is bounded by the merge time it hides.
        assert!(stats.overlap_ns() <= stats.merge_ns + stats.collect_ns);
        assert!((0.0..=1.0).contains(&stats.merge_hidden_fraction()));
    }

    #[test]
    fn coordinate_pipelined_matches_serial_merge_order() {
        // The pipelined core must merge groups in stream order and
        // summaries in the order the collector pushed them, exactly
        // like the old boundary-synchronous loop.
        let groups: Vec<Vec<(u64, usize)>> = (0..20u64)
            .map(|b| (0..4u64).map(|s| (b * 10 + s, 25usize)).collect())
            .collect();
        let mut serial = SumCoordinator::new(100, 2);
        let want: Vec<u64> = groups
            .iter()
            .flatten()
            .filter_map(|s| serial.merge_summary(s))
            .collect();
        let mut pipelined = SumCoordinator::new(100, 2);
        let (got, stats) = coordinate_pipelined(&mut pipelined, groups.len(), |b, group| {
            group.extend(groups[b].iter().copied());
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.boundaries, groups.len());
        assert_eq!(pipelined.filled, serial.filled);
        assert_eq!(pipelined.ring, serial.ring);
    }

    #[test]
    fn coordinate_pipelined_zero_boundaries() {
        let mut coord = SumCoordinator::new(10, 2);
        let (out, stats) =
            coordinate_pipelined(&mut coord, 0, |_, _| Ok::<(), std::convert::Infallible>(()))
                .unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.boundaries, 0);
        assert_eq!(stats.overlap_us_per_boundary(), 0.0);
    }

    #[test]
    fn coordinate_pipelined_propagates_collect_errors() {
        // A collector failure (e.g. a worker socket dying) must surface
        // as the error, not hang or panic, and must leave the
        // already-handed-over groups merged.
        let mut coord = SumCoordinator::new(100, 2);
        let err = coordinate_pipelined(&mut coord, 10, |b, group| {
            if b == 3 {
                return Err("worker died");
            }
            group.push((1, 100));
            Ok(())
        })
        .unwrap_err();
        assert_eq!(err, "worker died");
        // Groups 0..3 were collected and merged before the failure.
        assert_eq!(coord.ring.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn distributed_rejects_zero_shards() {
        let data: Vec<u64> = vec![];
        let mut coord = SumCoordinator::new(10, 2);
        run_distributed(SumShard::default, &mut coord, 10, &data, 0);
    }

    #[test]
    #[should_panic(expected = "positive sub-window period")]
    fn distributed_rejects_zero_period() {
        let data: Vec<u64> = vec![1];
        let mut coord = SumCoordinator::new(10, 2);
        run_distributed(SumShard::default, &mut coord, 0, &data, 2);
    }
}
