//! Pipelined, sharded, and distributed execution.
//!
//! The paper measures single-thread operator throughput; to do the same
//! without the workload generator polluting the measurement, the harness
//! runs generation on one thread and the operator on another, connected
//! by a bounded crossbeam channel ([`run_pipelined`]). Two multi-worker
//! executors build on that substrate, covering the two deployment shapes
//! §7's "extends to distributed computing" remark implies:
//!
//! * [`run_sharded`] — **independent windows**: one operator instance
//!   per worker, each answering its own slice of traffic (per-pipeline
//!   monitoring). Answers are per-shard; nothing is merged.
//! * [`run_distributed`] — **one logical window**: values are dealt
//!   round-robin across shard accumulators, shards surrender mergeable
//!   summaries at every sub-window boundary, and a coordinator folds
//!   them into a single logical window whose answers equal a
//!   single-instance run over the undealt stream.
//!
//! Both executors are agnostic to how an operator stores its state:
//! QLOVE's Level-1 backend (red-black tree, or the dense direct-indexed
//! store `qlove_freqstore` enables for quantized domains) rides along
//! inside the operator the `make_op`/`make_shard` closures construct,
//! so the same executor serves either backend — only the cost of
//! [`SummaryMerge::merge_summary`] changes (per-key tree descents vs
//! array adds). Summaries themselves are backend-neutral sorted
//! `(value, frequency)` multisets, so shards and the coordinator may
//! even run different backends.

use crate::aggregate::IncrementalAggregate;
use crate::window::{SlidingWindow, WindowSpec};
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// Batch size used on the channel: amortizes per-message synchronization,
/// keeping the channel out of the measured operator cost. The consumer
/// feeds each batch straight into the executor's batched ingestion path
/// ([`SlidingWindow::push_batch`]), so the batching survives end to end
/// instead of being undone element by element at the consumer.
pub const BATCH: usize = 4096;

/// Run `op` over `values` on a dedicated consumer thread while the
/// producer thread generates input, returning all emitted window results.
///
/// The generic bounds require `Send` because values cross threads; all
/// telemetry payloads used in this workspace are `u64`/`f64`.
pub fn run_pipelined<A, I>(op: A, spec: WindowSpec, values: I) -> Vec<A::Output>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send,
    A::Output: Send,
    A::State: Send,
    I: IntoIterator<Item = A::Input> + Send,
{
    let (tx, rx) = channel::bounded::<Vec<A::Input>>(8);
    thread::scope(|scope| {
        scope.spawn(move || {
            let mut batch = Vec::with_capacity(BATCH);
            for v in values {
                batch.push(v);
                if batch.len() == BATCH
                    && tx
                        .send(std::mem::replace(&mut batch, Vec::with_capacity(BATCH)))
                        .is_err()
                {
                    return;
                }
            }
            if !batch.is_empty() {
                let _ = tx.send(batch);
            }
        });
        let mut window = SlidingWindow::new(op, spec);
        let mut out = Vec::new();
        for batch in rx.iter() {
            window.push_batch(&batch, &mut out);
        }
        out
    })
}

/// Shard `values` round-robin across `shards` worker threads, each
/// running an **independent** sliding-window instance of the operator
/// built by `make_op`; returns each shard's emitted results.
///
/// This models per-shard quantile monitoring: each ingestion pipeline
/// watches its own slice of traffic and answers for that slice only.
/// For one logical window answered collectively from every shard's
/// data — the distributed merge of sub-window summaries — use
/// [`run_distributed`].
pub fn run_sharded<A, F>(
    make_op: F,
    spec: WindowSpec,
    values: &[A::Input],
    shards: usize,
) -> Vec<Vec<A::Output>>
where
    A: IncrementalAggregate + Send,
    A::Input: Clone + Send + Sync,
    A::Output: Send,
    F: Fn() -> A + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let results: Vec<Mutex<Vec<A::Output>>> = (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let results = Arc::new(results);
    thread::scope(|scope| {
        for shard in 0..shards {
            let results = Arc::clone(&results);
            let make_op = &make_op;
            scope.spawn(move || {
                let mut window = SlidingWindow::new(make_op(), spec);
                let mut local = Vec::new();
                // Re-batch the strided slice so each worker also rides
                // the batched ingestion path.
                let mut batch: Vec<A::Input> = Vec::with_capacity(BATCH);
                for v in values.iter().skip(shard).step_by(shards) {
                    batch.push(v.clone());
                    if batch.len() == BATCH {
                        window.push_batch(&batch, &mut local);
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    window.push_batch(&batch, &mut local);
                }
                *results[shard].lock() = local;
            });
        }
    });
    Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("worker threads joined; sole owner"))
        .into_iter()
        .map(Mutex::into_inner)
        .collect()
}

/// The shard half of a distributed one-logical-window execution: a
/// boundary-free accumulator over one shard's slice of the stream that
/// periodically surrenders its in-flight state as a mergeable summary.
///
/// Implementations must be order-insensitive within a sub-window (a
/// multiset-like state), because the executor deals elements round-robin
/// and shards ingest their slices concurrently. Every summary covers
/// exactly the elements ingested since the previous `take_summary`.
pub trait ShardAccumulator {
    /// Element type ingested.
    type Input;
    /// The mergeable state snapshot shipped to the coordinator.
    type Summary: Send;
    /// Fold a batch of this shard's elements into the in-flight state.
    /// The executor guarantees batches never straddle a logical
    /// sub-window boundary.
    fn ingest_batch(&mut self, values: &[Self::Input]);
    /// Snapshot the in-flight state as a summary and reset it.
    fn take_summary(&mut self) -> Self::Summary;
}

/// The coordinator half of a distributed one-logical-window execution:
/// merges shard summaries into one logical window and emits an answer
/// whenever a merge completes an evaluation.
pub trait SummaryMerge {
    /// Summary type accepted (the shards' [`ShardAccumulator::Summary`]).
    type Summary;
    /// Window evaluation output.
    type Output;
    /// Merge one shard's summary into the logical window. Returns
    /// `Some` when this merge closed a sub-window that produced an
    /// evaluation (at most the final summary of each boundary group
    /// does).
    fn merge_summary(&mut self, summary: &Self::Summary) -> Option<Self::Output>;
}

/// Answer **one logical window** from `shards` ingestion shards.
///
/// Values are dealt round-robin (element `i` to shard `i % shards`, the
/// arrival-order interleaving a distributed ingestion tier produces);
/// each shard accumulates its slice through the batched path and, at
/// every logical sub-window boundary (each `period` elements of the
/// *logical* stream), ships a summary of its partial sub-window to the
/// coordinator. The coordinator merges each boundary's summaries — in
/// stream order across boundaries — and returns the emitted answers.
///
/// Because shard state is a multiset union, the merged sub-window is
/// element-for-element the one a single instance would have built from
/// the undealt stream, so the answers (and the coordinator's trailing
/// in-flight state) match a sequential run exactly. A trailing partial
/// sub-window is shipped and merged too, leaving it pending in the
/// coordinator rather than dropped.
///
/// # Panics
/// Panics when `shards == 0` or `period == 0`.
pub fn run_distributed<S, C, F>(
    make_shard: F,
    coordinator: &mut C,
    period: usize,
    values: &[S::Input],
    shards: usize,
) -> Vec<C::Output>
where
    S: ShardAccumulator,
    S::Input: Clone + Sync,
    S::Summary: Send,
    C: SummaryMerge<Summary = S::Summary>,
    F: Fn() -> S + Sync,
{
    assert!(shards > 0, "need at least one shard");
    assert!(period > 0, "need a positive sub-window period");
    // One bounded channel per shard: each shard sends its summaries in
    // boundary order, so the k-th message on shard i's channel *is*
    // boundary k — no tagging or reorder buffering needed — and the
    // per-channel capacity is real backpressure (a fast shard can run
    // at most `capacity` boundaries ahead of the coordinator, keeping
    // in-flight summary memory bounded no matter how skewed the shard
    // scheduling gets).
    let boundaries = values.len().div_ceil(period);
    thread::scope(|scope| {
        let mut receivers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<S::Summary>(4);
            receivers.push(rx);
            let make_shard = &make_shard;
            scope.spawn(move || {
                let mut op = make_shard();
                let mut batch: Vec<S::Input> = Vec::with_capacity(BATCH.min(period));
                for (w, sub) in values.chunks(period).enumerate() {
                    // This shard's elements of sub-window `w`: global
                    // indices ≡ shard (mod shards), re-batched so each
                    // worker rides the batched ingestion path.
                    let start = w * period;
                    let first = (shard + shards - start % shards) % shards;
                    for v in sub.iter().skip(first).step_by(shards) {
                        batch.push(v.clone());
                        if batch.len() == BATCH {
                            op.ingest_batch(&batch);
                            batch.clear();
                        }
                    }
                    if !batch.is_empty() {
                        op.ingest_batch(&batch);
                        batch.clear();
                    }
                    if tx.send(op.take_summary()).is_err() {
                        return;
                    }
                }
            });
        }
        // The coordinator runs on the calling thread, merging each
        // boundary's summaries in shard order. (Any order would produce
        // the same multiset; shard order makes runs reproducible.)
        let mut out = Vec::new();
        for _ in 0..boundaries {
            for rx in &receivers {
                let summary = rx.recv().expect("shard thread ended early");
                if let Some(answer) = coordinator.merge_summary(&summary) {
                    out.push(answer);
                }
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, ExactQuantileOp};

    #[test]
    fn pipelined_matches_sequential() {
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 1000).collect();
        let spec = WindowSpec::sliding(1000, 500);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.99]), spec, data.clone());
        let mut seq_window = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.99]), spec);
        let seq: Vec<_> = data.iter().filter_map(|&v| seq_window.push(v)).collect();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 9);
    }

    #[test]
    fn pipelined_batch_consumption_matches_sequential_per_element() {
        // The consumer feeds whole channel batches through push_batch;
        // results must equal the sequential per-element executor even
        // when the stream length is not a multiple of the channel batch
        // (forcing a short trailing batch) and the window boundary falls
        // mid-batch.
        let n = BATCH * 3 + 1234;
        let data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 9973).collect();
        let spec = WindowSpec::sliding(5000, 1250);
        let par = run_pipelined(ExactQuantileOp::new(&[0.5, 0.999]), spec, data.clone());
        let mut seq = SlidingWindow::new(ExactQuantileOp::new(&[0.5, 0.999]), spec);
        let want: Vec<_> = data.iter().filter_map(|&v| seq.push(v)).collect();
        assert_eq!(par, want);
        assert!(!par.is_empty());
    }

    #[test]
    fn sharded_batching_matches_unbatched_stride() {
        // Each worker re-batches its strided slice; results must equal a
        // plain per-element walk of the same stride.
        let data: Vec<u64> = (0..3 * BATCH as u64 + 777)
            .map(|i| (i * 31) % 1009)
            .collect();
        let spec = WindowSpec::sliding(1000, 250);
        let shards = 3;
        let out = run_sharded(|| ExactQuantileOp::new(&[0.5]), spec, &data, shards);
        for (shard, results) in out.iter().enumerate() {
            let mut w = SlidingWindow::new(ExactQuantileOp::new(&[0.5]), spec);
            let want: Vec<_> = data
                .iter()
                .skip(shard)
                .step_by(shards)
                .filter_map(|&v| w.push(v))
                .collect();
            assert_eq!(results, &want, "shard {shard}");
        }
    }

    #[test]
    fn pipelined_handles_short_streams() {
        let out = run_pipelined(CountOp, WindowSpec::tumbling(10), (0..5).map(f64::from));
        assert!(out.is_empty());
    }

    #[test]
    fn sharded_each_shard_sees_its_slice() {
        let data: Vec<u64> = (0..4000).collect();
        let spec = WindowSpec::tumbling(500);
        let out = run_sharded(|| ExactQuantileOp::new(&[1.0]), spec, &data, 4);
        assert_eq!(out.len(), 4);
        for (shard, results) in out.iter().enumerate() {
            // Each shard got 1000 values → two tumbling windows of 500.
            assert_eq!(results.len(), 2, "shard {shard}");
            // Max of shard's first window: values shard + 4k for k < 500.
            assert_eq!(results[0][0], shard as u64 + 4 * 499);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_shards() {
        let data: Vec<f64> = vec![];
        run_sharded(|| CountOp, WindowSpec::tumbling(1), &data, 0);
    }

    // ---- run_distributed over a toy mergeable operator -------------------

    /// Shard half of a distributed windowed sum: accumulates a partial
    /// sub-window `(sum, count)`.
    #[derive(Default)]
    struct SumShard {
        sum: u64,
        n: usize,
    }

    impl ShardAccumulator for SumShard {
        type Input = u64;
        type Summary = (u64, usize);
        fn ingest_batch(&mut self, values: &[u64]) {
            self.sum += values.iter().sum::<u64>();
            self.n += values.len();
        }
        fn take_summary(&mut self) -> (u64, usize) {
            let s = (self.sum, self.n);
            self.sum = 0;
            self.n = 0;
            s
        }
    }

    /// Coordinator half: a sliding window of `n_sub` sub-window sums,
    /// emitting the window total at each completed sub-window once full.
    struct SumCoordinator {
        period: usize,
        n_sub: usize,
        filled: usize,
        current: u64,
        ring: std::collections::VecDeque<u64>,
    }

    impl SumCoordinator {
        fn new(period: usize, n_sub: usize) -> Self {
            Self {
                period,
                n_sub,
                filled: 0,
                current: 0,
                ring: Default::default(),
            }
        }
    }

    impl SummaryMerge for SumCoordinator {
        type Summary = (u64, usize);
        type Output = u64;
        fn merge_summary(&mut self, &(sum, n): &(u64, usize)) -> Option<u64> {
            self.current += sum;
            self.filled += n;
            assert!(self.filled <= self.period, "summary crossed a boundary");
            if self.filled < self.period {
                return None;
            }
            self.filled = 0;
            self.ring.push_back(self.current);
            self.current = 0;
            if self.ring.len() > self.n_sub {
                self.ring.pop_front();
            }
            (self.ring.len() == self.n_sub).then(|| self.ring.iter().sum())
        }
    }

    /// Sequential reference: window sums of the undealt stream.
    fn sequential_window_sums(data: &[u64], period: usize, n_sub: usize) -> Vec<u64> {
        let window = period * n_sub;
        (0..(data.len().saturating_sub(window - 1)))
            .filter(|i| i % period == 0)
            .map(|i| data[i..i + window].iter().sum())
            .collect()
    }

    #[test]
    fn distributed_matches_sequential_window_sums() {
        let (period, n_sub) = (500, 4);
        // Lengths straddling BATCH multiples, period multiples, and a
        // trailing partial sub-window.
        for len in [0usize, 499, 2_000, 2_001, BATCH * 2 + 777, 3 * BATCH] {
            let data: Vec<u64> = (0..len as u64).map(|i| (i * 2654435761) % 10_007).collect();
            let want = sequential_window_sums(&data, period, n_sub);
            for shards in [1usize, 2, 3, 7] {
                let mut coord = SumCoordinator::new(period, n_sub);
                let got = run_distributed(SumShard::default, &mut coord, period, &data, shards);
                assert_eq!(got, want, "len {len} shards {shards}");
                // The trailing partial sub-window is merged, not dropped.
                assert_eq!(coord.filled, len % period, "len {len} shards {shards}");
            }
        }
    }

    #[test]
    fn distributed_more_shards_than_period_elements() {
        // Shards that receive no element of some sub-window must still
        // ship (empty) summaries so boundary groups complete.
        let data: Vec<u64> = (0..30u64).collect();
        let mut coord = SumCoordinator::new(10, 2);
        let got = run_distributed(SumShard::default, &mut coord, 10, &data, 16);
        assert_eq!(got, sequential_window_sums(&data, 10, 2));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn distributed_rejects_zero_shards() {
        let data: Vec<u64> = vec![];
        let mut coord = SumCoordinator::new(10, 2);
        run_distributed(SumShard::default, &mut coord, 10, &data, 0);
    }

    #[test]
    #[should_panic(expected = "positive sub-window period")]
    fn distributed_rejects_zero_period() {
        let data: Vec<u64> = vec![1];
        let mut coord = SumCoordinator::new(10, 2);
        run_distributed(SumShard::default, &mut coord, 0, &data, 2);
    }
}
