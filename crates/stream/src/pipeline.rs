//! A LINQ-flavoured query pipeline.
//!
//! The paper's monitoring query (§5.1):
//!
//! ```text
//! Qmonitor = Stream
//!   .Window(windowSize, period)
//!   .Where(e => e.errorCode != 0)
//!   .Aggregate(c => c.Quantile(0.5, 0.9, 0.99, 0.999))
//! ```
//!
//! translates here to:
//!
//! ```
//! use qlove_stream::{Pipeline, WindowSpec};
//! use qlove_stream::ops::ExactQuantileOp;
//!
//! let results: Vec<Vec<u64>> = Pipeline::from_values(0u64..1000)
//!     .filter(|&v| v % 7 != 0)                 // .Where(...)
//!     .sliding(
//!         WindowSpec::sliding(100, 50),        // .Window(size, period)
//!         ExactQuantileOp::new(&[0.5, 0.99]),  // .Aggregate(quantiles)
//!     )
//!     .collect();
//! assert!(!results.is_empty());
//! ```
//!
//! # Batched execution
//!
//! The pipeline's window stages are backed by the same executors as
//! everything else ([`SlidingWindow`], [`TumblingWindow`]), which also
//! expose a batched ingestion path (`push_batch`). Its contract: a
//! batch is **split at every evaluation boundary**, each span between
//! boundaries is folded with
//! [`crate::aggregate::IncrementalAggregate::accumulate_batch`], and
//! the emitted results equal the per-element path answer-for-answer —
//! provided the operator's accumulate/deaccumulate are
//! order-insensitive between boundaries (true of every multiset- or
//! sum-like operator here). The pipelined executor
//! ([`crate::parallel::run_pipelined`]) ships 4096-element batches over
//! its channel and feeds them straight into that path, so batching
//! survives end to end instead of being undone at the consumer; the
//! sharded executor ([`crate::parallel::run_sharded`]) re-batches each
//! worker's stride the same way.

use crate::aggregate::IncrementalAggregate;
use crate::event::Event;
use crate::window::{SlidingWindow, TumblingWindow, WindowSpec};

/// A lazily-evaluated stream of events flowing toward a windowed
/// aggregate. Thin wrapper over an iterator so that arbitrarily many
/// `filter`/`map` stages compose without boxing.
pub struct Pipeline<I> {
    source: I,
}

impl<V, I: Iterator<Item = Event<V>>> Pipeline<I> {
    /// Start a pipeline from an event iterator.
    pub fn new(source: I) -> Self {
        Self { source }
    }

    /// `Where`: keep events whose payload satisfies the predicate.
    pub fn filter<F: FnMut(&V) -> bool>(
        self,
        mut pred: F,
    ) -> Pipeline<impl Iterator<Item = Event<V>>> {
        Pipeline {
            source: self.source.filter(move |e| pred(&e.value)),
        }
    }

    /// `Select`: transform payloads.
    pub fn map<U, F: FnMut(V) -> U>(self, mut f: F) -> Pipeline<impl Iterator<Item = Event<U>>> {
        Pipeline {
            source: self.source.map(move |e| e.map(&mut f)),
        }
    }

    /// `Window(size, period).Aggregate(op)` over a sliding window;
    /// returns an iterator of per-evaluation results.
    pub fn sliding<A>(self, spec: WindowSpec, op: A) -> impl Iterator<Item = A::Output>
    where
        A: IncrementalAggregate<Input = V>,
        V: Clone,
    {
        let mut w = SlidingWindow::new(op, spec);
        self.source.filter_map(move |e| w.push(e.value))
    }

    /// `Window(size).Aggregate(op)` over a tumbling window.
    pub fn tumbling<A>(self, size: usize, op: A) -> impl Iterator<Item = A::Output>
    where
        A: IncrementalAggregate<Input = V>,
    {
        let mut w = TumblingWindow::new(op, size);
        self.source.filter_map(move |e| w.push(e.value))
    }
}

impl<V> Pipeline<std::iter::Empty<Event<V>>> {
    /// Start a pipeline from plain values, assigning sequential
    /// timestamps.
    pub fn from_values<J: IntoIterator<Item = V>>(
        values: J,
    ) -> Pipeline<impl Iterator<Item = Event<V>>> {
        Pipeline {
            source: crate::event::sequence(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, MeanOp};

    #[test]
    fn filter_then_tumbling_mean() {
        let out: Vec<Option<f64>> = Pipeline::from_values((1..=20).map(f64::from))
            .filter(|&v| v <= 8.0)
            .tumbling(4, MeanOp)
            .collect();
        // Values 1..=8 pass; two windows of four.
        assert_eq!(out, vec![Some(2.5), Some(6.5)]);
    }

    #[test]
    fn map_transforms_payloads() {
        let out: Vec<u64> = Pipeline::from_values(0..12u64)
            .map(|v| (v * 2) as f64)
            .tumbling(6, CountOp)
            .collect();
        assert_eq!(out, vec![6, 6]);
    }

    #[test]
    fn qmonitor_shape_compiles_and_runs() {
        use crate::ops::ExactQuantileOp;
        let results: Vec<Vec<u64>> = Pipeline::from_values(0u64..500)
            .filter(|&v| v % 10 != 0) // "errorCode != 0"
            .sliding(WindowSpec::sliding(90, 45), ExactQuantileOp::new(&[0.5]))
            .collect();
        assert!(results.len() >= 2);
        for r in &results {
            assert_eq!(r.len(), 1);
        }
    }
}
