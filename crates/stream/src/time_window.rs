//! Time-based window executors.
//!
//! §2: "Our work can be applied to windows defined by time parameters,
//! e.g., evaluate the query every one minute (window period) for the
//! elements seen last one hour (window size)." These executors drive
//! any [`IncrementalAggregate`] over event-time windows; the paper's
//! evaluation itself is count-based, so the count executors in
//! [`crate::window`] remain the harness workhorses.
//!
//! Semantics: event time is taken from [`Event::timestamp`] and must be
//! non-decreasing (telemetry pipelines deliver in arrival order; an
//! out-of-order event panics in debug and is clamped in release).
//! Windows are aligned to multiples of the period; a window `(t₀, t₁]`
//! is evaluated when the first event with `timestamp > t₁` arrives,
//! covering events in `(t₁ − size, t₁]`.

use crate::aggregate::IncrementalAggregate;
use crate::event::Event;
use std::collections::VecDeque;

/// Window size and period in timestamp units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindowSpec {
    /// How far back a window reaches, in timestamp units.
    pub size: u64,
    /// How often the query evaluates, in timestamp units.
    pub period: u64,
}

impl TimeWindowSpec {
    /// A sliding time window.
    ///
    /// # Panics
    /// Panics when `period == 0` or `size < period`.
    pub fn sliding(size: u64, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(size >= period, "size must be ≥ period");
        Self { size, period }
    }

    /// A tumbling time window.
    pub fn tumbling(size: u64) -> Self {
        Self::sliding(size, size)
    }
}

/// One emitted evaluation of a time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedResult<R> {
    /// Window end timestamp `t₁` (window covers `(t₁ − size, t₁]`).
    pub window_end: u64,
    /// Number of events inside the window at evaluation.
    pub events: usize,
    /// The aggregate's output.
    pub result: R,
}

/// Event-time sliding-window executor over any incremental aggregate.
#[derive(Debug)]
pub struct TimeSlidingWindow<A: IncrementalAggregate>
where
    A::Input: Clone,
{
    op: A,
    spec: TimeWindowSpec,
    state: A::State,
    live: VecDeque<Event<A::Input>>,
    /// End timestamp of the next window to evaluate (exclusive of later
    /// events); `None` until the first event fixes the alignment.
    next_boundary: Option<u64>,
    last_ts: u64,
}

impl<A: IncrementalAggregate> TimeSlidingWindow<A>
where
    A::Input: Clone,
{
    /// Build an executor. Sliding specs require a deaccumulating
    /// operator, exactly like the count-based executor.
    pub fn new(op: A, spec: TimeWindowSpec) -> Self {
        assert!(
            spec.size == spec.period || A::SUPPORTS_DEACCUMULATE,
            "operator cannot deaccumulate; use a tumbling time window"
        );
        let state = op.initial_state();
        Self {
            op,
            spec,
            state,
            live: VecDeque::new(),
            next_boundary: None,
            last_ts: 0,
        }
    }

    /// Feed one event; returns the evaluations (possibly several, if the
    /// event jumped multiple idle periods) that closed *before* this
    /// event's timestamp.
    pub fn push(&mut self, event: Event<A::Input>) -> Vec<TimedResult<A::Output>> {
        debug_assert!(
            event.timestamp >= self.last_ts,
            "event time went backwards: {} after {}",
            event.timestamp,
            self.last_ts
        );
        let ts = event.timestamp.max(self.last_ts);
        self.last_ts = ts;

        let boundary = *self.next_boundary.get_or_insert_with(|| {
            // Align the first boundary to the period multiple at or
            // after the first event (an event exactly on a boundary
            // belongs to the window that boundary closes).
            (ts.div_ceil(self.spec.period) * self.spec.period).max(self.spec.period)
        });

        let mut out = Vec::new();
        // Close every window that ended strictly before this event.
        let mut b = boundary;
        while ts > b {
            if self.spec.size == self.spec.period {
                // Tumbling: evaluate, then reset wholesale — no
                // per-element deaccumulation, mirroring the count-based
                // executor's cheap path.
                out.push(TimedResult {
                    window_end: b,
                    events: self.live.len(),
                    result: self.op.compute_result(&self.state),
                });
                self.state = self.op.initial_state();
                self.live.clear();
            } else {
                self.expire_older_than(b.saturating_sub(self.spec.size));
                out.push(TimedResult {
                    window_end: b,
                    events: self.live.len(),
                    result: self.op.compute_result(&self.state),
                });
            }
            b += self.spec.period;
        }
        self.next_boundary = Some(b);

        self.op.accumulate(&mut self.state, &event.value);
        self.live.push_back(event);
        out
    }

    fn expire_older_than(&mut self, cutoff: u64) {
        while self.live.front().is_some_and(|e| e.timestamp <= cutoff) {
            let e = self.live.pop_front().expect("front checked");
            self.op.deaccumulate(&mut self.state, &e.value);
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CountOp, ExactQuantileOp, MeanOp};

    #[test]
    fn spec_validation() {
        let s = TimeWindowSpec::sliding(3600, 60);
        assert_eq!(s.size, 3600);
        assert!(TimeWindowSpec::tumbling(60).size == 60);
    }

    #[test]
    #[should_panic(expected = "≥ period")]
    fn spec_rejects_small_size() {
        TimeWindowSpec::sliding(10, 60);
    }

    #[test]
    fn evaluates_at_period_boundaries() {
        // Period 10: events at t = 1..25 → boundaries at 10 and 20.
        let mut w = TimeSlidingWindow::new(CountOp, TimeWindowSpec::sliding(20, 10));
        let mut results = Vec::new();
        for t in 1..=25u64 {
            results.extend(w.push(Event::new(t as f64, t)));
        }
        let ends: Vec<u64> = results.iter().map(|r| r.window_end).collect();
        assert_eq!(ends, vec![10, 20]);
        // Window (−10, 10] saw events 1..=10 → count 10 at evaluation
        // (the boundary event 10 itself arrived before the close? no:
        // evaluation happens when t > boundary, so event 10 is included).
        assert_eq!(results[0].result, 10);
        assert_eq!(results[1].result, 20); // (0, 20] → 20 events
    }

    #[test]
    fn sliding_expires_old_events() {
        let mut w = TimeSlidingWindow::new(CountOp, TimeWindowSpec::sliding(10, 5));
        let mut results = Vec::new();
        for t in 1..=31u64 {
            results.extend(w.push(Event::new(t as f64, t)));
        }
        // From the third boundary on, every window holds exactly 10
        // events (full coverage).
        for r in results.iter().filter(|r| r.window_end >= 15) {
            assert_eq!(r.result, 10, "window ending {}", r.window_end);
            assert_eq!(r.events, 10);
        }
    }

    #[test]
    fn idle_gaps_emit_every_skipped_boundary() {
        let mut w = TimeSlidingWindow::new(CountOp, TimeWindowSpec::sliding(10, 10));
        assert!(w.push(Event::new(1.0, 1)).is_empty());
        // Jump from t=1 to t=45: boundaries 10, 20, 30, 40 all close.
        let results = w.push(Event::new(2.0, 45));
        let ends: Vec<u64> = results.iter().map(|r| r.window_end).collect();
        assert_eq!(ends, vec![10, 20, 30, 40]);
        // Windows (10,20] … (30,40] were empty.
        assert_eq!(results[1].events, 0);
    }

    #[test]
    fn irregular_arrival_rates_are_reflected_in_counts() {
        // Bursty arrivals: many events in one period, few in the next —
        // the whole reason time windows differ from count windows.
        let mut w = TimeSlidingWindow::new(MeanOp, TimeWindowSpec::sliding(20, 10));
        let mut results = Vec::new();
        for i in 0..50u64 {
            results.extend(w.push(Event::new(100.0, 1 + i / 10))); // t 1..=5: dense
        }
        results.extend(w.push(Event::new(7.0, 25)));
        assert!(!results.is_empty());
        let first = &results[0];
        assert_eq!(first.window_end, 10);
        assert_eq!(first.events, 50);
        assert_eq!(first.result, Some(100.0));
    }

    #[test]
    fn exact_quantiles_over_time_window() {
        let mut w = TimeSlidingWindow::new(
            ExactQuantileOp::new(&[0.5]),
            TimeWindowSpec::sliding(100, 50),
        );
        let mut results = Vec::new();
        for t in 1..=300u64 {
            results.extend(w.push(Event::new(t % 97, t)));
        }
        for r in &results {
            assert_eq!(r.result.len(), 1);
            assert!(r.result[0] < 97);
        }
        assert_eq!(results.len(), 5); // boundaries 50..=250 closed by t ≤ 300
    }

    #[test]
    fn tumbling_time_window_allows_non_deaccumulating_ops() {
        struct NoDeacc;
        impl IncrementalAggregate for NoDeacc {
            type State = u64;
            type Input = u64;
            type Output = u64;
            const SUPPORTS_DEACCUMULATE: bool = false;
            fn initial_state(&self) -> u64 {
                0
            }
            fn accumulate(&self, s: &mut u64, _: &u64) {
                *s += 1;
            }
            fn compute_result(&self, s: &u64) -> u64 {
                *s
            }
        }
        // Tumbling never deaccumulates: boundaries reset wholesale.
        let mut w = TimeSlidingWindow::new(NoDeacc, TimeWindowSpec::tumbling(10));
        let mut results = Vec::new();
        for t in 1..=35u64 {
            results.extend(w.push(Event::new(t, t)));
        }
        let counts: Vec<u64> = results.iter().map(|r| r.result).collect();
        assert_eq!(counts, vec![10, 10, 10]);
        assert_eq!(w.len(), 5); // t = 31..=35 in flight
    }
}
