//! Stream events.

/// One element of a data stream: a payload plus the logical timestamp that
/// "captures the order of the element's occurrence" (§2).
///
/// Telemetry payloads in this workspace are latency samples (`u64`
/// microseconds), but the engine is generic: any `V` works as long as the
/// downstream aggregate accepts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event<V> {
    /// Payload value.
    pub value: V,
    /// Monotonic logical timestamp (arrival index or wall-clock ticks).
    pub timestamp: u64,
}

impl<V> Event<V> {
    /// Construct an event.
    pub fn new(value: V, timestamp: u64) -> Self {
        Self { value, timestamp }
    }

    /// Map the payload, keeping the timestamp.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> Event<U> {
        Event {
            value: f(self.value),
            timestamp: self.timestamp,
        }
    }
}

/// Wrap an iterator of plain values into events with sequential
/// timestamps starting at 0 — the shape every harness source uses.
pub fn sequence<V, I: IntoIterator<Item = V>>(values: I) -> impl Iterator<Item = Event<V>> {
    values
        .into_iter()
        .enumerate()
        .map(|(i, v)| Event::new(v, i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_assigns_increasing_timestamps() {
        let evs: Vec<Event<u64>> = sequence([10u64, 20, 30]).collect();
        assert_eq!(evs[0], Event::new(10, 0));
        assert_eq!(evs[2], Event::new(30, 2));
    }

    #[test]
    fn map_preserves_timestamp() {
        let e = Event::new(5u64, 42).map(|v| v * 2);
        assert_eq!(e.value, 10);
        assert_eq!(e.timestamp, 42);
    }
}
