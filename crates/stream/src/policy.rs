//! The common contract for streaming multi-quantile operators.
//!
//! Every policy evaluated in the paper (§5.1: QLOVE, Exact, CMQS, AM,
//! Random, Moment) is, to the harness, the same thing: a box that eats
//! one `u64` telemetry value at a time and, on its window schedule,
//! emits one answer per configured quantile. This trait captures that,
//! letting accuracy/throughput/space experiments run policy-agnostic.

/// A streaming operator answering a fixed set of quantiles over a
/// count-based window, self-scheduled by its window/period parameters.
pub trait QuantilePolicy {
    /// Feed one element. Returns `Some(answers)` — one value per entry of
    /// [`QuantilePolicy::phis`], in the same order — whenever this
    /// element lands on an evaluation boundary with a full window.
    fn push(&mut self, value: u64) -> Option<Vec<u64>>;

    /// Feed a batch of elements in stream order, returning every answer
    /// emitted inside the batch, in emission order (possibly none,
    /// possibly several when the batch spans multiple periods).
    ///
    /// The default delegates to [`QuantilePolicy::push`] element by
    /// element, so every policy supports batching out of the box.
    /// Implementations may override it with a faster ingestion path
    /// (QLOVE does — see `qlove_core::Qlove::push_batch`); overrides
    /// must emit exactly the answers the per-element loop would, in the
    /// same order, bit for bit.
    fn push_batch(&mut self, values: &[u64]) -> Vec<Vec<u64>> {
        values.iter().filter_map(|&v| self.push(v)).collect()
    }

    /// The quantile fractions this policy answers.
    fn phis(&self) -> &[f64];

    /// Observed space usage in "number of variables" — the paper's §5.1
    /// memory metric (each stored scalar counts as one variable).
    fn space_variables(&self) -> usize;

    /// Human-readable policy name for harness tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        phis: Vec<f64>,
        seen: u64,
    }

    impl QuantilePolicy for Dummy {
        fn push(&mut self, value: u64) -> Option<Vec<u64>> {
            self.seen += 1;
            self.seen
                .is_multiple_of(4)
                .then(|| vec![value; self.phis.len()])
        }
        fn phis(&self) -> &[f64] {
            &self.phis
        }
        fn space_variables(&self) -> usize {
            1
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }

    #[test]
    fn default_push_batch_equals_per_element_loop() {
        let mut batched = Dummy {
            phis: vec![0.5],
            seen: 0,
        };
        let mut reference = Dummy {
            phis: vec![0.5],
            seen: 0,
        };
        let data: Vec<u64> = (0..37).collect();
        let mut got = Vec::new();
        for chunk in data.chunks(5) {
            got.extend(batched.push_batch(chunk));
        }
        let want: Vec<Vec<u64>> = data.iter().filter_map(|&v| reference.push(v)).collect();
        assert_eq!(got, want);
        assert_eq!(batched.seen, reference.seen);
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut p: Box<dyn QuantilePolicy> = Box::new(Dummy {
            phis: vec![0.5, 0.9],
            seen: 0,
        });
        let mut emitted = 0;
        for v in 0..16u64 {
            if let Some(ans) = p.push(v) {
                assert_eq!(ans.len(), p.phis().len());
                emitted += 1;
            }
        }
        assert_eq!(emitted, 4);
    }
}
