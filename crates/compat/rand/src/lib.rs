//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this local crate
//! provides exactly the API surface the workspace uses: `SmallRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen` / `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64, so streams are
//! deterministic, well-distributed, and cheap. Distribution details
//! (e.g. exact float widening) intentionally favour simplicity; all
//! workspace consumers only need *deterministic, uniform-enough*
//! values, never bit-compatibility with upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a fixed-width seed. Only the `seed_from_u64`
/// entry point is provided — it is the only one the workspace calls.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// The raw entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`] — the subset of `rand::Rng`
/// this workspace uses.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its "standard" distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via the widening-multiply method
/// (bias ≤ 2⁻⁶⁴·span — negligible for every span this workspace uses).
#[inline]
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Rounding can land exactly on the excluded endpoint when the
        // span is large; fold that measure-zero case back to the start.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
}

/// A small, fast, deterministic generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as rand does for small seeds.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let v = rng.gen_range(1e-12..1.0 - 1e-12);
            assert!((1e-12..1.0 - 1e-12).contains(&v));
            let w = rng.gen_range(0.5f64..=2.0);
            assert!((0.5..=2.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
            let w = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a bucket");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}/10000 trues");
    }
}
