//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range / tuple / [`Just`] / [`any`] strategies, `prop_map`,
//! weighted [`prop_oneof!`], `proptest::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion forms returning
//! [`test_runner::TestCaseError`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (cases are deterministic per test name + case index, so a
//!   failure is reproducible by rerunning the test).
//! * **Deterministic seeding.** Cases derive from a fixed seed hashed
//!   with the test name — no `PROPTEST_CASES`/env integration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    /// Namespace mirror so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = <$crate::test_runner::TestRng as
                    $crate::test_runner::DeterministicSeed>::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    let debug_inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?} ")),+),
                        $(&$arg),+
                    );
                    let outcome = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err,
                            debug_inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted choice between strategies producing the same value type.
///
/// `prop_oneof![3 => a, 1 => b]` picks `a` three times as often as `b`;
/// the unweighted form gives every arm weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a property body; failure aborts the case (not the
/// process) with a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u64..100, ab in (0u8..10, 0.0f64..=1.0)) {
            let (a, b) = ab;
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 10);
            prop_assert!((0.0..=1.0).contains(&b));
        }

        #[test]
        fn vec_and_oneof(v in crate::collection::vec(
            prop_oneof![3 => 0u64..10, 1 => 100u64..200],
            2..50,
        )) {
            prop_assert!(v.len() >= 2 && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 10 || (100..200).contains(&x)));
        }

        #[test]
        fn map_and_just(v in Just(7u32).prop_map(|x| x * 2)) {
            prop_assert_eq!(v, 14);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            fn always_fails(x in 0u8..10) {
                prop_assert!(u16::from(x) > 255, "x was {}", x);
            }
        }
        always_fails();
    }
}
