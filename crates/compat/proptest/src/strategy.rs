//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()`: the full uniform distribution of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of strategies — built by [`crate::prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Self { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, arm) in &self.arms {
            let w = *w as u64;
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("pick < total_weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
