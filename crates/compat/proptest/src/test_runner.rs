//! Test-runner plumbing: configuration, case errors, deterministic RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Per-test configuration. Only the `cases` knob is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property this many times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (from `prop_assert!` or an explicit
/// [`TestCaseError::fail`]).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail<M: fmt::Display>(message: M) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG driving generation: deterministic per test name, so every
/// failure reproduces by rerunning the same test binary.
pub type TestRng = SmallRng;

/// Extension hook used by the [`crate::proptest!`] expansion.
pub trait DeterministicSeed: Sized {
    /// Seed from a test's name (FNV-1a hashed).
    fn deterministic(name: &str) -> Self;
}

impl DeterministicSeed for SmallRng {
    fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}
