//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from `size` and elements
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        !size.is_empty(),
        "vec strategy needs a non-empty size range"
    );
    VecStrategy { element, size }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
