//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!` / `criterion_main!`
//! — backed by a plain timing loop instead of criterion's statistical
//! machinery. Each benchmark runs `sample_size` timed iterations after
//! one warm-up and reports mean wall-clock time per iteration plus
//! derived throughput. Good enough to compare alternatives and catch
//! order-of-magnitude regressions; not a statistics engine.
//!
//! Respects a substring filter argument (`cargo bench -- <filter>`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Entry point handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Honour `cargo bench -- <filter>` (first free argument).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            criterion: self,
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed iterations per benchmark (criterion's sample
    /// count; here simply the measurement loop length, capped at 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 30);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id.clone(), |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// End the group (printing is per-bench; nothing deferred).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.mean;
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / mean.as_secs_f64() / 1e6;
                println!("{full:<56} {mean:>12.3?}/iter  {rate:>10.2} Melem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / mean.as_secs_f64() / 1e6;
                println!("{full:<56} {mean:>12.3?}/iter  {rate:>10.2} MB/s");
            }
            None => println!("{full:<56} {mean:>12.3?}/iter"),
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Time the routine: one warm-up call, then `samples` measured
    /// calls; the recorded figure is the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Group several target functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(1000));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
