//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the bounded-channel subset the workspace uses
//! (`crossbeam::channel::bounded`, `Sender::send`, `Receiver::iter`),
//! implemented over `std::sync::mpsc::sync_channel`. Semantics match
//! what the executors rely on: `send` blocks while the channel is full,
//! and the receiver's iterator ends when every sender is dropped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when every sender is gone
    /// and the channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while the channel is at capacity.
        /// Errors only when the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking iterator over received messages; ends when all
        /// senders are dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self.0.iter())
        }

        /// Receive one message, blocking until one is available. Errors
        /// only when every sender is dropped and the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T>(mpsc::Iter<'a, T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.next()
        }
    }

    /// Create a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_close() {
            let (tx, rx) = bounded::<u32>(2);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for v in 0..10 {
                        tx.send(v).unwrap();
                    }
                });
                let got: Vec<u32> = rx.iter().collect();
                assert_eq!(got, (0..10).collect::<Vec<_>>());
            });
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_returns_messages_then_errors_on_close() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
