//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s poison-free API
//! (`lock()` returns the guard directly, `into_inner()` returns the
//! value directly). A poisoned std mutex is transparently recovered —
//! matching parking_lot, which has no poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Re-export of the std guard type; `parking_lot`'s guard derefs the
/// same way, so callers are agnostic.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn contended_increments() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
