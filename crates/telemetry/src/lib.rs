//! # qlove-telemetry — the unified telemetry plane
//!
//! Dependency-free observability substrate for the QLOVE runtime. Two
//! halves, both safe to hammer from the dealer/collector/merger
//! threads concurrently:
//!
//! * [`metrics`] — a lock-free metrics registry: monotonic
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed latency [`Histogram`]s
//!   (p50/p99/max readout), all plain atomics behind `Arc` handles.
//!   Registration takes a short lock once; every update afterwards is
//!   a single atomic RMW. Snapshots render to Prometheus text
//!   exposition format ([`MetricsSnapshot::to_prometheus_text`]) or
//!   JSON ([`MetricsSnapshot::to_json`]).
//! * [`journal`] — a bounded structured **event journal**: a ring of
//!   timestamped [`RuntimeEvent`]s that unifies the runtime's failure,
//!   recovery, reshard, and pause records behind one type, replacing
//!   the bespoke per-run vectors the transport layers used to carry.
//!   Emission is unconditional (the journal is the source of truth
//!   for the compatibility views `DistributedRun::failures` et al.);
//!   only *metric* recording honors the global [`set_enabled`] switch.
//!
//! Every timestamp in the crate comes from one monotonic clock
//! ([`now_us`]): an `Instant` anchored at first use, never wall time,
//! so event ordering is stable across threads and immune to clock
//! steps.
//!
//! The process-wide registry lives behind [`global_metrics`]; code
//! that wants isolation (tests, benches) builds its own
//! [`MetricsRegistry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod metrics;

pub use journal::{EventJournal, EventKind, RuntimeEvent};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The single monotonic clock anchor for the whole process. Anchored
/// lazily at first use; every telemetry timestamp is microseconds
/// since this anchor — `Instant`-based, never wall clock, so ordering
/// is stable across threads and immune to NTP steps.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Microseconds since the process-wide monotonic anchor. The one clock
/// every journal timestamp and telemetry duration derives from.
pub fn now_us() -> u64 {
    anchor().elapsed().as_micros() as u64
}

/// A started stopwatch on the shared monotonic clock; replaces ad-hoc
/// `Instant::now()`/`elapsed()` pairs so every duration in the runtime
/// comes from the same clock source.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(u64);

impl Stopwatch {
    /// Start now.
    pub fn start() -> Self {
        Stopwatch(now_us())
    }

    /// Microseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_us(&self) -> u64 {
        now_us().saturating_sub(self.0)
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Global on/off switch for **metric** recording (counters, gauges,
/// histograms). Defaults to on. Journal emission is deliberately not
/// gated: the journal backs the runtime's failure/reshard result
/// views, which must not change shape when metrics are muted.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable metric recording process-wide. Used by the bench
/// harness to measure instrumented vs uninstrumented throughput; the
/// answers of any run are bit-identical either way (telemetry is
/// observational by construction).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide metrics registry: what `qlove_cli --metrics`
/// snapshots and what the runtime layers record into by default.
pub fn global_metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn clock_is_monotonic_across_threads() {
        let t0 = now_us();
        let handles: Vec<_> = (0..4)
            .map(|_| thread::spawn(|| (0..1000).map(|_| now_us()).collect::<Vec<_>>()))
            .collect();
        for handle in handles {
            let samples = handle.join().unwrap();
            assert!(samples.windows(2).all(|w| w[0] <= w[1]));
            assert!(samples[0] >= t0);
        }
    }

    #[test]
    fn stopwatch_measures_on_the_shared_clock() {
        let sw = Stopwatch::start();
        thread::sleep(std::time::Duration::from_millis(2));
        let us = sw.elapsed_us();
        assert!(us >= 1_000, "slept 2ms but measured {us} µs");
    }

    #[test]
    fn enable_switch_round_trips() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
