//! Bounded structured event journal.
//!
//! One ring of timestamped [`RuntimeEvent`]s unifies the runtime's
//! failure, recovery, reshard, and pause records behind a single
//! type — the transport layers emit here instead of growing bespoke
//! per-run vectors, and the old result fields (`DistributedRun::
//! failures`, `ReshardRun::events`, …) are materialized as views over
//! the journal.
//!
//! Sequence numbers and timestamps are assigned under the same lock
//! that appends to the ring, so the journal's physical order, its
//! `seq` order, and its `at_us` order all agree — a property the
//! causal-order test below locks under concurrent emitters. The ring
//! is bounded: when full the *oldest* event is evicted and counted in
//! [`EventJournal::dropped`], so a pathological failure storm can
//! never balloon a run's memory while the newest evidence (the part
//! you debug from) is always retained.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default journal capacity; plenty for any real window (a full chaos
/// differential emits a few dozen events) while bounding a storm.
pub const JOURNAL_CAP: usize = 1024;

/// What happened, in the runtime's unified taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A worker domain (shard or session) was declared failed —
    /// detection record, emitted when the verdict lands.
    Failure {
        /// Shard index (distributed/reshard runs) or session index
        /// (multi-session runs).
        domain: usize,
        /// Sub-window boundary the domain had last completed.
        boundary: u64,
        /// True when the verdict was a stall (two silent heartbeat
        /// intervals), false for a hard failure (dead socket).
        stall: bool,
        /// Microseconds from last contact to the failure verdict.
        detect_us: u64,
    },
    /// A recovery attempt for a failed domain finished — terminal
    /// record carrying the full repair cost breakdown. Maps 1:1 onto
    /// the legacy `FailureEvent` view.
    Recovery {
        /// Shard or session index, as in [`EventKind::Failure`].
        domain: usize,
        /// Sub-window boundary restored from.
        boundary: u64,
        /// True when the originating verdict was a stall.
        stall: bool,
        /// Restart attempts consumed (including this one).
        restarts: u32,
        /// Microseconds from last contact to the failure verdict.
        detect_us: u64,
        /// Microseconds spent respawning + handshaking + restoring.
        restore_us: u64,
        /// Microseconds spent replaying the in-flight ring.
        replay_us: u64,
        /// Frames replayed from the bounded ring.
        replayed_frames: usize,
        /// False when the policy budget was exhausted and the run
        /// aborted instead of recovering.
        recovered: bool,
    },
    /// A live reshard (shard split or merge) was applied mid-window.
    Reshard {
        /// Sub-window boundary the swap executed at.
        boundary: u64,
        /// Routing epoch after the swap.
        epoch: u64,
        /// True for a split, false for a merge.
        split: bool,
        /// Slot acted on (split target, or left slot of a merge).
        slot: usize,
        /// Split pivot value (0 for merges).
        pivot: u64,
        /// Frames exchanged to execute the swap.
        swap_frames: usize,
        /// Checkpoint bytes moved during the swap.
        checkpoint_bytes: usize,
    },
    /// Ingest was paused (barrier) while a swap or repair ran.
    Pause {
        /// Sub-window boundary the pause happened at.
        boundary: u64,
        /// Microseconds ingest was held.
        pause_us: u64,
        /// Sub-windows affected by the hold.
        paused_subwindows: usize,
    },
}

/// One journal entry: a sequence number and monotonic timestamp
/// (microseconds on the [`crate::now_us`] clock) around an
/// [`EventKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeEvent {
    /// Journal-assigned sequence number; dense per journal, assigned
    /// in emission order.
    pub seq: u64,
    /// Emission time in microseconds on the shared monotonic clock.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<RuntimeEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, thread-safe journal of [`RuntimeEvent`]s.
#[derive(Debug)]
pub struct EventJournal {
    ring: Mutex<Ring>,
    cap: usize,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl EventJournal {
    /// A journal with the default capacity ([`JOURNAL_CAP`]).
    pub fn new() -> Self {
        Self::with_capacity(JOURNAL_CAP)
    }

    /// A journal bounded to `cap` events (≥ 1).
    pub fn with_capacity(cap: usize) -> Self {
        EventJournal {
            ring: Mutex::new(Ring::default()),
            cap: cap.max(1),
        }
    }

    /// Record an event now; returns its sequence number. Timestamp and
    /// sequence are assigned under the ring lock, so seq order, time
    /// order, and ring order always agree. If the ring is full the
    /// oldest event is evicted (see [`EventJournal::dropped`]).
    pub fn emit(&self, kind: EventKind) -> u64 {
        let mut ring = self.ring.lock().expect("event journal poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let at_us = crate::now_us();
        if ring.events.len() == self.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(RuntimeEvent { seq, at_us, kind });
        seq
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<RuntimeEvent> {
        let ring = self.ring.lock().expect("event journal poisoned");
        ring.events.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("event journal poisoned").dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .expect("event journal poisoned")
            .events
            .len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn pause(boundary: u64) -> EventKind {
        EventKind::Pause {
            boundary,
            pause_us: 0,
            paused_subwindows: 0,
        }
    }

    #[test]
    fn emits_in_order_with_dense_seqs() {
        let j = EventJournal::new();
        for b in 0..5 {
            j.emit(pause(b));
        }
        let events = j.events();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert!(matches!(e.kind, EventKind::Pause { boundary, .. } if boundary == i as u64));
        }
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn bounded_ring_evicts_oldest_and_counts_drops() {
        let j = EventJournal::with_capacity(4);
        for b in 0..10 {
            j.emit(pause(b));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        let seqs: Vec<u64> = j.events().iter().map(|e| e.seq).collect();
        // Newest evidence retained: the last four emissions.
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    /// The satellite contract: under concurrent emitters, journal
    /// order == seq order == timestamp order (one clock, one lock).
    #[test]
    fn journal_order_matches_causal_order_under_concurrent_emitters() {
        let per_thread = 200usize;
        let threads = 4usize;
        let j = Arc::new(EventJournal::with_capacity(threads * per_thread * 2));
        thread::scope(|scope| {
            for t in 0..threads {
                let j = Arc::clone(&j);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Each thread observes its own emissions get
                        // strictly increasing seqs (causal order per
                        // emitter is preserved globally).
                        let a = j.emit(pause(t as u64));
                        let b = j.emit(pause(i as u64));
                        assert!(b > a);
                    }
                });
            }
        });
        let events = j.events();
        assert_eq!(events.len(), threads * per_thread * 2);
        for pair in events.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "seq order broken");
            assert!(pair[1].at_us >= pair[0].at_us, "timestamp order broken");
        }
        assert_eq!(events[0].seq, 0);
    }
}
