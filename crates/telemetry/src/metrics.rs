//! Lock-free metrics: counters, gauges, and log-bucketed histograms
//! behind a name-keyed registry.
//!
//! Handles are `Arc`s over plain atomics: resolve them once (short
//! registry lock), then update from any thread with single atomic
//! RMWs — the dealer, collector, and merger threads all record into
//! the same registry without contending on anything but the cache
//! line of the metric they touch. Recording honors the global
//! [`crate::enabled`] switch; reading does not.
//!
//! Histograms are log₂-bucketed: bucket `i` (i ≥ 1) covers values in
//! `[2^(i-1), 2^i)`, bucket 0 holds exact zeros. 65 buckets span the
//! whole `u64` range, so an observation can never overflow the
//! layout, and quantile readout (p50/p99) resolves to a bucket upper
//! bound — a ≤2× overestimate by construction, which is the right
//! trade for latency telemetry that must never allocate on the hot
//! path. The exact maximum is tracked separately.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: one for zero plus one per bit of
/// `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Move the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` observations (typically
/// microseconds), with exact count/sum/max and bucket-resolution
/// quantiles.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for an observation: 0 for zero, else `64 - leading
/// zeros` (so bucket `i` covers `[2^(i-1), 2^i)`).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; bucket 0 is exact
/// zero, bucket 64 tops out at `u64::MAX`).
fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation. Four relaxed RMWs, no allocation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram state: non-empty buckets as `(inclusive upper
/// bound, count)` pairs in ascending bound order, plus exact
/// count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets: `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (0.0..=1.0), resolved to the upper
    /// bound of the bucket the rank lands in and clamped to the exact
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median readout ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Tail readout ([`HistogramSnapshot::quantile`] at 0.99).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// One registered metric, by kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A name-keyed registry of metrics. Registration (get-or-create)
/// takes a short mutex; the returned `Arc` handles update lock-free.
/// Re-registering a name returns the existing metric, so independent
/// call sites share one series; re-registering under a different
/// *kind* panics — that is a name collision bug, not a runtime
/// condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

/// Accept `base` or `base{k="v",k2="v2"}` where `base` is a Prometheus
/// identifier. Panics on anything else: metric names are compile-time
/// decisions and a bad one should fail loudly in tests, not corrupt
/// the exposition output.
fn validate_name(name: &str) {
    let (base, labels) = match name.split_once('{') {
        None => (name, None),
        Some((base, rest)) => (base, Some(rest)),
    };
    let base_ok = !base.is_empty()
        && base
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && base
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    let labels_ok = labels.is_none_or(|rest| {
        rest.ends_with('}')
            && rest[..rest.len() - 1].chars().all(|c| {
                c.is_ascii_alphanumeric() || matches!(c, '_' | '=' | '"' | ',' | '.' | '-' | ':')
            })
    });
    assert!(
        base_ok && labels_ok,
        "invalid metric name {name:?}: expected identifier or identifier{{k=\"v\"}}"
    );
}

/// Render `base{k="v",...}` for a labeled series.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::from(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        validate_name(name);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let entry = inner.entry(name.to_string()).or_insert_with(make);
        entry.clone()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::default()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Point-in-time snapshot of every registered metric, in name
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in inner.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// A frozen view of a registry: every series with its value at
/// snapshot time, renderable as Prometheus text or JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters, `(name, value)`, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// Gauges, `(name, value)`, name-ordered.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, `(name, snapshot)`, name-ordered.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Split `base{labels}` into `(base, Some("labels"))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// `base_suffix{labels,extra}` — splice a suffix onto the base name
/// and an extra label into the label set (the histogram `le` case).
fn series(name: &str, suffix: &str, extra: Option<&str>) -> String {
    let (base, labels) = split_labels(name);
    let mut out = format!("{base}{suffix}");
    match (labels, extra) {
        (None, None) => {}
        (labels, extra) => {
            out.push('{');
            if let Some(labels) = labels {
                out.push_str(labels);
                if extra.is_some() {
                    out.push(',');
                }
            }
            if let Some(extra) = extra {
                out.push_str(extra);
            }
            out.push('}');
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl MetricsSnapshot {
    /// Render as Prometheus text exposition format: one `# TYPE` line
    /// per base name, histograms expanded into cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        // Labeled series of the same base share one TYPE line; names
        // are sorted, so tracking the previous base suffices.
        let type_line = |out: &mut String, name: &str, kind: &str, last: &mut Option<String>| {
            let (base, _) = split_labels(name);
            if last.as_deref() != Some(base) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
                *last = Some(base.to_string());
            }
        };
        let mut last = None;
        for (name, value) in &self.counters {
            type_line(&mut out, name, "counter", &mut last);
            let _ = writeln!(out, "{name} {value}");
        }
        let mut last = None;
        for (name, value) in &self.gauges {
            type_line(&mut out, name, "gauge", &mut last);
            let _ = writeln!(out, "{name} {value}");
        }
        let mut last = None;
        for (name, h) in &self.histograms {
            type_line(&mut out, name, "histogram", &mut last);
            let mut cum = 0u64;
            for &(bound, n) in &h.buckets {
                cum += n;
                let le = format!("le=\"{bound}\"");
                let _ = writeln!(out, "{} {cum}", series(name, "_bucket", Some(&le)));
            }
            let _ = writeln!(
                out,
                "{} {}",
                series(name, "_bucket", Some("le=\"+Inf\"")),
                h.count
            );
            let _ = writeln!(out, "{} {}", series(name, "_sum", None), h.sum);
            let _ = writeln!(out, "{} {}", series(name, "_count", None), h.count);
        }
        out
    }

    /// Render as JSON: arrays of `{name, value}` objects for counters
    /// and gauges, and histogram objects carrying count/sum/max,
    /// p50/p99 readouts, and the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"value\": {value}}}{comma}",
                json_escape(name)
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"value\": {value}}}{comma}",
                json_escape(name)
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(bound, n)| format!("{{\"le\": {bound}, \"count\": {n}}}"))
                .collect();
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p99\": {}, \"buckets\": [{}]}}{comma}",
                json_escape(name),
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p99(),
                buckets.join(", ")
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_record() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("qlove_test_total");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = reg.gauge("qlove_test_gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        // Re-registration returns the same series.
        assert_eq!(reg.counter("qlove_test_total").get(), 42);
    }

    #[test]
    fn histogram_buckets_partition_the_u64_range() {
        // Every value maps to exactly one bucket whose bound contains it.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_bound(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_bound(i - 1), "{v} below its bucket floor");
            }
        }
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.max, 1000);
        // Log-bucket readout overestimates by at most 2x and is capped
        // at the exact max.
        let p50 = snap.p50();
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert_eq!(snap.p99(), 1000);
        assert_eq!(snap.quantile(1.0), 1000);
        assert_eq!(HistogramSnapshot::default_empty().quantile(0.5), 0);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                buckets: Vec::new(),
            }
        }
    }

    #[test]
    fn concurrent_hammering_loses_nothing() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("qlove_hammer_total");
        let h = reg.histogram("qlove_hammer_us");
        thread::scope(|scope| {
            for _ in 0..8 {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                scope.spawn(move || {
                    for v in 0..10_000u64 {
                        c.inc();
                        h.observe(v % 512);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 80_000);
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 80_000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn cross_kind_reregistration_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("qlove_kind_clash");
        reg.gauge("qlove_kind_clash");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        MetricsRegistry::new().counter("1starts-with-digit");
    }

    #[test]
    fn labeled_names_render_and_register() {
        let name = labeled("qlove_events_routed_total", &[("shard", "3")]);
        assert_eq!(name, "qlove_events_routed_total{shard=\"3\"}");
        let reg = MetricsRegistry::new();
        reg.counter(&name).add(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![(name, 5)]);
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("qlove_a_total{shard=\"0\"}").add(3);
        reg.counter("qlove_a_total{shard=\"1\"}").add(4);
        reg.gauge("qlove_depth").set(-2);
        let h = reg.histogram("qlove_lat_us");
        h.observe(3);
        h.observe(700);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE qlove_a_total counter\n"));
        // One TYPE line for the two labeled series of the same base.
        assert_eq!(text.matches("# TYPE qlove_a_total").count(), 1);
        assert!(text.contains("qlove_a_total{shard=\"0\"} 3\n"));
        assert!(text.contains("qlove_a_total{shard=\"1\"} 4\n"));
        assert!(text.contains("# TYPE qlove_depth gauge\nqlove_depth -2\n"));
        assert!(text.contains("qlove_lat_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("qlove_lat_us_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("qlove_lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("qlove_lat_us_sum 703\n"));
        assert!(text.contains("qlove_lat_us_count 2\n"));
    }

    #[test]
    fn histogram_series_splice_labels() {
        assert_eq!(
            series("x{shard=\"0\"}", "_bucket", Some("le=\"8\"")),
            "x_bucket{shard=\"0\",le=\"8\"}"
        );
        assert_eq!(series("x", "_sum", None), "x_sum");
    }
}
