//! Policy-agnostic measurement loops.

use qlove_rbtree::FreqTree;
use qlove_stats::{quantile_rank, relative_error_pct};
use qlove_stream::QuantilePolicy;
use std::collections::VecDeque;
use std::time::Instant;

/// Per-quantile accuracy accumulation.
#[derive(Debug, Clone)]
pub struct PhiAccuracy {
    /// The quantile fraction.
    pub phi: f64,
    /// Average relative value error in percent (§5.1's metric).
    pub avg_value_err_pct: f64,
    /// Average normalized rank error `e′` (§5.2's metric).
    pub avg_rank_err: f64,
    /// Worst single-evaluation relative value error in percent.
    pub max_value_err_pct: f64,
}

/// Output of [`measure_accuracy`].
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Per-quantile averages over all evaluations.
    pub per_phi: Vec<PhiAccuracy>,
    /// Number of query evaluations contributing to the averages.
    pub evaluations: usize,
    /// Peak observed space in variables across the run.
    pub peak_space: usize,
}

/// Drive `policy` over `data` and compare every emission against the
/// exact quantiles of the same `window`-element suffix.
///
/// The policy must be freshly constructed for `window`/`period`; the
/// harness trusts its evaluation schedule and only uses `window` to
/// slice the ground-truth view.
pub fn measure_accuracy(
    policy: &mut dyn QuantilePolicy,
    data: &[u64],
    window: usize,
) -> AccuracyReport {
    let phis = policy.phis().to_vec();
    let mut sum_val = vec![0.0f64; phis.len()];
    let mut sum_rank = vec![0.0f64; phis.len()];
    let mut max_val = vec![0.0f64; phis.len()];
    let mut evals = 0usize;
    let mut peak_space = 0usize;

    // Incremental ground truth: an exact frequency tree over the live
    // window (so sweeps with 1K periods do not re-sort 128K elements
    // thousands of times).
    let mut truth: FreqTree<u64> = FreqTree::new();
    let mut live: VecDeque<u64> = VecDeque::with_capacity(window + 1);

    for (i, &v) in data.iter().enumerate() {
        truth.insert(v, 1);
        live.push_back(v);
        if live.len() > window {
            let old = live.pop_front().expect("len > window");
            truth.remove(old, 1).expect("previously inserted");
        }
        // Sample space on a coarse schedule (and at evaluations) so the
        // peak captures mid-sub-window fill, not just post-reset lows.
        if i % 1009 == 0 {
            peak_space = peak_space.max(policy.space_variables());
        }
        if let Some(ans) = policy.push(v) {
            peak_space = peak_space.max(policy.space_variables());
            evals += 1;
            for (j, &phi) in phis.iter().enumerate() {
                let exact = truth.quantile(phi).expect("window non-empty");
                let val_err = relative_error_pct(ans[j] as f64, exact as f64);
                sum_val[j] += val_err;
                max_val[j] = max_val[j].max(val_err);
                // Rank error: distance from the target rank to the
                // nearest rank occupied by the returned value (duplicates
                // occupy a rank span; any rank inside it is error-free).
                let exact_r = quantile_rank(phi, window) as u64;
                let hi = truth.rank_of(ans[j]).max(1);
                let lo = (hi + 1).saturating_sub(truth.count_of(ans[j])).max(1);
                let dist = if exact_r < lo {
                    lo - exact_r
                } else {
                    exact_r.saturating_sub(hi)
                };
                sum_rank[j] += dist as f64 / window as f64;
            }
        }
    }

    let per_phi = phis
        .iter()
        .enumerate()
        .map(|(j, &phi)| PhiAccuracy {
            phi,
            avg_value_err_pct: if evals > 0 {
                sum_val[j] / evals as f64
            } else {
                f64::NAN
            },
            avg_rank_err: if evals > 0 {
                sum_rank[j] / evals as f64
            } else {
                f64::NAN
            },
            max_value_err_pct: max_val[j],
        })
        .collect();
    AccuracyReport {
        per_phi,
        evaluations: evals,
        peak_space,
    }
}

/// Single-thread throughput in million events per second: push the whole
/// dataset through the policy and divide. Results are only meaningful in
/// release builds (the harness binaries are expected to be run with
/// `--release`, as `cargo bench` does automatically).
pub fn measure_throughput(policy: &mut dyn QuantilePolicy, data: &[u64]) -> f64 {
    let start = Instant::now();
    let mut emitted = 0usize;
    for &v in data {
        if policy.push(v).is_some() {
            emitted += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    // Keep `emitted` observable so the whole loop cannot be optimized out.
    std::hint::black_box(emitted);
    data.len() as f64 / secs / 1e6
}

/// Single-thread throughput of the **batched** ingestion path: feed the
/// dataset in `batch`-element slices through
/// [`QuantilePolicy::push_batch`] and divide. Comparable head-to-head
/// with [`measure_throughput`] — same policy contract, same schedule,
/// identical answers — so the ratio isolates the batching win.
pub fn measure_throughput_batched(
    policy: &mut dyn QuantilePolicy,
    data: &[u64],
    batch: usize,
) -> f64 {
    assert!(batch > 0, "batch size must be positive");
    let start = Instant::now();
    let mut emitted = 0usize;
    for chunk in data.chunks(batch) {
        emitted += policy.push_batch(chunk).len();
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(emitted);
    data.len() as f64 / secs / 1e6
}

/// Throughput from a streaming generator (for window sizes whose
/// datasets would not fit in memory, as in Figure 5's 100M windows).
pub fn measure_throughput_streaming<I>(policy: &mut dyn QuantilePolicy, events: I) -> f64
where
    I: IntoIterator<Item = u64>,
{
    let start = Instant::now();
    let mut n = 0u64;
    for v in events {
        std::hint::black_box(policy.push(v));
        n += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    n as f64 / secs / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_sketches::ExactPolicy;

    #[test]
    fn exact_policy_reports_zero_error() {
        let data: Vec<u64> = (0..4000u64).map(|i| (i * 7919) % 1000).collect();
        let mut p = ExactPolicy::new(&[0.5, 0.99], 1000, 250);
        let report = measure_accuracy(&mut p, &data, 1000);
        assert!(report.evaluations > 5);
        for pa in &report.per_phi {
            assert_eq!(pa.avg_value_err_pct, 0.0, "phi {}", pa.phi);
            assert_eq!(pa.avg_rank_err, 0.0);
            assert_eq!(pa.max_value_err_pct, 0.0);
        }
        assert!(report.peak_space > 0);
    }

    #[test]
    fn throughput_is_positive_and_finite() {
        let data: Vec<u64> = (0..20_000u64).collect();
        let mut p = ExactPolicy::new(&[0.5], 1000, 1000);
        let t = measure_throughput(&mut p, &data);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn streaming_throughput_matches_slice_semantics() {
        let mut p1 = ExactPolicy::new(&[0.5], 500, 500);
        let t = measure_throughput_streaming(&mut p1, (0..10_000u64).map(|i| i % 97));
        assert!(t.is_finite() && t > 0.0);
    }
}
