//! The paper's standard experiment configurations.
//!
//! Every harness binary accepts `--scale <f>` to shrink/grow dataset
//! volume; the *query shapes* (window/period ratios, quantile sets, ε
//! values) are fixed to the paper's.

/// The four quantiles of `Qmonitor` (§5.1).
pub const QMONITOR_PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// Table 1: 16K period, 128K window, ε = 0.02, Moment K = 12.
pub const TABLE1_WINDOW: usize = 128_000;
/// Table 1's window period.
pub const TABLE1_PERIOD: usize = 16_000;
/// ε used by CMQS/AM/Random in Table 1.
pub const TABLE1_EPSILON: f64 = 0.02;
/// Moment-sketch order in Table 1.
pub const TABLE1_MOMENT_K: usize = 12;

/// Figure 4: 1K period, 100K window.
pub const FIG4_WINDOW: usize = 100_000;
/// Figure 4's window period.
pub const FIG4_PERIOD: usize = 1_000;

/// Table 2: window 128K, periods 64K → 1K.
pub const TABLE2_PERIODS: [usize; 7] = [64_000, 32_000, 16_000, 8_000, 4_000, 2_000, 1_000];

/// Table 3: top-k fractions swept at Q0.999.
pub const TABLE3_FRACTIONS: [f64; 2] = [0.1, 0.5];
/// Table 3's periods.
pub const TABLE3_PERIODS: [usize; 4] = [8_000, 4_000, 2_000, 1_000];

/// Table 4: sample-k fractions (0 = no sampling).
pub const TABLE4_FRACTIONS: [f64; 3] = [0.0, 0.1, 0.5];
/// Table 4's periods.
pub const TABLE4_PERIODS: [usize; 2] = [16_000, 4_000];

/// Table 5: AR(1) correlation coefficients reported.
pub const TABLE5_PSIS: [f64; 3] = [0.0, 0.2, 0.8];
/// Table 5's quantiles.
pub const TABLE5_PHIS: [f64; 3] = [0.5, 0.9, 0.99];

/// Default number of stream events for accuracy experiments (the paper
/// streams 10M-entry datasets; 2M keeps a laptop run under a minute per
/// table while giving 100+ evaluations at the Table 1 configuration).
pub const DEFAULT_EVENTS: usize = 2_000_000;

/// Parse `--scale <f>` / `--events <n>` style flags from `args`,
/// returning the scaled event count (and leaving interpretation of other
/// flags to the caller).
pub fn events_from_args(default_events: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut events = default_events;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--events" if i + 1 < args.len() => {
                events = args[i + 1].parse().unwrap_or(default_events);
                i += 1;
            }
            "--scale" if i + 1 < args.len() => {
                let f: f64 = args[i + 1].parse().unwrap_or(1.0);
                events = ((default_events as f64) * f) as usize;
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        assert_eq!(TABLE1_WINDOW / TABLE1_PERIOD, 8);
        assert_eq!(QMONITOR_PHIS.len(), 4);
    }

    #[test]
    fn default_events_cover_many_evaluations() {
        let evals = (DEFAULT_EVENTS - TABLE1_WINDOW) / TABLE1_PERIOD + 1;
        assert!(evals > 100);
    }
}
