//! Regenerate Figure 4: throughput of QLOVE vs CMQS vs Exact.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::fig4::run(events));
}
