//! Extended (beyond-paper) comparison: QLOVE vs DDSketch/KLL/CKMS.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::extended::run(events));
}
