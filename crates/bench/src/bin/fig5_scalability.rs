//! Regenerate Figure 5: throughput vs window size.
fn main() {
    let events = qlove_bench::configs::events_from_args(3_000_000);
    println!("{}", qlove_bench::experiments::fig5::run(events));
}
