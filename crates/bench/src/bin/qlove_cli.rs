//! `qlove_cli` — run a quantile monitor over values from stdin.
//!
//! Reads one non-negative integer per line (e.g. latency in µs) and
//! prints an evaluation line every window period:
//!
//! ```text
//! some_producer | qlove_cli --window 100000 --period 10000 \
//!                           --phis 0.5,0.99,0.999 --policy qlove
//! # or replay a generated trace:
//! qlove_cli --demo netmon --events 500000
//! # batched ingestion (same answers, much faster on high-rate input):
//! qlove_cli --demo netmon --events 5000000 --batch 4096
//! ```
//!
//! Policies: `qlove` (default), `exact`, `cmqs`, `am`, `random`,
//! `moment`, `ddsketch`, `kll`, `ckms`, `tdigest`.
//!
//! `--batch N` feeds input through the policy's batched ingestion path
//! (`QuantilePolicy::push_batch`) in N-element slices. Answers are
//! identical to per-element feeding; the printed event numbers are
//! derived from the window schedule (first evaluation at `window`
//! elements, then every `period`), which every bundled policy follows.
//! The trailing `space` column is sampled after the whole batch is
//! ingested (mid-sub-window fill), so it can differ from a `--batch 1`
//! run of the same input — compare the answer columns, not `space`.
//!
//! `--distributed N` (QLOVE only) answers **one logical window** from N
//! ingestion shards: values are dealt round-robin to shard accumulators,
//! sub-window summaries are merged by a coordinator, and the printed
//! answers are bit-identical to a single-instance run of the same
//! stream. The `space` column shows the coordinator's footprint after
//! the run.
//!
//! `--backend {tree,dense,auto}` (QLOVE only) pins the Level-1
//! frequency-store backend: the red-black tree, the flat direct-indexed
//! dense store (requires quantization, which the CLI's default config
//! has on), or automatic selection (default — dense under the paper's
//! 3-digit quantization). Answers are bit-identical either way; only
//! throughput and memory change.
//!
//! **Multi-process deployment** (QLOVE only; endpoints are
//! `tcp:HOST:PORT`, bare `HOST:PORT`, or `unix:/path.sock`):
//!
//! ```text
//! # terminal 1 and 2: one worker process each
//! qlove_cli --worker unix:/tmp/q1.sock
//! qlove_cli --worker unix:/tmp/q2.sock
//! # terminal 3: coordinate one logical window across both
//! qlove_cli --coordinate unix:/tmp/q1.sock,unix:/tmp/q2.sock \
//!           --demo netmon --events 500000
//! ```
//!
//! `--worker` is a multi-session server: it serves every session the
//! coordinator opens on the connection — each with its own config,
//! backend, and mode (shard or full-operator) — and exits with the
//! *connection*, not with any one session. `--coordinate`
//! deals the stream to the workers, pipelines summary merging against
//! their ingest, and prints answers bit-identical to a single-process
//! run. `--connect ADDR` instead streams the input to one remote
//! full-operator worker and prints the answers it sends back.
//!
//! `--connect ADDR --sessions N` exercises the multi-session side of
//! that server: the input is split into N contiguous slices and each
//! becomes an independent shard-mode session — N whole windows through
//! ONE worker process over one connection, answers per session
//! bit-identical to N separate runs. With supervision flags set, a
//! dead worker is respawned at the same endpoint and every unfinished
//! session is individually restored to its own acknowledged boundary.
//!
//! `--max-restarts N` and `--heartbeat-ms MS` enable worker
//! supervision in `--coordinate` mode: crashed or hung shards are
//! reconnected at the same endpoint (up to N times per shard, with
//! MS-millisecond heartbeat probes), restored from their boundary
//! checkpoint, and replayed from the coordinator's bounded replay
//! ring — answers stay bit-identical. In `--connect` mode the flags
//! only add hang *detection* (the remote operator owns the full
//! window state, so its crash is unrecoverable by design).
//!
//! **Live resharding** (QLOVE only): `--reshard-at B:split:SLOT:PIVOT`
//! or `--reshard-at B:merge:LEFT` (repeatable, ascending boundaries)
//! changes the shard set **mid-window** at sub-window boundary B,
//! with answers still bit-identical to a single-instance run:
//!
//! ```text
//! # three workers: two initial shards + one spare for the split
//! qlove_cli --coordinate unix:/tmp/q1.sock,unix:/tmp/q2.sock,unix:/tmp/q3.sock \
//!           --shards 2 --reshard-at 4:split:1:700000 --reshard-at 9:merge:0 \
//!           --demo netmon --events 500000
//! ```
//!
//! A split retires slot SLOT and opens two successors around value
//! PIVOT — the high half on the next spare endpoint from the
//! `--coordinate` list; a merge fuses slot LEFT with its range
//! neighbour and shuts the freed worker down. `--reshard-auto N`
//! instead derives the schedule from measured load (split a shard
//! whose sub-window load exceeds N, re-merge when it cools).
//! `--shards K` sets the initial fleet to the first K endpoints (with
//! `--reshard-at` it defaults to every endpoint not needed as a split
//! spare); `--span S` bounds the value key-range that is partitioned
//! (default 1000000 — routing never affects answers, only balance).
//! Both flags also work with the in-process `--distributed N`
//! executor, which reshards local accumulators instead of sockets.
//!
//! **Telemetry**: `--metrics PATH` dumps the process-wide metrics
//! registry when the run ends — Prometheus text exposition, or JSON
//! when PATH ends in `.json`. `--metrics-interval-ms MS` additionally
//! rewrites the file every MS milliseconds while the run is live, so
//! a node-exporter-style textfile collector can scrape mid-window.
//! Telemetry is observational only: answers are bit-identical with it
//! on, off, or dumped mid-run.

use qlove_core::{Backend, Qlove, QloveConfig, QloveShard};
use qlove_sketches::{
    AmPolicy, CkmsPolicy, CmqsPolicy, DdSketchPolicy, ExactPolicy, KllPolicy, MomentPolicy,
    RandomPolicy, TDigestPolicy,
};
use qlove_stream::run_distributed;
use qlove_stream::QuantilePolicy;
use std::io::{BufRead, Write};

struct Args {
    window: usize,
    period: usize,
    phis: Vec<f64>,
    policy: String,
    demo: Option<String>,
    events: usize,
    batch: usize,
    distributed: usize,
    backend: Backend,
    worker: Option<String>,
    coordinate: Vec<String>,
    connect: Option<String>,
    sessions: usize,
    max_restarts: u32,
    heartbeat_ms: u64,
    reshard_at: Vec<String>,
    reshard_auto: usize,
    shards: usize,
    span: u64,
    metrics: Option<String>,
    metrics_interval_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        window: 100_000,
        period: 10_000,
        phis: vec![0.5, 0.9, 0.99, 0.999],
        policy: "qlove".into(),
        demo: None,
        events: 1_000_000,
        batch: 1,
        distributed: 0,
        backend: Backend::Auto,
        worker: None,
        coordinate: Vec::new(),
        connect: None,
        sessions: 1,
        max_restarts: 0,
        heartbeat_ms: 0,
        reshard_at: Vec::new(),
        reshard_auto: 0,
        shards: 0,
        span: 1_000_000,
        metrics: None,
        metrics_interval_ms: 0,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--window" => args.window = need_value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--period" => args.period = need_value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--events" => args.events = need_value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--batch" => {
                args.batch = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
                if args.batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--distributed" => {
                args.distributed = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
                if args.distributed == 0 {
                    return Err("--distributed needs at least one shard".into());
                }
            }
            "--policy" => args.policy = need_value(i)?.to_string(),
            "--backend" => {
                args.backend = match need_value(i)? {
                    "auto" => Backend::Auto,
                    "tree" => Backend::Tree,
                    "dense" => Backend::Dense,
                    other => return Err(format!("unknown backend {other} (tree|dense|auto)")),
                };
            }
            "--sessions" => {
                args.sessions = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
                if args.sessions == 0 {
                    return Err("--sessions needs at least one session".into());
                }
            }
            "--max-restarts" => {
                args.max_restarts = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
            }
            "--heartbeat-ms" => {
                args.heartbeat_ms = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
            }
            "--reshard-at" => args.reshard_at.push(need_value(i)?.to_string()),
            "--reshard-auto" => {
                args.reshard_auto = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
                if args.reshard_auto == 0 {
                    return Err("--reshard-auto needs a positive load threshold".into());
                }
            }
            "--shards" => {
                args.shards = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
                if args.shards == 0 {
                    return Err("--shards needs at least one shard".into());
                }
            }
            "--span" => args.span = need_value(i)?.parse().map_err(|e| format!("{e}"))?,
            "--metrics" => args.metrics = Some(need_value(i)?.to_string()),
            "--metrics-interval-ms" => {
                args.metrics_interval_ms = need_value(i)?.parse().map_err(|e| format!("{e}"))?;
                if args.metrics_interval_ms == 0 {
                    return Err("--metrics-interval-ms must be positive".into());
                }
            }
            "--demo" => args.demo = Some(need_value(i)?.to_string()),
            "--worker" => args.worker = Some(need_value(i)?.to_string()),
            "--connect" => args.connect = Some(need_value(i)?.to_string()),
            "--coordinate" => {
                args.coordinate = need_value(i)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if args.coordinate.is_empty() {
                    return Err("--coordinate needs at least one worker endpoint".into());
                }
            }
            "--phis" => {
                args.phis = need_value(i)?
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: qlove_cli [--window N] [--period K] [--phis a,b,c] \
                     [--policy qlove|exact|cmqs|am|random|moment|ddsketch|kll|ckms|tdigest] \
                     [--demo netmon|search|normal|uniform|pareto --events N] [--batch N] \
                     [--distributed N] [--backend tree|dense|auto] \
                     [--worker ENDPOINT | --coordinate EP1,EP2,... | --connect ENDPOINT] \
                     [--sessions N] [--max-restarts N] [--heartbeat-ms MS] \
                     [--reshard-at B:split:SLOT:PIVOT | B:merge:LEFT]... \
                     [--reshard-auto LOAD] [--shards K] [--span S] \
                     [--metrics PATH] [--metrics-interval-ms MS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn make_policy(a: &Args) -> Result<Box<dyn QuantilePolicy>, String> {
    let (phis, w, p) = (&a.phis[..], a.window, a.period);
    if a.backend != Backend::Auto && a.policy != "qlove" {
        return Err("--backend only applies to the qlove policy".into());
    }
    Ok(match a.policy.as_str() {
        "qlove" => Box::new(Qlove::new(QloveConfig::new(phis, w, p).backend(a.backend))),
        "exact" => Box::new(ExactPolicy::new(phis, w, p)),
        "cmqs" => Box::new(CmqsPolicy::new(phis, w, p, 0.02)),
        "am" => Box::new(AmPolicy::new(phis, w, p, 0.02)),
        "random" => Box::new(RandomPolicy::from_epsilon(phis, w, p, 0.02)),
        "moment" => Box::new(MomentPolicy::new(phis, w, p, 12)),
        "ddsketch" => Box::new(DdSketchPolicy::new(phis, w, p, 0.01)),
        "kll" => Box::new(KllPolicy::new(phis, w, p, 200, 0xC11)),
        "ckms" => Box::new(CkmsPolicy::new(phis, w, p, 0.02)),
        "tdigest" => Box::new(TDigestPolicy::new(phis, w, p, 200.0)),
        other => return Err(format!("unknown policy {other}")),
    })
}

fn demo_values(name: &str, n: usize) -> Result<Vec<u64>, String> {
    Ok(match name {
        "netmon" => qlove_workloads::NetMonGen::generate(42, n),
        "search" => qlove_workloads::SearchGen::generate(42, n),
        "normal" => qlove_workloads::NormalGen::generate(42, n),
        "uniform" => qlove_workloads::UniformGen::generate(42, n),
        "pareto" => qlove_workloads::ParetoGen::generate(42, n),
        other => return Err(format!("unknown demo workload {other}")),
    })
}

/// Parse one stdin line: `Ok(None)` for blank/comment lines, the value
/// otherwise. `line_no` is 1-based, for error messages only. The single
/// source of truth for what qlove_cli accepts as input, shared by every
/// stdin mode.
fn parse_value(line: &str, line_no: usize) -> Result<Option<u64>, String> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') {
        return Ok(None);
    }
    t.parse()
        .map(Some)
        .map_err(|_| format!("line {line_no}: not a non-negative integer: {t}"))
}

fn read_stdin_values() -> Result<Vec<u64>, String> {
    let stdin = std::io::stdin();
    let mut values = Vec::new();
    for (i, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if let Some(v) = parse_value(&line, i + 1)? {
            values.push(v);
        }
    }
    Ok(values)
}

/// Print the standard answer table for a finished run.
fn print_answers(
    phis: &[f64],
    window: usize,
    period: usize,
    answers: &[qlove_core::QloveAnswer],
    space: usize,
) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let header: Vec<String> = phis.iter().map(|p| format!("Q{p}")).collect();
    writeln!(out, "# event\t{}\tspace", header.join("\t")).map_err(|e| e.to_string())?;
    for (k, ans) in answers.iter().enumerate() {
        let event = window + k * period;
        let cells: Vec<String> = ans.values.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "{event}\t{}\t{space}", cells.join("\t"));
    }
    Ok(())
}

/// `--worker ENDPOINT`: serve every session a coordinator multiplexes
/// over one connection, then exit with that connection.
fn run_worker_mode(args: &Args, spec: &str) -> Result<(), String> {
    if args.policy != "qlove" {
        return Err("--worker is only supported for the qlove policy".into());
    }
    let endpoint = qlove_transport::Endpoint::parse(spec).map_err(|e| e.to_string())?;
    let server = qlove_transport::WorkerServer::bind(&endpoint).map_err(|e| e.to_string())?;
    let actual = server.local_endpoint().map_err(|e| e.to_string())?;
    eprintln!("qlove_cli: worker listening on {actual}");
    let report = server.serve_one().map_err(|e| e.to_string())?;
    for s in &report.sessions {
        eprintln!(
            "qlove_cli: session {} done ({:?} mode, {} events in, {} responses out)",
            s.session, s.mode, s.events, s.responses
        );
    }
    eprintln!(
        "qlove_cli: connection done ({} sessions, {} events in, {} responses out)",
        report.sessions_served(),
        report.events(),
        report.responses()
    );
    Ok(())
}

/// Translate the `--max-restarts`/`--heartbeat-ms` flags into a
/// supervision policy. Both zero (the default) means disabled —
/// failures abort the run, exactly as before the flags existed.
fn recovery_policy(args: &Args) -> qlove_transport::RecoveryPolicy {
    if args.max_restarts == 0 && args.heartbeat_ms == 0 {
        return qlove_transport::RecoveryPolicy::disabled();
    }
    let mut policy = qlove_transport::RecoveryPolicy::supervised();
    policy.max_restarts = args.max_restarts;
    policy.heartbeat =
        (args.heartbeat_ms > 0).then(|| std::time::Duration::from_millis(args.heartbeat_ms));
    policy
}

/// Parse one `--reshard-at` spec: `B:split:SLOT:PIVOT` or
/// `B:merge:LEFT`.
fn parse_reshard_spec(raw: &str) -> Result<qlove_stream::parallel::ReshardSpec, String> {
    use qlove_stream::parallel::{ReshardPlan, ReshardSpec};
    let bad = || {
        format!("bad --reshard-at spec {raw:?}: expected BOUNDARY:split:SLOT:PIVOT or BOUNDARY:merge:LEFT")
    };
    let parts: Vec<&str> = raw.split(':').collect();
    let parse = |s: &str| s.parse::<u64>().map_err(|_| bad());
    match parts.as_slice() {
        [b, "split", slot, pivot] => Ok(ReshardSpec {
            boundary: parse(b)?,
            plan: ReshardPlan::Split {
                slot: parse(slot)? as usize,
                pivot: parse(pivot)?,
            },
        }),
        [b, "merge", left] => Ok(ReshardSpec {
            boundary: parse(b)?,
            plan: ReshardPlan::Merge {
                left: parse(left)? as usize,
            },
        }),
        _ => Err(bad()),
    }
}

/// Resolve the reshard schedule for `shards` initial shards: explicit
/// `--reshard-at` specs, or a load-derived plan under `--reshard-auto`.
fn reshard_schedule(
    args: &Args,
    values: &[u64],
    shards: usize,
) -> Result<Vec<qlove_stream::parallel::ReshardSpec>, String> {
    if args.reshard_auto > 0 {
        if !args.reshard_at.is_empty() {
            return Err("pick one of --reshard-at / --reshard-auto".into());
        }
        let specs = qlove_stream::parallel::plan_reshards(
            values,
            args.period,
            shards,
            args.span,
            args.reshard_auto,
            8,
        )?;
        eprintln!(
            "qlove_cli: --reshard-auto {} planned {} reshard(s)",
            args.reshard_auto,
            specs.len()
        );
        return Ok(specs);
    }
    args.reshard_at
        .iter()
        .map(|s| parse_reshard_spec(s))
        .collect()
}

fn count_splits(specs: &[qlove_stream::parallel::ReshardSpec]) -> usize {
    specs
        .iter()
        .filter(|s| matches!(s.plan, qlove_stream::parallel::ReshardPlan::Split { .. }))
        .count()
}

/// `--coordinate` with resharding: the first `shards` endpoints are the
/// initial fleet; each split consumes the next spare endpoint from the
/// list for its fresh worker. Recovery reconnects whichever endpoint
/// the failed connection index maps to.
fn run_coordinate_resharded(
    args: &Args,
    cfg: &QloveConfig,
    values: &[u64],
    endpoints: &[qlove_transport::Endpoint],
    conns: Vec<qlove_transport::Conn>,
) -> Result<(), String> {
    let shards = conns.len();
    let specs = reshard_schedule(args, values, shards)?;
    let needed = shards + count_splits(&specs);
    if endpoints.len() < needed {
        return Err(format!(
            "reshard schedule needs {needed} worker endpoints ({shards} initial + {} split \
             spare(s)), got {}",
            needed - shards,
            endpoints.len()
        ));
    }
    let mut coordinator = Qlove::new(cfg.clone());
    let connect = |conn: usize| {
        qlove_transport::Conn::connect_retry(&endpoints[conn], std::time::Duration::from_secs(5))
    };
    let run = qlove_transport::run_resharded(
        cfg,
        &mut coordinator,
        conns,
        values,
        args.span,
        &specs,
        &recovery_policy(args),
        connect,
    )
    .map_err(|e| e.to_string())?;
    for f in &run.failures {
        eprintln!(
            "qlove_cli: connection {} {:?} at boundary {} ({}): detect {} µs, restore {} µs, \
             replayed {} frames",
            f.shard,
            f.kind,
            f.boundary,
            if f.recovered { "recovered" } else { "gave up" },
            f.detect_us,
            f.restore_us,
            f.replayed_frames
        );
    }
    for e in &run.events {
        eprintln!(
            "qlove_cli: reshard at boundary {} (epoch {}): {:?} — paused {} µs \
             ({} sub-window gap), {} swap frames, {} checkpoint bytes",
            e.boundary,
            e.epoch,
            e.plan,
            e.pause_us,
            e.paused_subwindows,
            e.swap_frames,
            e.checkpoint_bytes
        );
    }
    eprintln!(
        "qlove_cli: merged {} boundaries across {} reshard(s) ({:.1} µs merge overlap/boundary)",
        run.stats.boundaries,
        run.events.len(),
        run.stats.overlap_us_per_boundary()
    );
    print_answers(
        &args.phis,
        args.window,
        args.period,
        &run.answers,
        coordinator.space_variables(),
    )
}

/// `--coordinate EP1,EP2,...`: one logical window over worker
/// processes, dealt over sockets, merged with the pipelined
/// coordinator; answers are bit-identical to a single-process run.
/// With `--max-restarts`/`--heartbeat-ms`, failed workers are
/// reconnected at the same endpoint and replayed from the last
/// acknowledged boundary.
fn run_coordinate_mode(args: &Args) -> Result<(), String> {
    if args.policy != "qlove" {
        return Err("--coordinate is only supported for the qlove policy".into());
    }
    if args.batch > 1 {
        return Err("--coordinate batches internally; drop --batch".into());
    }
    let values = match &args.demo {
        Some(name) => demo_values(name, args.events)?,
        None => read_stdin_values()?,
    };
    let cfg = QloveConfig::new(&args.phis, args.window, args.period).backend(args.backend);
    let mut endpoints = Vec::with_capacity(args.coordinate.len());
    for spec in &args.coordinate {
        endpoints.push(qlove_transport::Endpoint::parse(spec).map_err(|e| e.to_string())?);
    }
    // With resharding, only the initial fleet connects now; the spare
    // endpoints are consumed lazily when a split brings a worker up.
    let resharding = !args.reshard_at.is_empty() || args.reshard_auto > 0;
    let fleet = if !resharding {
        endpoints.len()
    } else if args.shards > 0 {
        args.shards
    } else if args.reshard_auto > 0 {
        return Err(
            "--reshard-auto with --coordinate needs --shards K (initial fleet size; the \
             remaining endpoints are spares for splits)"
                .into(),
        );
    } else {
        let specs: Vec<_> = args
            .reshard_at
            .iter()
            .map(|s| parse_reshard_spec(s))
            .collect::<Result<_, _>>()?;
        match endpoints.len().checked_sub(count_splits(&specs)) {
            Some(fleet) if fleet > 0 => fleet,
            _ => {
                return Err(format!(
                    "the reshard schedule has {} split(s) but --coordinate lists only {} \
                     endpoint(s); each split needs a spare endpoint beyond the initial fleet",
                    count_splits(&specs),
                    endpoints.len()
                ))
            }
        }
    };
    if fleet > endpoints.len() {
        return Err(format!(
            "--shards {fleet} exceeds the {} endpoints in --coordinate",
            endpoints.len()
        ));
    }
    let mut conns = Vec::with_capacity(fleet);
    for endpoint in &endpoints[..fleet] {
        conns.push(
            qlove_transport::Conn::connect_retry(endpoint, std::time::Duration::from_secs(10))
                .map_err(|e| e.to_string())?,
        );
    }
    if resharding {
        return run_coordinate_resharded(args, &cfg, &values, &endpoints, conns);
    }
    let mut coordinator = Qlove::new(cfg.clone());
    // Recovery reconnects to the same endpoint: a worker restarted by
    // an external supervisor (systemd, a shell loop) re-binds it and
    // the coordinator replays the unacknowledged tail.
    let respawn = |shard: usize| {
        qlove_transport::Conn::connect_retry(&endpoints[shard], std::time::Duration::from_secs(5))
    };
    let run = qlove_transport::run_supervised(
        &cfg,
        &mut coordinator,
        conns,
        &values,
        &recovery_policy(args),
        respawn,
    )
    .map_err(|e| e.to_string())?;
    for f in &run.failures {
        eprintln!(
            "qlove_cli: shard {} {:?} at boundary {} ({}): detect {} µs, restore {} µs, \
             replay {} µs over {} frames",
            f.shard,
            f.kind,
            f.boundary,
            if f.recovered { "recovered" } else { "gave up" },
            f.detect_us,
            f.restore_us,
            f.replay_us,
            f.replayed_frames
        );
    }
    eprintln!(
        "qlove_cli: merged {} boundaries from {} workers ({:.1} µs merge overlap/boundary, {:.0}% \
         of merge hidden behind ingest)",
        run.stats.boundaries,
        args.coordinate.len(),
        run.stats.overlap_us_per_boundary(),
        run.stats.merge_hidden_fraction() * 100.0
    );
    print_answers(
        &args.phis,
        args.window,
        args.period,
        &run.answers,
        coordinator.space_variables(),
    )
}

/// `--connect ENDPOINT`: stream the input to one remote full-operator
/// worker and print the answers it sends back. With `--sessions N`,
/// split the input into N independent shard-mode sessions instead and
/// multiplex all of them over the one connection.
fn run_connect_mode(args: &Args, spec: &str) -> Result<(), String> {
    if args.policy != "qlove" {
        return Err("--connect is only supported for the qlove policy".into());
    }
    if args.batch > 1 {
        return Err("--connect batches internally; drop --batch".into());
    }
    let values = match &args.demo {
        Some(name) => demo_values(name, args.events)?,
        None => read_stdin_values()?,
    };
    let cfg = QloveConfig::new(&args.phis, args.window, args.period).backend(args.backend);
    let endpoint = qlove_transport::Endpoint::parse(spec).map_err(|e| e.to_string())?;
    let conn = qlove_transport::Conn::connect_retry(&endpoint, std::time::Duration::from_secs(10))
        .map_err(|e| e.to_string())?;
    if args.sessions > 1 {
        return run_sessions_mode(args, &cfg, endpoint, conn, values);
    }
    // The remote operator holds the full window state, so a crash is
    // unrecoverable; the policy only adds heartbeat-based detection of
    // hung workers instead of blocking forever.
    let answers = qlove_transport::run_remote_operator_with_policy(
        &cfg,
        conn,
        &values,
        &recovery_policy(args),
    )
    .map_err(|e| e.to_string())?;
    // The operator state lives in the worker; no local footprint.
    print_answers(&args.phis, args.window, args.period, &answers, 0)
}

/// `--connect --sessions N`: N independent whole windows through one
/// worker process — the input split into N contiguous slices, each its
/// own shard-mode session on the shared connection. With supervision
/// enabled, a dead worker is reconnected at the same endpoint and each
/// unfinished session is restored to its own acknowledged boundary.
fn run_sessions_mode(
    args: &Args,
    cfg: &QloveConfig,
    endpoint: qlove_transport::Endpoint,
    conn: qlove_transport::Conn,
    values: Vec<u64>,
) -> Result<(), String> {
    let n = args.sessions;
    let slice = values.len() / n;
    if slice == 0 {
        return Err(format!("--sessions {n} needs at least {n} input values"));
    }
    let specs: Vec<qlove_transport::SessionSpec> = (0..n)
        .map(|s| qlove_transport::SessionSpec {
            config: cfg.clone(),
            mode: qlove_transport::WorkerMode::Shard,
            values: values[s * slice..(s + 1) * slice].to_vec(),
        })
        .collect();
    let policy = recovery_policy(args);
    let outcomes = if policy.enabled() {
        let respawn =
            || qlove_transport::Conn::connect_retry(&endpoint, std::time::Duration::from_secs(5));
        let run = qlove_transport::run_sessions_supervised(conn, &specs, &policy, respawn)
            .map_err(|e| e.to_string())?;
        for f in &run.failures {
            eprintln!(
                "qlove_cli: session {} {:?} at boundary {} ({}): detect {} µs, restore {} µs, \
                 replay {} µs over {} frames",
                f.shard,
                f.kind,
                f.boundary,
                if f.recovered { "recovered" } else { "gave up" },
                f.detect_us,
                f.restore_us,
                f.replay_us,
                f.replayed_frames
            );
        }
        run.outcomes
    } else {
        qlove_transport::run_sessions(conn, &specs).map_err(|e| e.to_string())?
    };
    for (s, outcome) in outcomes.iter().enumerate() {
        println!("# session {s} ({} boundaries merged)", outcome.boundaries);
        // The merge state lived only for the run; no footprint to report.
        print_answers(&args.phis, args.window, args.period, &outcome.answers, 0)?;
    }
    Ok(())
}

/// One logical window over N ingestion shards: deal, merge, print.
fn run_distributed_mode(args: &Args) -> Result<(), String> {
    if args.policy != "qlove" {
        return Err("--distributed is only supported for the qlove policy".into());
    }
    if args.batch > 1 {
        return Err("--distributed batches internally; drop --batch".into());
    }
    let values = match &args.demo {
        Some(name) => demo_values(name, args.events)?,
        None => read_stdin_values()?,
    };
    let cfg = QloveConfig::new(&args.phis, args.window, args.period).backend(args.backend);
    let mut coordinator = Qlove::new(cfg.clone());
    if !args.reshard_at.is_empty() || args.reshard_auto > 0 {
        let specs = reshard_schedule(args, &values, args.distributed)?;
        let answers = qlove_stream::parallel::run_resharded(
            || QloveShard::new(&cfg),
            &mut coordinator,
            cfg.period,
            &values,
            args.distributed,
            args.span,
            &specs,
        )?;
        eprintln!(
            "qlove_cli: in-process resharded run applied {} reshard(s)",
            specs.len()
        );
        return print_answers(
            &args.phis,
            args.window,
            args.period,
            &answers,
            coordinator.space_variables(),
        );
    }
    let answers = run_distributed(
        || QloveShard::new(&cfg),
        &mut coordinator,
        cfg.period,
        &values,
        args.distributed,
    );
    print_answers(
        &args.phis,
        args.window,
        args.period,
        &answers,
        coordinator.space_variables(),
    )
}

/// Write the process-wide metrics snapshot to `path` — JSON when the
/// path ends in `.json`, Prometheus text exposition otherwise. The
/// whole file is rewritten atomically from the scraper's point of
/// view (single `write` call), so a concurrent reader never sees a
/// half-updated dump.
fn dump_metrics(path: &str) -> Result<(), String> {
    let snapshot = qlove_telemetry::global_metrics().snapshot();
    let body = if path.ends_with(".json") {
        snapshot.to_json()
    } else {
        snapshot.to_prometheus_text()
    };
    std::fs::write(path, body).map_err(|e| format!("--metrics {path}: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let socket_modes = usize::from(args.worker.is_some())
        + usize::from(!args.coordinate.is_empty())
        + usize::from(args.connect.is_some());
    if socket_modes > 1 || (socket_modes == 1 && args.distributed > 0) {
        return Err("pick one of --worker, --coordinate, --connect, --distributed".into());
    }
    if (args.max_restarts > 0 || args.heartbeat_ms > 0)
        && args.coordinate.is_empty()
        && args.connect.is_none()
    {
        return Err("--max-restarts/--heartbeat-ms only apply to --coordinate or --connect".into());
    }
    if args.sessions > 1 && args.connect.is_none() {
        return Err("--sessions only applies to --connect".into());
    }
    if (!args.reshard_at.is_empty() || args.reshard_auto > 0)
        && args.coordinate.is_empty()
        && args.distributed == 0
    {
        return Err("--reshard-at/--reshard-auto apply to --coordinate or --distributed".into());
    }
    if args.shards > 0 && args.coordinate.is_empty() {
        return Err("--shards only applies to --coordinate with resharding".into());
    }
    if args.metrics_interval_ms > 0 && args.metrics.is_none() {
        return Err("--metrics-interval-ms needs --metrics PATH".into());
    }
    if let Some(path) = args
        .metrics
        .clone()
        .filter(|_| args.metrics_interval_ms > 0)
    {
        let every = std::time::Duration::from_millis(args.metrics_interval_ms);
        // Detached on purpose: the dumper dies with the process, and
        // each tick rewrites the whole file so the final dump below
        // can only ever be overwritten by a complete snapshot.
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            if let Err(e) = dump_metrics(&path) {
                eprintln!("qlove_cli: {e}");
            }
        });
    }
    let result = dispatch(&args);
    if let Some(path) = &args.metrics {
        // Dump even when the run failed: partial counters are exactly
        // what a post-mortem wants to look at.
        dump_metrics(path)?;
    }
    result
}

fn dispatch(args: &Args) -> Result<(), String> {
    if let Some(spec) = &args.worker {
        return run_worker_mode(args, spec);
    }
    if !args.coordinate.is_empty() {
        return run_coordinate_mode(args);
    }
    if let Some(spec) = &args.connect {
        return run_connect_mode(args, spec);
    }
    if args.distributed > 0 {
        return run_distributed_mode(args);
    }
    let mut policy = make_policy(args)?;

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let header: Vec<String> = args.phis.iter().map(|p| format!("Q{p}")).collect();
    writeln!(out, "# event\t{}\tspace", header.join("\t")).map_err(|e| e.to_string())?;

    // Evaluation counter for batched mode: every bundled policy follows
    // the window schedule (first answer at `window` elements, then one
    // per `period`), so answer k lands on event `window + k·period`.
    let mut evals = 0usize;
    let print_answer = |out: &mut dyn Write, event: usize, ans: &[u64], space: usize| {
        let cells: Vec<String> = ans.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "{event}\t{}\t{space}", cells.join("\t"));
    };
    let feed = |i: usize, v: u64, policy: &mut Box<dyn QuantilePolicy>, out: &mut dyn Write| {
        if let Some(ans) = policy.push(v) {
            print_answer(out, i + 1, &ans, policy.space_variables());
        }
    };
    let mut feed_batch =
        |chunk: &[u64], policy: &mut Box<dyn QuantilePolicy>, out: &mut dyn Write| {
            for ans in policy.push_batch(chunk) {
                let event = args.window + evals * args.period;
                evals += 1;
                print_answer(out, event, &ans, policy.space_variables());
            }
        };

    match &args.demo {
        Some(name) => {
            let values = demo_values(name, args.events)?;
            if args.batch > 1 {
                for chunk in values.chunks(args.batch) {
                    feed_batch(chunk, &mut policy, &mut out);
                }
            } else {
                for (i, v) in values.into_iter().enumerate() {
                    feed(i, v, &mut policy, &mut out);
                }
            }
        }
        None => {
            let stdin = std::io::stdin();
            let mut buf: Vec<u64> = Vec::with_capacity(args.batch);
            // Event numbers count fed *values*, not input lines, so
            // skipped comment/blank lines leave the schedule (and the
            // agreement with batch mode's window-derived numbering)
            // intact.
            let mut fed = 0usize;
            for (i, line) in stdin.lock().lines().enumerate() {
                let line = line.map_err(|e| e.to_string())?;
                let Some(v) = parse_value(&line, i + 1)? else {
                    continue;
                };
                if args.batch > 1 {
                    buf.push(v);
                    if buf.len() == args.batch {
                        feed_batch(&buf, &mut policy, &mut out);
                        buf.clear();
                    }
                } else {
                    feed(fed, v, &mut policy, &mut out);
                    fed += 1;
                }
            }
            if !buf.is_empty() {
                feed_batch(&buf, &mut policy, &mut out);
            }
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("qlove_cli: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_reshard_spec;
    use qlove_stream::parallel::ReshardPlan;

    #[test]
    fn reshard_specs_parse_and_reject() {
        let split = parse_reshard_spec("4:split:1:700000").unwrap();
        assert_eq!(split.boundary, 4);
        assert_eq!(
            split.plan,
            ReshardPlan::Split {
                slot: 1,
                pivot: 700_000
            }
        );
        let merge = parse_reshard_spec("9:merge:0").unwrap();
        assert_eq!(merge.boundary, 9);
        assert_eq!(merge.plan, ReshardPlan::Merge { left: 0 });
        for bad in [
            "",
            "4",
            "4:split:1",
            "4:merge",
            "4:merge:0:1",
            "x:merge:0",
            "4:split:a:b",
            "4:grow:1:2",
        ] {
            assert!(parse_reshard_spec(bad).is_err(), "{bad:?}");
        }
    }
}
