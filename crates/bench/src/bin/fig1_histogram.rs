//! Regenerate Figure 1: the NetMon latency histogram.
fn main() {
    let events = qlove_bench::configs::events_from_args(100_000);
    println!("{}", qlove_bench::experiments::fig1::run(events));
}
