//! Empirical coverage check of the Theorem-1 error bound.
fn main() {
    let events = qlove_bench::configs::events_from_args(500_000);
    println!("{}", qlove_bench::experiments::theorem1::run(events));
}
