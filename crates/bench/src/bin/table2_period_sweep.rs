//! Regenerate Table 2: QLOVE error without few-k vs period size.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::table2::run(events));
}
