//! Regenerate the §5.4 Pareto skewness study.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::pareto_skew::run(events));
}
