//! Regenerate Table 1: accuracy and space of the five policies.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::table1::run(events));
}
