//! Regenerate Table 4: sample-k merging under injected bursts.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::table4::run(events));
}
