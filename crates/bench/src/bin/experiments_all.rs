//! Run every experiment at a (scalable) default volume and print the
//! full paper-vs-measured report. `--scale 5` for a fuller run,
//! `--events N` for exact control.
fn main() {
    let events = qlove_bench::configs::events_from_args(1_000_000);
    println!("QLOVE reproduction — full experiment suite ({events} events per experiment)");
    print!("{}", qlove_bench::experiments::fig1::run(100_000));
    print!("{}", qlove_bench::experiments::table1::run(events));
    print!("{}", qlove_bench::experiments::table2::run(events));
    print!("{}", qlove_bench::experiments::table3::run(events));
    print!("{}", qlove_bench::experiments::table4::run(events));
    print!("{}", qlove_bench::experiments::table5::run(events));
    print!("{}", qlove_bench::experiments::fig4::run(events));
    print!(
        "{}",
        qlove_bench::experiments::fig5::run(events.max(2_000_000))
    );
    print!("{}", qlove_bench::experiments::pareto_skew::run(events));
    print!(
        "{}",
        qlove_bench::experiments::redundancy::run(events.min(1_000_000))
    );
    print!("{}", qlove_bench::experiments::fewk_throughput::run(events));
    print!(
        "{}",
        qlove_bench::experiments::theorem1::run(events.min(600_000))
    );
    print!("{}", qlove_bench::experiments::extended::run(events));
}
