//! Regenerate Table 5: QLOVE on AR(1) non-i.i.d. data.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::table5::run(events));
}
