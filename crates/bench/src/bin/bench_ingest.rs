//! `bench_ingest` — record batched-vs-per-element ingestion throughput
//! per Level-1 store backend as `BENCH_ingest.json`, so the perf
//! trajectory is tracked across PRs.
//!
//! ```text
//! bench_ingest [--events N] [--out PATH] [--smoke]
//! ```
//!
//! Measures single-thread elements/second for `push` and for
//! `push_batch` at batch sizes 64/1024/4096 over the quantized Normal
//! and Pareto streams (paper-default QLOVE configuration, 100K/10K
//! window), for **both** backends — the red-black tree and the flat
//! dense store the quantized domain enables. Records two headline
//! ratios on the Normal stream: `push_batch(4096) / push` within the
//! dense backend, and dense over tree at `push_batch(4096)` (the
//! backend win the freqstore refactor is accountable for).
//!
//! `--smoke` shrinks the run for CI while keeping every row present in
//! the artifact.

use qlove_bench::{measure_throughput, measure_throughput_batched};
use qlove_core::{Backend, Qlove, QloveConfig};
use qlove_workloads::{NormalGen, ParetoGen};
use std::fmt::Write as _;

const WINDOW: usize = 100_000;
const PERIOD: usize = 10_000;
const PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];
const BATCH_SIZES: [usize; 3] = [64, 1024, 4096];
const BACKENDS: [(Backend, &str); 2] = [(Backend::Tree, "tree"), (Backend::Dense, "dense")];

struct Row {
    dataset: &'static str,
    backend: &'static str,
    mode: &'static str,
    batch: usize,
    melems_per_sec: f64,
}

fn parse_args() -> Result<(usize, String), String> {
    let mut events = 2_000_000usize;
    let mut out = "BENCH_ingest.json".to_string();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        if matches!(argv[i].as_str(), "--help" | "-h") {
            println!("usage: bench_ingest [--events N] [--out PATH] [--smoke]");
            std::process::exit(0);
        }
        if argv[i] == "--smoke" {
            events = 300_000;
            i += 1;
            continue;
        }
        if !matches!(argv[i].as_str(), "--events" | "--out") {
            return Err(format!("unknown flag {}", argv[i]));
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--events" => events = value.parse().map_err(|e| format!("{e}"))?,
            _ => out = value.clone(),
        }
        i += 2;
    }
    if events < WINDOW + PERIOD {
        return Err(format!("need at least {} events", WINDOW + PERIOD));
    }
    Ok((events, out))
}

fn measure(dataset: &'static str, data: &[u64], rows: &mut Vec<Row>) {
    for (backend, backend_name) in BACKENDS {
        let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(backend);
        let mut per_element = Qlove::new(cfg.clone());
        let rate = measure_throughput(&mut per_element, data);
        eprintln!("{dataset:>7} {backend_name:>5} push              {rate:8.2} Melem/s");
        rows.push(Row {
            dataset,
            backend: backend_name,
            mode: "push",
            batch: 1,
            melems_per_sec: rate,
        });
        for &batch in &BATCH_SIZES {
            let mut op = Qlove::new(cfg.clone());
            let rate = measure_throughput_batched(&mut op, data, batch);
            eprintln!("{dataset:>7} {backend_name:>5} push_batch({batch:>4}) {rate:8.2} Melem/s");
            rows.push(Row {
                dataset,
                backend: backend_name,
                mode: "push_batch",
                batch,
                melems_per_sec: rate,
            });
        }
    }
}

fn rate_of(rows: &[Row], dataset: &str, backend: &str, mode: &str, batch: usize) -> f64 {
    rows.iter()
        .find(|r| {
            r.dataset == dataset && r.backend == backend && r.mode == mode && r.batch == batch
        })
        .map(|r| r.melems_per_sec)
        .unwrap_or(f64::NAN)
}

fn main() {
    let (events, out_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_ingest: {e}");
            std::process::exit(1);
        }
    };

    let mut rows = Vec::new();
    measure("normal", &NormalGen::generate(7, events), &mut rows);
    measure("pareto", &ParetoGen::generate(7, events), &mut rows);

    let batch_speedup = rate_of(&rows, "normal", "dense", "push_batch", 4096)
        / rate_of(&rows, "normal", "dense", "push", 1);
    let backend_speedup = rate_of(&rows, "normal", "dense", "push_batch", 4096)
        / rate_of(&rows, "normal", "tree", "push_batch", 4096);
    eprintln!("normal dense push_batch(4096) / push speedup:       {batch_speedup:.2}x");
    eprintln!("normal push_batch(4096) dense / tree speedup:       {backend_speedup:.2}x");

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"ingest\",");
    let _ = writeln!(json, "  \"window\": {WINDOW},");
    let _ = writeln!(json, "  \"period\": {PERIOD},");
    let _ = writeln!(json, "  \"events\": {events},");
    let _ = writeln!(
        json,
        "  \"phis\": [{}],",
        PHIS.map(|p| p.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"backend\": \"{}\", \"mode\": \"{}\", \"batch\": {}, \
             \"melems_per_sec\": {:.3}}}{comma}",
            r.dataset, r.backend, r.mode, r.batch, r.melems_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"speedup_normal_push_batch_4096_vs_push\": {batch_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_normal_dense_vs_tree_push_batch_4096\": {backend_speedup:.3}"
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("bench_ingest: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
