//! `bench_ingest` — record batched-vs-per-element ingestion throughput
//! as `BENCH_ingest.json`, so the perf trajectory is tracked across PRs.
//!
//! ```text
//! bench_ingest [--events N] [--out PATH]
//! ```
//!
//! Measures single-thread elements/second for `push` and for
//! `push_batch` at batch sizes 64/1024/4096 over the quantized Normal
//! and Pareto streams (paper-default QLOVE configuration, 100K/10K
//! window), and records the headline ratio
//! `push_batch(4096) / push` on the Normal stream.

use qlove_bench::{measure_throughput, measure_throughput_batched};
use qlove_core::{Qlove, QloveConfig};
use qlove_workloads::{NormalGen, ParetoGen};
use std::fmt::Write as _;

const WINDOW: usize = 100_000;
const PERIOD: usize = 10_000;
const PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];
const BATCH_SIZES: [usize; 3] = [64, 1024, 4096];

struct Row {
    dataset: &'static str,
    mode: &'static str,
    batch: usize,
    melems_per_sec: f64,
}

fn parse_args() -> Result<(usize, String), String> {
    let mut events = 2_000_000usize;
    let mut out = "BENCH_ingest.json".to_string();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        if matches!(argv[i].as_str(), "--help" | "-h") {
            println!("usage: bench_ingest [--events N] [--out PATH]");
            std::process::exit(0);
        }
        if !matches!(argv[i].as_str(), "--events" | "--out") {
            return Err(format!("unknown flag {}", argv[i]));
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--events" => events = value.parse().map_err(|e| format!("{e}"))?,
            _ => out = value.clone(),
        }
        i += 2;
    }
    Ok((events, out))
}

fn measure(dataset: &'static str, data: &[u64], rows: &mut Vec<Row>) {
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD);
    let mut per_element = Qlove::new(cfg.clone());
    let rate = measure_throughput(&mut per_element, data);
    eprintln!("{dataset:>7} push              {rate:8.2} Melem/s");
    rows.push(Row {
        dataset,
        mode: "push",
        batch: 1,
        melems_per_sec: rate,
    });
    for &batch in &BATCH_SIZES {
        let mut op = Qlove::new(cfg.clone());
        let rate = measure_throughput_batched(&mut op, data, batch);
        eprintln!("{dataset:>7} push_batch({batch:>4}) {rate:8.2} Melem/s");
        rows.push(Row {
            dataset,
            mode: "push_batch",
            batch,
            melems_per_sec: rate,
        });
    }
}

fn rate_of(rows: &[Row], dataset: &str, mode: &str, batch: usize) -> f64 {
    rows.iter()
        .find(|r| r.dataset == dataset && r.mode == mode && r.batch == batch)
        .map(|r| r.melems_per_sec)
        .unwrap_or(f64::NAN)
}

fn main() {
    let (events, out_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_ingest: {e}");
            std::process::exit(1);
        }
    };

    let mut rows = Vec::new();
    measure("normal", &NormalGen::generate(7, events), &mut rows);
    measure("pareto", &ParetoGen::generate(7, events), &mut rows);

    let speedup =
        rate_of(&rows, "normal", "push_batch", 4096) / rate_of(&rows, "normal", "push", 1);
    eprintln!("normal push_batch(4096) / push speedup: {speedup:.2}x");

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"ingest\",");
    let _ = writeln!(json, "  \"window\": {WINDOW},");
    let _ = writeln!(json, "  \"period\": {PERIOD},");
    let _ = writeln!(json, "  \"events\": {events},");
    let _ = writeln!(
        json,
        "  \"phis\": [{}],",
        PHIS.map(|p| p.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"batch\": {}, \"melems_per_sec\": {:.3}}}{comma}",
            r.dataset, r.mode, r.batch, r.melems_per_sec
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"speedup_normal_push_batch_4096_vs_push\": {speedup:.3}"
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("bench_ingest: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
