//! Regenerate the §5.3 few-k throughput study.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::fewk_throughput::run(events));
}
