//! Regenerate the §5.4 data-redundancy throughput study.
fn main() {
    let events = qlove_bench::configs::events_from_args(1_000_000);
    println!("{}", qlove_bench::experiments::redundancy::run(events));
}
