//! `bench_gate` — fail CI on perf regressions between a committed
//! `BENCH_*.json` baseline and a freshly measured artifact.
//!
//! ```text
//! bench_gate --baseline PATH --fresh PATH [--tolerance 0.25]
//! ```
//!
//! Exit status: `0` when every metric present in both artifacts is
//! within the tolerance band (throughput may not drop, costs may not
//! rise, by more than the tolerance — improvements always pass), `1`
//! on any regression, `2` on usage/parse errors. The comparison logic
//! lives in `qlove_bench::gate` (unit-tested, including the
//! degraded-artifact failure cases); this binary is only argument
//! parsing and reporting.

use qlove_bench::gate::{compare, extract_metrics, parse_json};

struct Args {
    baseline: String,
    fresh: String,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut tolerance = 0.25f64;
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("usage: bench_gate --baseline PATH --fresh PATH [--tolerance 0.25]");
                std::process::exit(0);
            }
            flag @ ("--baseline" | "--fresh" | "--tolerance") => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--baseline" => baseline = Some(value.clone()),
                    "--fresh" => fresh = Some(value.clone()),
                    _ => {
                        tolerance = value.parse().map_err(|e| format!("bad tolerance: {e}"))?;
                        if !(0.0..1.0).contains(&tolerance) {
                            return Err("tolerance must lie in [0, 1)".into());
                        }
                    }
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        tolerance,
    })
}

fn load_metrics(path: &str) -> Result<Vec<qlove_bench::gate::Metric>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let metrics = extract_metrics(&doc);
    if metrics.is_empty() {
        return Err(format!("{path}: no gateable metrics found"));
    }
    Ok(metrics)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    };
    let (baseline, fresh) = match (load_metrics(&args.baseline), load_metrics(&args.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            std::process::exit(2);
        }
    };
    let report = compare(&baseline, &fresh, args.tolerance);
    eprintln!(
        "bench_gate: {} vs {} (tolerance ±{:.0}%)",
        args.baseline,
        args.fresh,
        args.tolerance * 100.0
    );
    eprint!("{report}");
    // A gate that compares nothing gates nothing: a renamed section,
    // backend label, or key field would otherwise turn the job green
    // forever. Treat zero overlap as a configuration error, not a pass.
    if report.compared.is_empty() {
        eprintln!(
            "bench_gate: no metric names overlap between baseline and fresh artifacts — \
             refresh the committed baseline to match the current bench output"
        );
        std::process::exit(2);
    }
    let regressions = report.regressions().count();
    if regressions > 0 {
        eprintln!("bench_gate: {regressions} metric(s) regressed beyond tolerance");
        std::process::exit(1);
    }
    eprintln!(
        "bench_gate: {} metric(s) within tolerance",
        report.compared.len()
    );
}
