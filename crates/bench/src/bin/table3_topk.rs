//! Regenerate Table 3: top-k merging fractions at Q0.999.
fn main() {
    let events = qlove_bench::configs::events_from_args(qlove_bench::configs::DEFAULT_EVENTS);
    println!("{}", qlove_bench::experiments::table3::run(events));
}
