//! `bench_merge` — record the cost of mergeable-summary distributed
//! execution as `BENCH_merge.json`, so the merge path's perf trajectory
//! is tracked across PRs alongside `BENCH_ingest.json`.
//!
//! ```text
//! bench_merge [--events N] [--shards a,b,c] [--out PATH] [--smoke]
//! ```
//!
//! Measures, over the quantized Normal stream with the paper-default
//! QLOVE configuration (100K/10K window):
//!
//! * single-instance batched ingestion throughput (the baseline the
//!   distributed executor must amortize against);
//! * `run_distributed` end-to-end throughput per shard count, verifying
//!   on the way that the merged answers are bit-identical to the
//!   sequential run;
//! * the isolated coordinator merge cost per sub-window boundary
//!   (pre-extracted shard summaries, timed merge loop only);
//! * summary codec compactness (bytes per shipped summary vs the raw
//!   16-bytes-per-pair encoding).
//!
//! `--smoke` shrinks the run for CI (fewer events, fewer shard counts)
//! while keeping every measurement present in the artifact.

use qlove_core::{Qlove, QloveAnswer, QloveConfig, QloveShard, QloveSummary};
use qlove_stream::run_distributed;
use qlove_workloads::NormalGen;
use std::fmt::Write as _;
use std::time::Instant;

const WINDOW: usize = 100_000;
const PERIOD: usize = 10_000;
const PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

struct Args {
    events: usize,
    shards: Vec<usize>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 2_000_000,
        shards: vec![2, 4, 8],
        out: "BENCH_merge.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("usage: bench_merge [--events N] [--shards a,b,c] [--out PATH] [--smoke]");
                std::process::exit(0);
            }
            "--smoke" => {
                args.events = 300_000;
                args.shards = vec![2, 4];
                i += 1;
                continue;
            }
            flag @ ("--events" | "--shards" | "--out") => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--events" => args.events = value.parse().map_err(|e| format!("{e}"))?,
                    "--shards" => {
                        args.shards = value
                            .split(',')
                            .map(|s| s.trim().parse::<usize>().map_err(|e| format!("{e}")))
                            .collect::<Result<_, _>>()?;
                        if args.shards.contains(&0) {
                            return Err("shard counts must be positive".into());
                        }
                    }
                    _ => args.out = value.clone(),
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.events < WINDOW + PERIOD {
        return Err(format!("need at least {} events", WINDOW + PERIOD));
    }
    Ok(args)
}

/// Deal `data` round-robin into `shards` accumulators, extracting one
/// summary group per sub-window boundary (full boundaries only).
fn deal_summaries(cfg: &QloveConfig, data: &[u64], shards: usize) -> Vec<Vec<QloveSummary>> {
    let mut workers: Vec<QloveShard> = (0..shards).map(|_| QloveShard::new(cfg)).collect();
    let mut groups = Vec::with_capacity(data.len() / cfg.period);
    for sub in data.chunks_exact(cfg.period) {
        for (i, &v) in sub.iter().enumerate() {
            workers[i % shards].push(v);
        }
        groups.push(workers.iter_mut().map(QloveShard::take_summary).collect());
    }
    groups
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_merge: {e}");
            std::process::exit(1);
        }
    };
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD);
    let data = NormalGen::generate(7, args.events);

    // Baseline: single-instance batched ingestion.
    let mut single = Qlove::new(cfg.clone());
    let mut seq_answers: Vec<QloveAnswer> = Vec::new();
    let start = Instant::now();
    for chunk in data.chunks(4096) {
        single.push_batch_into(chunk, &mut seq_answers);
    }
    let seq_rate = args.events as f64 / start.elapsed().as_secs_f64() / 1e6;
    eprintln!("sequential push_batch(4096)      {seq_rate:8.2} Melem/s");

    // Distributed end-to-end, checking bit-identity with the baseline.
    let mut dist_rows: Vec<(usize, f64, bool)> = Vec::new();
    for &shards in &args.shards {
        let mut coordinator = Qlove::new(cfg.clone());
        let start = Instant::now();
        let answers = run_distributed(
            || QloveShard::new(&cfg),
            &mut coordinator,
            cfg.period,
            &data,
            shards,
        );
        let rate = args.events as f64 / start.elapsed().as_secs_f64() / 1e6;
        let matches = answers == seq_answers;
        eprintln!(
            "run_distributed({shards} shards)       {rate:8.2} Melem/s  answers_match={matches}"
        );
        dist_rows.push((shards, rate, matches));
    }

    // Isolated merge cost per sub-window boundary.
    let mut merge_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &shards in &args.shards {
        let groups = deal_summaries(&cfg, &data, shards);
        let boundaries = groups.len();
        let mut coordinator = Qlove::new(cfg.clone());
        let start = Instant::now();
        for group in &groups {
            for summary in group {
                std::hint::black_box(coordinator.merge(summary));
            }
        }
        let total_ns = start.elapsed().as_nanos() as f64;
        let per_boundary = total_ns / boundaries as f64;
        let per_summary = per_boundary / shards as f64;
        eprintln!(
            "merge cost ({shards} shards)           {per_boundary:10.0} ns/boundary \
             ({per_summary:.0} ns/summary)"
        );
        merge_rows.push((shards, per_boundary, per_summary));
    }

    // Codec compactness over a representative dealing (4 shards or the
    // largest configured count below that).
    let codec_shards = args.shards.iter().copied().find(|&s| s >= 4).unwrap_or(1);
    let groups = deal_summaries(&cfg, &data, codec_shards);
    let (mut bytes, mut pairs, mut n) = (0usize, 0usize, 0usize);
    for group in &groups {
        for summary in group {
            bytes += summary.to_bytes().len();
            pairs += summary.counts().len();
            n += 1;
        }
    }
    let avg_bytes = bytes as f64 / n as f64;
    let avg_pairs = pairs as f64 / n as f64;
    let raw_bytes = avg_pairs * 16.0;
    eprintln!(
        "codec ({codec_shards} shards)              {avg_bytes:8.1} B/summary vs \
         {raw_bytes:.1} B raw ({avg_pairs:.0} pairs)"
    );

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"merge\",");
    let _ = writeln!(json, "  \"window\": {WINDOW},");
    let _ = writeln!(json, "  \"period\": {PERIOD},");
    let _ = writeln!(json, "  \"events\": {},", args.events);
    let _ = writeln!(
        json,
        "  \"phis\": [{}],",
        PHIS.map(|p| p.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    let _ = writeln!(
        json,
        "    {{\"mode\": \"sequential\", \"shards\": 1, \"melems_per_sec\": {seq_rate:.3}}},"
    );
    for (i, (shards, rate, matches)) in dist_rows.iter().enumerate() {
        let comma = if i + 1 < dist_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"distributed\", \"shards\": {shards}, \"melems_per_sec\": \
             {rate:.3}, \"answers_match_sequential\": {matches}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"merge_cost_per_boundary\": [");
    for (i, (shards, per_boundary, per_summary)) in merge_rows.iter().enumerate() {
        let comma = if i + 1 < merge_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"shards\": {shards}, \"ns_per_boundary\": {per_boundary:.0}, \
             \"ns_per_summary\": {per_summary:.0}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"codec\": {{\"shards\": {codec_shards}, \"avg_bytes_per_summary\": {avg_bytes:.1}, \
         \"avg_pairs_per_summary\": {avg_pairs:.1}, \"raw_bytes_per_summary\": {raw_bytes:.1}}}"
    );
    json.push_str("}\n");

    if dist_rows.iter().any(|&(_, _, m)| !m) {
        eprintln!("bench_merge: distributed answers diverged from sequential");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("bench_merge: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);
}
