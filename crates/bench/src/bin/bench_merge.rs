//! `bench_merge` — record the cost of mergeable-summary distributed
//! execution per Level-1 store backend as `BENCH_merge.json`, so the
//! merge path's perf trajectory is tracked across PRs alongside
//! `BENCH_ingest.json`.
//!
//! ```text
//! bench_merge [--events N] [--shards a,b,c] [--transport a,b,c] [--out PATH] [--smoke]
//! ```
//!
//! Measures, over the quantized Normal stream with the paper-default
//! QLOVE configuration (100K/10K window), for **both** backends (tree
//! and dense):
//!
//! * single-instance batched ingestion throughput (the baseline the
//!   distributed executor must amortize against);
//! * `run_distributed` end-to-end throughput per shard count, verifying
//!   on the way that the merged answers are bit-identical to the
//!   sequential run;
//! * the isolated coordinator merge cost per sub-window boundary
//!   (pre-extracted shard summaries, timed merge loop only) — this
//!   includes the boundary *completion* work (exact quantiles, tail
//!   snapshot, burst test, bounds), which is backend-independent and
//!   dominates at high shard counts;
//! * the isolated **boundary completion** cost (`boundary_cost_us`):
//!   single-shard dealing driven through `Qlove::merge`, few-k on and
//!   off per backend. The on/off gap is essentially the burst
//!   detector, and this is the metric the CI perf gate holds to the
//!   committed baseline (the detector's allocation-free rework cut it
//!   severalfold — see README "Performance");
//! * the isolated **fold** cost per summary — a fresh Level-1 store
//!   per boundary folding each shard summary in, which is the
//!   primitive the backend actually changes (one tree descent per
//!   unique key vs one array add per pair). Measured on the Normal
//!   stream *and* the Pareto stream: quantized Normal summaries hold
//!   ~150 unique pairs (a small, cache-resident tree — its best
//!   case), while Pareto's heavy tail spreads across decades and
//!   makes tree descents pay, which is where the slice-fold win
//!   compounds;
//! * summary codec compactness (bytes per shipped summary vs the raw
//!   16-bytes-per-pair encoding; backend-neutral, measured once);
//! * the **transport dimension** (`--transport {inproc,uds,tcp,shm}`,
//!   dense backend): end-to-end distributed throughput per transport —
//!   the in-process thread executor vs real socket sessions against
//!   in-process worker threads speaking the full QLVT framed protocol
//!   over Unix-domain socketpairs, TCP loopback, and the zero-copy
//!   shared-memory data plane (UDS control side-channel + mapped
//!   seqlock summary rings) — plus the pipelined coordinator's overlap
//!   (µs of merge per boundary hidden behind shard ingest, and the
//!   hidden fraction of total merge time). Throughput rows are gated
//!   by CI; the overlap rows are recorded but ungated — overlap needs
//!   real parallelism, so on a 1-CPU runner it sits at ~0 and its
//!   run-to-run noise is meaningless to gate (see `gate.rs`);
//! * the **telemetry on/off twin** (`telemetry_overhead` section):
//!   the same socket-distributed pass with the metrics registry
//!   globally enabled vs disabled, bit-checked both ways. Report-only —
//!   the gate already holds the *instrumented* transport rows to ±25%,
//!   so this section exists to record that the uninstrumented twin
//!   sits in the same band, not to gate a second noisy number;
//! * **checkpoint-recovery timing** (`checkpoint_recovery` section,
//!   unix only): a worker severed mid-sub-window is respawned on the
//!   same shm base (remap: mmap checkpoint restore + replay-prefix
//!   skip) vs a fresh base (classic full QLVS replay), with the wall
//!   µs from `Restore` to the next boundary answer. Report-only, like
//!   `recovery` — restore is off the failure-free hot path;
//! * the **sessions/process scaling curve** (`sessions` section): S ∈
//!   {1, 4, 16, 64} independent windows multiplexed over ONE worker
//!   connection via the v2 multi-session server, with aggregate
//!   throughput and wall-µs per session — bit-checked per session and
//!   recorded report-only (a 1-CPU host measures fairness, not
//!   speedup; single-session socket throughput stays gated via the
//!   `transport` rows).
//!
//! Headline ratios: fold cost per summary, tree over dense (the win of
//! folding sorted pairs into a flat array instead of one tree descent
//! per unique key), and dense-backend distributed throughput at 4
//! shards over both its own sequential run and the tree sequential
//! baseline. The artifact records `host_cpus`: on a single-CPU host
//! distributed execution serializes onto one core and can at best tie
//! sequential ingest (it is the same work plus dealing overhead), so
//! the tree-baseline ratio is the meaningful cross-PR trajectory there,
//! while the own-sequential ratio becomes meaningful on multi-core
//! hosts where shard ingest overlaps coordinator merging.
//!
//! `--smoke` shrinks the run for CI (fewer events, fewer shard counts)
//! while keeping every measurement present in the artifact.

use qlove_core::{Backend, Qlove, QloveAnswer, QloveConfig, QloveShard, QloveSummary};
use qlove_stream::{run_distributed, run_distributed_with_stats, PipelineStats};
use qlove_workloads::NormalGen;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const WINDOW: usize = 100_000;
const PERIOD: usize = 10_000;
const PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];
const BACKENDS: [(Backend, &str); 2] = [(Backend::Tree, "tree"), (Backend::Dense, "dense")];

struct Args {
    events: usize,
    shards: Vec<usize>,
    transports: Vec<String>,
    out: String,
}

const ALL_TRANSPORTS: [&str; 4] = ["inproc", "uds", "tcp", "shm"];

/// Transports measured when `--transport` is not given: everything the
/// target supports (Unix-domain socketpairs and shared-memory rings
/// both need a unix target).
fn default_transports() -> Vec<String> {
    ALL_TRANSPORTS
        .iter()
        .filter(|&&t| cfg!(unix) || (t != "uds" && t != "shm"))
        .map(|&t| t.to_string())
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 2_000_000,
        shards: vec![2, 4, 8],
        transports: default_transports(),
        out: "BENCH_merge.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!(
                    "usage: bench_merge [--events N] [--shards a,b,c] \
                     [--transport inproc,uds,tcp,shm] [--out PATH] [--smoke]"
                );
                std::process::exit(0);
            }
            "--smoke" => {
                // 600K events = 60 timed boundaries per measurement:
                // enough to keep the per-boundary cost rows' run-to-run
                // noise well inside the perf gate's ±25% band (at 300K
                // the 30-boundary loops brushed against it).
                args.events = 600_000;
                args.shards = vec![2, 4];
                i += 1;
                continue;
            }
            flag @ ("--events" | "--shards" | "--transport" | "--out") => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--events" => args.events = value.parse().map_err(|e| format!("{e}"))?,
                    "--shards" => {
                        args.shards = value
                            .split(',')
                            .map(|s| s.trim().parse::<usize>().map_err(|e| format!("{e}")))
                            .collect::<Result<_, _>>()?;
                        if args.shards.contains(&0) {
                            return Err("shard counts must be positive".into());
                        }
                    }
                    "--transport" => {
                        args.transports = value
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect::<Vec<_>>();
                        if let Some(bad) = args
                            .transports
                            .iter()
                            .find(|t| !ALL_TRANSPORTS.contains(&t.as_str()))
                        {
                            return Err(format!("unknown transport {bad} (inproc|uds|tcp|shm)"));
                        }
                        if !cfg!(unix) && args.transports.iter().any(|t| t == "uds" || t == "shm") {
                            return Err("uds/shm transports need a unix target".into());
                        }
                    }
                    _ => args.out = value.clone(),
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.events < WINDOW + PERIOD {
        return Err(format!("need at least {} events", WINDOW + PERIOD));
    }
    Ok(args)
}

/// How many times each per-boundary cost loop is repeated; the
/// **minimum** total is reported. Per-boundary loops are short
/// (milliseconds), so on a busy single-CPU host a single pass can
/// absorb a scheduling hiccup worth >25% — enough to trip the CI perf
/// gate on unchanged code. The minimum of several passes approximates
/// the uncontended cost; passes are nearly free next to the dealing
/// setup they reuse.
const COST_PASSES: usize = 5;

/// Repeats for the whole-stream throughput measurements (sequential and
/// distributed); the **maximum** rate is reported, for the same
/// anti-noise reason — the fastest pass is the least-contended one.
const RATE_PASSES: usize = 3;

/// Best-of-[`COST_PASSES`] total nanoseconds for merging every boundary
/// group into a fresh coordinator.
fn best_of_passes(cfg: &QloveConfig, groups: &[Vec<QloveSummary>]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..COST_PASSES {
        let mut coordinator = Qlove::new(cfg.clone());
        let start = Instant::now();
        for group in groups {
            for summary in group {
                std::hint::black_box(coordinator.merge(summary));
            }
        }
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Deal `data` round-robin into `shards` accumulators, extracting one
/// summary group per sub-window boundary (full boundaries only).
fn deal_summaries(cfg: &QloveConfig, data: &[u64], shards: usize) -> Vec<Vec<QloveSummary>> {
    let mut workers: Vec<QloveShard> = (0..shards).map(|_| QloveShard::new(cfg)).collect();
    let mut groups = Vec::with_capacity(data.len() / cfg.period);
    for sub in data.chunks_exact(cfg.period) {
        for (i, &v) in sub.iter().enumerate() {
            workers[i % shards].push(v);
        }
        groups.push(workers.iter_mut().map(QloveShard::take_summary).collect());
    }
    groups
}

struct BackendReport {
    name: &'static str,
    seq_rate: f64,
    /// Per shard count: (shards, Melem/s, answers match sequential).
    dist_rows: Vec<(usize, f64, bool)>,
    /// Per shard count: (shards, ns/boundary, ns/summary).
    merge_rows: Vec<(usize, f64, f64)>,
}

/// Isolated boundary-completion cost, few-k on/off per backend.
struct BoundaryRow {
    backend: &'static str,
    fewk: bool,
    us_per_boundary: f64,
}

/// Boundary-completion cost in isolation: one full-sub-window summary
/// per boundary (single-shard dealing, so the backend fold is one
/// sorted-pair merge) driven through `Qlove::merge`, with few-k on and
/// off. The few-k-on/off gap is almost entirely the burst detector —
/// the coordinator's serial fraction at N shards, and the number the
/// allocation-free detector rework is accountable for across PRs.
fn measure_boundary_cost(data: &[u64], out: &mut Vec<BoundaryRow>) {
    for (backend, name) in BACKENDS {
        for fewk in [true, false] {
            let base = if fewk {
                QloveConfig::new(&PHIS, WINDOW, PERIOD)
            } else {
                QloveConfig::without_fewk(&PHIS, WINDOW, PERIOD)
            };
            let cfg = base.backend(backend);
            let groups = deal_summaries(&cfg, data, 1);
            let best_ns = best_of_passes(&cfg, &groups);
            let us_per_boundary = best_ns / groups.len() as f64 / 1e3;
            let label = if fewk { "on " } else { "off" };
            eprintln!(
                "{name:>5} boundary completion (few-k {label})  {us_per_boundary:8.1} µs/boundary"
            );
            out.push(BoundaryRow {
                backend: name,
                fewk,
                us_per_boundary,
            });
        }
    }
}

/// Pure fold cost: (dataset, backend, ns/summary, avg pairs/summary).
struct FoldRow {
    dataset: &'static str,
    backend: &'static str,
    ns_per_summary: f64,
    avg_pairs: f64,
}

/// Store-level fold measurement: a fresh Level-1 store per boundary,
/// each of the boundary group's summaries folded in through
/// `FreqStoreImpl::merge_sorted_counts` — exactly the coordinator's
/// state-combining step, with no boundary-completion work attached.
fn measure_folds(dataset: &'static str, data: &[u64], shards: usize, out: &mut Vec<FoldRow>) {
    use qlove_freqstore::{FreqStore, FreqStoreImpl};
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD);
    let groups = deal_summaries(&cfg, data, shards);
    let n: usize = groups.iter().map(Vec::len).sum();
    let pairs: usize = groups
        .iter()
        .flat_map(|g| g.iter().map(|s| s.counts().len()))
        .sum();
    let avg_pairs = pairs as f64 / n as f64;
    for (name, mut store) in [
        ("tree", FreqStoreImpl::tree(1 << 14)),
        ("dense", FreqStoreImpl::dense(3)),
    ] {
        let start = Instant::now();
        for group in &groups {
            store.clear();
            for summary in group {
                store.merge_sorted_counts(summary.counts());
            }
            std::hint::black_box(store.total());
        }
        let ns_per_summary = start.elapsed().as_nanos() as f64 / n as f64;
        eprintln!(
            "{dataset:>7} {name:>5} fold                  {ns_per_summary:8.0} ns/summary \
             ({avg_pairs:.0} pairs)"
        );
        out.push(FoldRow {
            dataset,
            backend: name,
            ns_per_summary,
            avg_pairs,
        });
    }
}

/// One transport-dimension measurement: end-to-end distributed rate
/// over a given transport plus the pipelined coordinator's overlap.
struct TransportRow {
    transport: String,
    shards: usize,
    rate: f64,
    overlap_us_per_boundary: f64,
    merge_hidden_pct: f64,
    matches: bool,
}

/// Fresh unique shared-memory base path for one bench connection
/// (pid + counter, under the system temp dir).
#[cfg(unix)]
fn fresh_shm_base(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "qlove-bench-{tag}.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Remove every file derived from a shared-memory base path (socket,
/// rings, checkpoints). The transport unlinks its own artifacts on
/// clean shutdown; this keeps crashed or severed passes from leaking
/// temp files between measurements.
#[cfg(unix)]
fn scrub_shm_base(base: &std::path::Path) {
    let (Some(dir), Some(name)) = (base.parent(), base.file_name()) else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry
            .file_name()
            .to_string_lossy()
            .starts_with(&*name.to_string_lossy())
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Run one socket-distributed pass against in-process worker threads
/// speaking the full QLVT framed protocol. `uds` uses socketpairs,
/// `tcp` a loopback listener, `shm` the shared-memory endpoint (UDS
/// control side-channel + mapped summary rings, which
/// `run_over_sockets` attaches automatically) — real sockets and real
/// frame encode/decode either way, isolating the wire cost without the
/// child-process spawn noise (the cross-process differential lives in
/// `tests/transport_shm.rs` / `tests/transport_differential.rs`).
fn socket_pass(
    cfg: &QloveConfig,
    data: &[u64],
    shards: usize,
    family: &str,
) -> (Vec<QloveAnswer>, PipelineStats) {
    use qlove_transport::{serve_stream, Conn, Endpoint, Listener};
    #[cfg(unix)]
    let mut shm_bases: Vec<std::path::PathBuf> = Vec::new();
    let result = std::thread::scope(|scope| {
        let mut conns = Vec::with_capacity(shards);
        for _ in 0..shards {
            match family {
                #[cfg(unix)]
                "uds" => {
                    let (ours, theirs) = std::os::unix::net::UnixStream::pair()
                        .expect("socketpair for uds transport");
                    conns.push(Conn::Unix(ours));
                    scope.spawn(move || serve_stream(Conn::Unix(theirs)));
                }
                #[cfg(unix)]
                "shm" => {
                    let base = fresh_shm_base("shm");
                    let listener =
                        Listener::bind(&Endpoint::Shm(base.clone())).expect("bind shm listener");
                    let endpoint = listener.local_endpoint().expect("resolve shm endpoint");
                    scope.spawn(move || {
                        let conn = listener.accept().expect("accept shm worker conn");
                        serve_stream(conn)
                    });
                    conns.push(Conn::connect(&endpoint).expect("connect to shm worker thread"));
                    shm_bases.push(base);
                }
                "tcp" => {
                    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))
                        .expect("bind loopback listener");
                    let endpoint = listener.local_endpoint().expect("resolve port");
                    scope.spawn(move || {
                        let conn = listener.accept().expect("accept worker conn");
                        serve_stream(conn)
                    });
                    conns.push(Conn::connect(&endpoint).expect("connect to worker thread"));
                }
                other => panic!("unsupported transport family {other}"),
            }
        }
        let mut coordinator = Qlove::new(cfg.clone());
        let run = qlove_transport::run_over_sockets(cfg, &mut coordinator, conns, data)
            .expect("socket-distributed pass");
        (run.answers, run.stats)
    });
    #[cfg(unix)]
    for base in &shm_bases {
        scrub_shm_base(base);
    }
    result
}

/// Measure the transport dimension on the dense backend (the backend
/// dimension is covered by the main distributed rows; sockets change
/// the wire, not the store).
fn measure_transports(
    data: &[u64],
    shards_list: &[usize],
    transports: &[String],
    seq_answers: &[QloveAnswer],
    out: &mut Vec<TransportRow>,
) {
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(Backend::Dense);
    for transport in transports {
        for &shards in shards_list {
            let mut rate = 0.0f64;
            let mut best_stats = PipelineStats::default();
            let mut matches = true;
            for _ in 0..RATE_PASSES {
                let start = Instant::now();
                let (answers, stats) = match transport.as_str() {
                    "inproc" => {
                        let mut coordinator = Qlove::new(cfg.clone());
                        run_distributed_with_stats(
                            || QloveShard::new(&cfg),
                            &mut coordinator,
                            cfg.period,
                            data,
                            shards,
                        )
                    }
                    family => socket_pass(&cfg, data, shards, family),
                };
                let pass_rate = data.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
                if pass_rate > rate {
                    rate = pass_rate;
                    best_stats = stats;
                }
                matches &= answers == seq_answers;
            }
            eprintln!(
                "{transport:>6} distributed({shards} shards)     {rate:8.2} Melem/s  \
                 overlap {:7.1} µs/boundary ({:3.0}% of merge hidden)  answers_match={matches}",
                best_stats.overlap_us_per_boundary(),
                best_stats.merge_hidden_fraction() * 100.0,
            );
            out.push(TransportRow {
                transport: transport.clone(),
                shards,
                rate,
                overlap_us_per_boundary: best_stats.overlap_us_per_boundary(),
                merge_hidden_pct: best_stats.merge_hidden_fraction() * 100.0,
                matches,
            });
        }
    }
}

/// One sessions/process scaling measurement: S independent windows
/// multiplexed over ONE worker connection (the v2 multi-session
/// server), with the whole stream split into S contiguous slices.
/// Report-only — on a 1-CPU host the curve mostly measures scheduling
/// fairness, not parallel speedup, so CI records it without gating
/// (single-session transport throughput stays gated via the
/// `transport` section).
struct SessionsRow {
    sessions: usize,
    rate: f64,
    us_per_session: f64,
    matches: bool,
}

/// Window schedule for the multi-session scaling curve: small enough
/// that 64 sessions each still evaluate several windows over a smoke
/// slice of the stream.
const SESS_WINDOW: usize = 4_000;
const SESS_PERIOD: usize = 500;

/// Measure the sessions/process scaling curve: one in-process worker
/// thread serving S multiplexed sessions, each an independent QLOVE
/// window over its own slice of the stream, bit-checked per session
/// against its own sequential run.
fn measure_sessions(data: &[u64], out: &mut Vec<SessionsRow>) {
    use qlove_transport::{run_sessions, serve_stream, Conn, SessionSpec, WorkerMode};
    let cfg = QloveConfig::new(&PHIS, SESS_WINDOW, SESS_PERIOD);
    for &sessions in &[1usize, 4, 16, 64] {
        let slice = data.len() / sessions;
        if slice < SESS_WINDOW {
            eprintln!("sessions/process {sessions:3}: stream too short, skipped");
            continue;
        }
        let specs: Vec<SessionSpec> = (0..sessions)
            .map(|s| SessionSpec {
                config: cfg.clone(),
                mode: WorkerMode::Shard,
                values: data[s * slice..(s + 1) * slice].to_vec(),
            })
            .collect();
        let seq: Vec<Vec<QloveAnswer>> = specs
            .iter()
            .map(|spec| {
                let mut op = Qlove::new(spec.config.clone());
                let mut answers = Vec::new();
                for chunk in spec.values.chunks(4096) {
                    op.push_batch_into(chunk, &mut answers);
                }
                answers
            })
            .collect();
        let mut rate = 0.0f64;
        let mut best_us = f64::INFINITY;
        let mut matches = true;
        for _ in 0..RATE_PASSES {
            let (outcomes, wall) = std::thread::scope(|scope| {
                #[cfg(unix)]
                let conn = {
                    let (ours, theirs) =
                        std::os::unix::net::UnixStream::pair().expect("socketpair for sessions");
                    scope.spawn(move || serve_stream(Conn::Unix(theirs)));
                    Conn::Unix(ours)
                };
                #[cfg(not(unix))]
                let conn = {
                    use qlove_transport::{Endpoint, Listener};
                    let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))
                        .expect("bind loopback listener");
                    let endpoint = listener.local_endpoint().expect("resolve port");
                    scope.spawn(move || {
                        let conn = listener.accept().expect("accept worker conn");
                        serve_stream(conn)
                    });
                    Conn::connect(&endpoint).expect("connect to worker thread")
                };
                let start = Instant::now();
                let outcomes = run_sessions(conn, &specs).expect("multi-session pass");
                (outcomes, start.elapsed())
            });
            let pass_rate = (slice * sessions) as f64 / wall.as_secs_f64() / 1e6;
            if pass_rate > rate {
                rate = pass_rate;
                best_us = wall.as_micros() as f64;
            }
            matches &= outcomes
                .iter()
                .zip(&seq)
                .all(|(outcome, want)| &outcome.answers == want);
        }
        let us_per_session = best_us / sessions as f64;
        eprintln!(
            "sessions/process {sessions:3}            {rate:8.2} Melem/s  \
             {us_per_session:9.1} µs/session  answers_match={matches}"
        );
        out.push(SessionsRow {
            sessions,
            rate,
            us_per_session,
            matches,
        });
    }
}

/// One telemetry-overhead measurement (report-only): the same
/// socket-distributed pass with metric recording globally enabled vs
/// disabled. The pair proves the counters/gauges/histograms on the
/// dealer and collector hot paths cost nothing measurable — CI locks
/// the *instrumented* transport rows to the gated ±25% band, and this
/// section records the uninstrumented twin for the diff.
struct TelemetryRow {
    enabled: bool,
    rate: f64,
    matches: bool,
}

/// Measure instrumented vs uninstrumented distributed throughput over
/// the cheapest real socket family (uds on unix, tcp loopback
/// elsewhere), bit-checking every pass. Metric recording is restored
/// to enabled afterwards regardless, so later sections keep their
/// instrumentation.
fn measure_telemetry_overhead(
    data: &[u64],
    shards: usize,
    seq_answers: &[QloveAnswer],
    out: &mut Vec<TelemetryRow>,
) {
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(Backend::Dense);
    let family = if cfg!(unix) { "uds" } else { "tcp" };
    for enabled in [true, false] {
        qlove_telemetry::set_enabled(enabled);
        let mut rate = 0.0f64;
        let mut matches = true;
        for _ in 0..RATE_PASSES {
            let start = Instant::now();
            let (answers, _stats) = socket_pass(&cfg, data, shards, family);
            rate = rate.max(data.len() as f64 / start.elapsed().as_secs_f64() / 1e6);
            matches &= answers == seq_answers;
        }
        let label = if enabled { "on " } else { "off" };
        eprintln!(
            "telemetry {label} {family} distributed({shards} shards) {rate:8.2} Melem/s  \
             answers_match={matches}"
        );
        out.push(TelemetryRow {
            enabled,
            rate,
            matches,
        });
    }
    qlove_telemetry::set_enabled(true);
}

/// One supervised-recovery measurement: a worker crashes mid-stream,
/// the supervisor detects, restores, and replays; these are the
/// per-phase costs it reported. Report-only — the perf gate reads
/// none of this (recovery is off the failure-free hot path).
struct RecoveryRow {
    pass: usize,
    detect_us: u64,
    restore_us: u64,
    replay_us: u64,
    replayed_frames: usize,
    matches: bool,
}

/// Measure recovery-time components with a deterministic in-process
/// failure: an honest worker thread (real `QloveShard`, real
/// summaries) serves until `die_after` boundary answers, then drops
/// its socket. The supervisor restores a fresh `serve_stream` worker
/// from the boundary checkpoint and replays the unacknowledged ring.
/// A Unix socketpair keeps the crash deterministic (buffered frames
/// then clean EOF); on non-unix hosts the section is empty.
#[allow(unused_variables)]
fn measure_recovery(data: &[u64], passes: usize, out: &mut Vec<RecoveryRow>) {
    #[cfg(unix)]
    {
        use qlove_transport::{
            run_supervised, serve_stream, Conn, Frame, FrameReader, FrameWriter, RecoveryPolicy,
            Role, PROTOCOL_VERSION,
        };
        let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(Backend::Dense);
        // Recovery cost is dominated by the unacked tail, not stream
        // length; a couple of windows keeps this pass quick.
        let data = &data[..data.len().min(2 * WINDOW)];
        let mut single = Qlove::new(cfg.clone());
        let mut seq: Vec<QloveAnswer> = Vec::new();
        for chunk in data.chunks(4096) {
            single.push_batch_into(chunk, &mut seq);
        }
        let policy = RecoveryPolicy {
            max_restarts: 3,
            backoff: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
            heartbeat: None, // EOF detection needs no probes
            jitter: 0,
        };
        for pass in 0..passes {
            let (ours, theirs) = std::os::unix::net::UnixStream::pair().expect("socketpair");
            let worker_cfg = cfg.clone();
            let dying = std::thread::spawn(move || -> std::io::Result<()> {
                let conn = Conn::Unix(theirs);
                let read_half = conn.try_clone()?;
                let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
                let mut writer = FrameWriter::new(conn);
                reader.read_frame()?; // coordinator hello
                writer.write_frame(&Frame::Hello {
                    version: PROTOCOL_VERSION,
                    role: Role::Worker,
                })?;
                writer.flush()?;
                reader.read_frame()?; // open session
                let mut shard = QloveShard::new(&worker_cfg);
                let mut answered = 0u64;
                loop {
                    match reader.read_frame()? {
                        Frame::EventBatch { values, .. } => shard.push_batch(&values),
                        Frame::Boundary { session, boundary } => {
                            writer.write_frame(&Frame::BoundarySummary {
                                session,
                                boundary,
                                epoch: 0,
                                summary: shard.take_summary(),
                            })?;
                            writer.flush()?;
                            answered += 1;
                            if answered == 3 {
                                return Ok(()); // crash mid-stream
                            }
                        }
                        _ => continue,
                    }
                }
            });
            let mut replacements = Vec::new();
            let respawn = |_shard: usize| {
                let (ours, theirs) = std::os::unix::net::UnixStream::pair()?;
                replacements.push(std::thread::spawn(move || serve_stream(Conn::Unix(theirs))));
                Ok(Conn::Unix(ours))
            };
            let mut coordinator = Qlove::new(cfg.clone());
            let run = run_supervised(
                &cfg,
                &mut coordinator,
                vec![Conn::Unix(ours)],
                data,
                &policy,
                respawn,
            )
            .expect("supervised recovery pass");
            let matches = run.answers == seq;
            let f = *run.failures.first().expect("one injected failure");
            eprintln!(
                "recovery pass {pass}: detect {:6} µs  restore {:6} µs  replay {:6} µs \
                 ({} frames)  answers_match={matches}",
                f.detect_us, f.restore_us, f.replay_us, f.replayed_frames
            );
            out.push(RecoveryRow {
                pass,
                detect_us: f.detect_us,
                restore_us: f.restore_us,
                replay_us: f.replay_us,
                replayed_frames: f.replayed_frames,
                matches,
            });
            dying.join().expect("dying worker panicked").ok();
            for join in replacements {
                join.join().expect("replacement worker panicked").ok();
            }
        }
    }
}

/// One checkpoint-recovery timing measurement (report-only, like
/// `recovery`): a worker severed mid-sub-window is brought back either
/// on the SAME shm base (`remap` — mmap checkpoint restore plus
/// replay-prefix skip) or on a FRESH base (`replay` — classic full
/// QLVS replay of the unacknowledged tail), and the row records the
/// wall µs from writing `Restore` to reading the next boundary answer.
struct CheckpointRecoveryRow {
    mode: &'static str,
    restore_us: u64,
    replayed_frames: usize,
    matches: bool,
}

/// Measure mmap-checkpoint remap-restore against classic replay with a
/// deterministic scripted coordinator over real shm worker threads:
/// incarnation 1 completes sub-window 0, absorbs (and checkpoints) a
/// prefix of sub-window 1's batches, then is severed; incarnation 2
/// restores with the supervised coordinator's replay protocol (empty
/// wire checkpoint) and finishes the sub-window, bit-checked against
/// an independent sequential shard. Unix-only; report-only for the
/// perf gate — restore is off the failure-free hot path.
#[allow(unused_variables)]
fn measure_checkpoint_recovery(out: &mut Vec<CheckpointRecoveryRow>) {
    #[cfg(unix)]
    {
        use qlove_transport::{
            serve_stream, Conn, Endpoint, Frame, FrameReader, FrameWriter, Listener, Role,
            WorkerMode, PROTOCOL_VERSION,
        };
        let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(Backend::Dense);
        let sub0: Vec<u64> = (0..PERIOD as u64)
            .map(|i| (i * 2654435761) % 9_973)
            .collect();
        // Enough batches to overflow the worker's per-session pending
        // queue, so a non-empty prefix is provably checkpointed before
        // the crash and the remap pass has a real skip to perform.
        let replayed: Vec<Vec<u64>> = (0..12)
            .map(|b| (0..50u64).map(|i| (i * 7919 + b) % 4_999).collect())
            .collect();
        let tail: Vec<u64> = (0..(PERIOD - 600) as u64)
            .map(|i| (i * 31) % 1_009)
            .collect();
        let mut reference = QloveShard::new(&cfg);
        for batch in &replayed {
            reference.push_batch(batch);
        }
        reference.push_batch(&tail);
        let want = reference.take_summary();

        for mode in ["remap", "replay"] {
            let pass = || -> std::io::Result<(u64, bool)> {
                let base = fresh_shm_base("ckpt");
                let spawn_worker = |base: &std::path::Path| {
                    Listener::bind(&Endpoint::Shm(base.to_path_buf())).map(|listener| {
                        std::thread::spawn(move || {
                            let conn = listener.accept()?;
                            serve_stream(conn)
                        })
                    })
                };
                type Wire = (FrameReader<std::io::BufReader<Conn>>, FrameWriter<Conn>);
                let handshake = |conn: Conn| -> std::io::Result<Wire> {
                    let read_half = conn.try_clone()?;
                    let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
                    let mut writer = FrameWriter::new(conn);
                    writer.write_frame(&Frame::Hello {
                        version: PROTOCOL_VERSION,
                        role: Role::Coordinator,
                    })?;
                    writer.flush()?;
                    reader.read_frame()?; // worker hello
                    writer.write_frame(&Frame::OpenSession {
                        session: 0,
                        config: cfg.clone(),
                        mode: WorkerMode::Shard,
                    })?;
                    Ok((reader, writer))
                };

                // Incarnation 1: sub-window 0, a checkpointed prefix of
                // sub-window 1, then a severed connection.
                let first = spawn_worker(&base)?;
                {
                    let conn = Conn::connect(&Endpoint::Shm(base.clone()))?;
                    let (mut reader, mut writer) = handshake(conn)?;
                    writer.write_frame(&Frame::EventBatch {
                        session: 0,
                        values: sub0.clone(),
                    })?;
                    writer.write_frame(&Frame::Boundary {
                        session: 0,
                        boundary: 0,
                    })?;
                    writer.flush()?;
                    reader.read_frame()?; // boundary-0 summary
                    for batch in &replayed {
                        writer.write_frame(&Frame::EventBatch {
                            session: 0,
                            values: batch.clone(),
                        })?;
                    }
                    writer.flush()?;
                    // Let the worker drain the queue into the mmap
                    // checkpoint; correctness never depends on how much
                    // it absorbs (the header records exactly that).
                    std::thread::sleep(Duration::from_millis(100));
                }
                first.join().expect("first worker thread").ok();

                // Incarnation 2: same base → remap + skip; fresh base →
                // no stash, classic full replay.
                let restore_base = match mode {
                    "remap" => base.clone(),
                    _ => fresh_shm_base("ckpt"),
                };
                let second = spawn_worker(&restore_base)?;
                let conn = Conn::connect(&Endpoint::Shm(restore_base.clone()))?;
                let (mut reader, mut writer) = handshake(conn)?;
                let start = Instant::now();
                writer.write_frame(&Frame::Restore {
                    session: 0,
                    boundary: 1,
                    checkpoint: QloveSummary::default(),
                })?;
                for batch in &replayed {
                    writer.write_frame(&Frame::EventBatch {
                        session: 0,
                        values: batch.clone(),
                    })?;
                }
                writer.write_frame(&Frame::EventBatch {
                    session: 0,
                    values: tail.clone(),
                })?;
                writer.write_frame(&Frame::Boundary {
                    session: 0,
                    boundary: 1,
                })?;
                writer.write_frame(&Frame::Shutdown)?;
                writer.flush()?;
                let Frame::BoundarySummary { summary, .. } = reader.read_frame()? else {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "expected boundary-1 summary",
                    ));
                };
                let restore_us = start.elapsed().as_micros() as u64;
                reader.read_frame()?; // shutdown ack
                second.join().expect("second worker thread").ok();
                scrub_shm_base(&base);
                scrub_shm_base(&restore_base);
                Ok((restore_us, summary == want))
            };
            let (restore_us, matches) = pass().expect("checkpoint-recovery pass");
            eprintln!(
                "ckpt recovery {mode:>6}: restore {restore_us:6} µs  \
                 ({} replayed frames)  answers_match={matches}",
                replayed.len()
            );
            out.push(CheckpointRecoveryRow {
                mode,
                restore_us,
                replayed_frames: replayed.len(),
                matches,
            });
        }
    }
}

/// One live-reshard measurement (report-only, like `recovery`): the
/// dealer's ingest pause, the swap's control-frame and checkpoint
/// footprint, and — on the kill pass — the frames replayed to carry
/// the in-flight swap through a worker crash.
struct ReshardRow {
    pass: &'static str,
    pause_us: u64,
    paused_subwindows: u64,
    swap_frames: usize,
    checkpoint_bytes: usize,
    replayed_frames: usize,
    matches: bool,
}

/// Measure live-resharding costs over real in-process socket workers:
/// a split (fresh worker joins mid-window), a merge (worker retired
/// mid-window), and a split with the parent connection severed
/// mid-swap so recovery must replay the reshard itself. Unix-only,
/// like `measure_recovery`; report-only for the perf gate.
#[allow(unused_variables)]
fn measure_reshard(data: &[u64], out: &mut Vec<ReshardRow>) {
    #[cfg(unix)]
    {
        use qlove_stream::parallel::{ReshardPlan, ReshardSpec};
        use qlove_transport::{
            interpose, run_resharded, serve_stream, Conn, CutAfter, RecoveryPolicy,
        };
        use std::sync::Mutex;

        let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(Backend::Dense);
        // Swap cost is per-event-independent; two windows suffice.
        let data = &data[..data.len().min(2 * WINDOW)];
        let span = data.iter().copied().max().unwrap_or(1) + 1;
        let mut single = Qlove::new(cfg.clone());
        let mut seq: Vec<QloveAnswer> = Vec::new();
        for chunk in data.chunks(4096) {
            single.push_batch_into(chunk, &mut seq);
        }
        let policy = RecoveryPolicy {
            max_restarts: 3,
            backoff: Duration::from_millis(1),
            deadline: Duration::from_secs(30),
            heartbeat: None, // EOF detection needs no probes
            jitter: 0,
        };
        // Initial fleet splits [0, span) in half; the split pass cuts
        // slot 0 again at the quarter point.
        let passes: [(&'static str, ReshardSpec, Option<u64>); 3] = [
            (
                "split",
                ReshardSpec {
                    boundary: 3,
                    plan: ReshardPlan::Split {
                        slot: 0,
                        pivot: span / 4,
                    },
                },
                None,
            ),
            (
                "merge",
                ReshardSpec {
                    boundary: 3,
                    plan: ReshardPlan::Merge { left: 0 },
                },
                None,
            ),
            // Sever the fresh connection the split brings up after 3
            // frames (Hello, OpenSession, Restore — the Reshard frame
            // dies), so recovery has to replay the in-flight swap.
            (
                "split+kill",
                ReshardSpec {
                    boundary: 3,
                    plan: ReshardPlan::Split {
                        slot: 0,
                        pivot: span / 4,
                    },
                },
                Some(3),
            ),
        ];
        for (pass, spec, cut) in passes {
            let proxies = Mutex::new(Vec::new());
            let workers = Mutex::new(Vec::new());
            let spawn = |cut: Option<u64>| -> std::io::Result<Conn> {
                let (ours, theirs) = std::os::unix::net::UnixStream::pair()?;
                workers
                    .lock()
                    .unwrap()
                    .push(std::thread::spawn(move || serve_stream(Conn::Unix(theirs))));
                match cut {
                    None => Ok(Conn::Unix(ours)),
                    Some(cut) => {
                        let (conn, proxy) = interpose(Conn::Unix(ours), CutAfter(cut))?;
                        proxies.lock().unwrap().push(proxy);
                        Ok(conn)
                    }
                }
            };
            let conns = vec![
                spawn(None).expect("spawn shard 0"),
                spawn(None).expect("spawn shard 1"),
            ];
            // Only the first bring-up of the fresh connection is cut;
            // every replacement afterwards is healthy.
            let fresh_cut = Mutex::new(cut);
            let mut coordinator = Qlove::new(cfg.clone());
            let run = run_resharded(
                &cfg,
                &mut coordinator,
                conns,
                data,
                span,
                std::slice::from_ref(&spec),
                &policy,
                |_conn| spawn(fresh_cut.lock().unwrap().take()),
            )
            .expect("resharded bench pass");
            let matches = run.answers == seq;
            let e = *run.events.first().expect("one executed reshard");
            let replayed: usize = run.failures.iter().map(|f| f.replayed_frames).sum();
            eprintln!(
                "reshard {pass:>10}: pause {:6} µs ({} sub-window gap)  {} swap frames  \
                 {:4} checkpoint B  {replayed:4} replayed frames  answers_match={matches}",
                e.pause_us, e.paused_subwindows, e.swap_frames, e.checkpoint_bytes
            );
            out.push(ReshardRow {
                pass,
                pause_us: e.pause_us,
                paused_subwindows: e.paused_subwindows,
                swap_frames: e.swap_frames,
                checkpoint_bytes: e.checkpoint_bytes,
                replayed_frames: replayed,
                matches,
            });
            for join in workers.into_inner().unwrap() {
                join.join().expect("worker thread panicked").ok();
            }
            for proxy in proxies.into_inner().unwrap() {
                proxy.join();
            }
        }
    }
}

fn measure_backend(
    backend: Backend,
    name: &'static str,
    data: &[u64],
    shards_list: &[usize],
) -> BackendReport {
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(backend);

    // Baseline: single-instance batched ingestion (best of
    // RATE_PASSES — the fastest pass is the least-contended one).
    let mut seq_rate = 0.0f64;
    let mut seq_answers: Vec<QloveAnswer> = Vec::new();
    for _ in 0..RATE_PASSES {
        let mut single = Qlove::new(cfg.clone());
        seq_answers.clear();
        let start = Instant::now();
        for chunk in data.chunks(4096) {
            single.push_batch_into(chunk, &mut seq_answers);
        }
        seq_rate = seq_rate.max(data.len() as f64 / start.elapsed().as_secs_f64() / 1e6);
    }
    eprintln!("{name:>5} sequential push_batch(4096)      {seq_rate:8.2} Melem/s");

    // Distributed end-to-end, checking bit-identity with the baseline
    // on every pass.
    let mut dist_rows: Vec<(usize, f64, bool)> = Vec::new();
    for &shards in shards_list {
        let mut rate = 0.0f64;
        let mut matches = true;
        for _ in 0..RATE_PASSES {
            let mut coordinator = Qlove::new(cfg.clone());
            let start = Instant::now();
            let answers = run_distributed(
                || QloveShard::new(&cfg),
                &mut coordinator,
                cfg.period,
                data,
                shards,
            );
            rate = rate.max(data.len() as f64 / start.elapsed().as_secs_f64() / 1e6);
            matches &= answers == seq_answers;
        }
        eprintln!(
            "{name:>5} run_distributed({shards} shards)       {rate:8.2} Melem/s  \
             answers_match={matches}"
        );
        dist_rows.push((shards, rate, matches));
    }

    // Isolated merge cost per sub-window boundary (best of a few
    // passes — see COST_PASSES).
    let mut merge_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &shards in shards_list {
        let groups = deal_summaries(&cfg, data, shards);
        let boundaries = groups.len();
        let total_ns = best_of_passes(&cfg, &groups);
        let per_boundary = total_ns / boundaries as f64;
        let per_summary = per_boundary / shards as f64;
        eprintln!(
            "{name:>5} merge cost ({shards} shards)           {per_boundary:10.0} ns/boundary \
             ({per_summary:.0} ns/summary)"
        );
        merge_rows.push((shards, per_boundary, per_summary));
    }

    BackendReport {
        name,
        seq_rate,
        dist_rows,
        merge_rows,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_merge: {e}");
            std::process::exit(1);
        }
    };
    let data = NormalGen::generate(7, args.events);

    let reports: Vec<BackendReport> = BACKENDS
        .iter()
        .map(|&(backend, name)| measure_backend(backend, name, &data, &args.shards))
        .collect();

    // Transport dimension (dense backend): in-process pipelined
    // executor vs socket sessions, with coordinator-overlap metrics.
    let mut transport_rows: Vec<TransportRow> = Vec::new();
    if !args.transports.is_empty() {
        let dense_cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(Backend::Dense);
        let mut single = Qlove::new(dense_cfg);
        let mut dense_seq: Vec<QloveAnswer> = Vec::new();
        for chunk in data.chunks(4096) {
            single.push_batch_into(chunk, &mut dense_seq);
        }
        measure_transports(
            &data,
            &args.shards,
            &args.transports,
            &dense_seq,
            &mut transport_rows,
        );
    }

    // Telemetry on/off twin of the gated transport rows. Report-only
    // (see `TelemetryRow`): the gate holds the instrumented rows, this
    // section records what turning the registry off buys (nothing, by
    // design).
    let mut telemetry_rows: Vec<TelemetryRow> = Vec::new();
    {
        let dense_cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(Backend::Dense);
        let mut single = Qlove::new(dense_cfg);
        let mut dense_seq: Vec<QloveAnswer> = Vec::new();
        for chunk in data.chunks(4096) {
            single.push_batch_into(chunk, &mut dense_seq);
        }
        let shards = args.shards.iter().copied().find(|&s| s >= 4).unwrap_or(1);
        measure_telemetry_overhead(&data, shards, &dense_seq, &mut telemetry_rows);
    }

    // Sessions/process scaling curve: S windows multiplexed over one
    // worker connection. Report-only (see `SessionsRow`).
    let mut sessions_rows: Vec<SessionsRow> = Vec::new();
    measure_sessions(&data, &mut sessions_rows);

    // Supervised-recovery phase costs with an injected worker crash.
    // Report-only: the perf gate never reads this section, because
    // recovery is off the failure-free hot path by construction.
    let mut recovery_rows: Vec<RecoveryRow> = Vec::new();
    measure_recovery(&data, 3, &mut recovery_rows);

    // Checkpoint-recovery timing: mmap remap-restore vs classic full
    // replay on the shm data plane. Report-only (see
    // `CheckpointRecoveryRow`).
    let mut ckpt_recovery_rows: Vec<CheckpointRecoveryRow> = Vec::new();
    measure_checkpoint_recovery(&mut ckpt_recovery_rows);

    // Live-resharding swap costs (split / merge / split under a
    // mid-swap crash). Report-only, like `recovery`: the swap is off
    // the steady-state hot path, so the gate never reads the section.
    let mut reshard_rows: Vec<ReshardRow> = Vec::new();
    measure_reshard(&data, &mut reshard_rows);

    // Isolated boundary-completion cost (few-k on/off, both backends).
    let mut boundary_rows: Vec<BoundaryRow> = Vec::new();
    measure_boundary_cost(&data, &mut boundary_rows);

    // Store-level fold cost on both workload families, at the 4-shard
    // (or closest configured) dealing.
    let fold_shards = args.shards.iter().copied().find(|&s| s >= 4).unwrap_or(1);
    let mut fold_rows: Vec<FoldRow> = Vec::new();
    measure_folds("normal", &data, fold_shards, &mut fold_rows);
    let pareto = qlove_workloads::ParetoGen::generate(7, args.events);
    measure_folds("pareto", &pareto, fold_shards, &mut fold_rows);

    // Codec compactness over a representative dealing (4 shards or the
    // largest configured count below that). Summaries are backend-
    // neutral sorted pairs, so one backend suffices.
    let codec_shards = args.shards.iter().copied().find(|&s| s >= 4).unwrap_or(1);
    let codec_cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD);
    let groups = deal_summaries(&codec_cfg, &data, codec_shards);
    let (mut bytes, mut pairs, mut n) = (0usize, 0usize, 0usize);
    for group in &groups {
        for summary in group {
            bytes += summary.to_bytes().len();
            pairs += summary.counts().len();
            n += 1;
        }
    }
    let avg_bytes = bytes as f64 / n as f64;
    let avg_pairs = pairs as f64 / n as f64;
    let raw_bytes = avg_pairs * 16.0;
    eprintln!(
        "codec ({codec_shards} shards)              {avg_bytes:8.1} B/summary vs \
         {raw_bytes:.1} B raw ({avg_pairs:.0} pairs)"
    );

    // Headline ratios at the 4-shard (or closest) configuration.
    let tree = &reports[0];
    let dense = &reports[1];
    let fold_of = |dataset: &str, backend: &str| {
        fold_rows
            .iter()
            .find(|r| r.dataset == dataset && r.backend == backend)
            .map(|r| r.ns_per_summary)
            .unwrap_or(f64::NAN)
    };
    let fold_speedup_normal = fold_of("normal", "tree") / fold_of("normal", "dense");
    let fold_speedup_pareto = fold_of("pareto", "tree") / fold_of("pareto", "dense");
    let dense_dist4 = dense
        .dist_rows
        .iter()
        .find(|r| r.0 == 4)
        .or(dense.dist_rows.last())
        .map(|r| r.1)
        .unwrap_or(f64::NAN);
    let dist_over_seq = dense_dist4 / dense.seq_rate;
    let dist_over_tree_seq = dense_dist4 / tree.seq_rate;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("fold ns/summary tree / dense (normal):     {fold_speedup_normal:.2}x");
    eprintln!("fold ns/summary tree / dense (pareto):     {fold_speedup_pareto:.2}x");
    eprintln!("dense distributed(4) / dense sequential:   {dist_over_seq:.2}x");
    eprintln!("dense distributed(4) / tree sequential:    {dist_over_tree_seq:.2}x  (host_cpus={host_cpus})");

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"merge\",");
    let _ = writeln!(json, "  \"window\": {WINDOW},");
    let _ = writeln!(json, "  \"period\": {PERIOD},");
    let _ = writeln!(json, "  \"events\": {},", args.events);
    let _ = writeln!(
        json,
        "  \"phis\": [{}],",
        PHIS.map(|p| p.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (bi, report) in reports.iter().enumerate() {
        let name = report.name;
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{name}\", \"mode\": \"sequential\", \"shards\": 1, \
             \"melems_per_sec\": {:.3}}},",
            report.seq_rate
        );
        for (i, (shards, rate, matches)) in report.dist_rows.iter().enumerate() {
            let last = bi + 1 == reports.len() && i + 1 == report.dist_rows.len();
            let comma = if last { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"backend\": \"{name}\", \"mode\": \"distributed\", \"shards\": {shards}, \
                 \"melems_per_sec\": {rate:.3}, \"answers_match_sequential\": {matches}}}{comma}"
            );
        }
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"merge_cost_per_boundary\": [");
    for (bi, report) in reports.iter().enumerate() {
        for (i, (shards, per_boundary, per_summary)) in report.merge_rows.iter().enumerate() {
            let last = bi + 1 == reports.len() && i + 1 == report.merge_rows.len();
            let comma = if last { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"backend\": \"{}\", \"shards\": {shards}, \"ns_per_boundary\": \
                 {per_boundary:.0}, \"ns_per_summary\": {per_summary:.0}}}{comma}",
                report.name
            );
        }
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"transport\": [");
    for (i, row) in transport_rows.iter().enumerate() {
        let comma = if i + 1 < transport_rows.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"shards\": {}, \"melems_per_sec\": {:.3}, \
             \"overlap_us_per_boundary\": {:.2}, \"merge_hidden_pct\": {:.1}, \
             \"answers_match_sequential\": {}}}{comma}",
            row.transport,
            row.shards,
            row.rate,
            row.overlap_us_per_boundary,
            row.merge_hidden_pct,
            row.matches
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"telemetry_overhead\": [");
    for (i, row) in telemetry_rows.iter().enumerate() {
        let comma = if i + 1 < telemetry_rows.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"enabled\": {}, \"melems_per_sec\": {:.3}, \
             \"answers_match_sequential\": {}}}{comma}",
            row.enabled, row.rate, row.matches
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"sessions\": [");
    for (i, row) in sessions_rows.iter().enumerate() {
        let comma = if i + 1 < sessions_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"sessions\": {}, \"melems_per_sec\": {:.3}, \"us_per_session\": {:.1}, \
             \"answers_match_sequential\": {}}}{comma}",
            row.sessions, row.rate, row.us_per_session, row.matches
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"recovery\": [");
    for (i, row) in recovery_rows.iter().enumerate() {
        let comma = if i + 1 < recovery_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"pass\": {}, \"detect_us\": {}, \"restore_us\": {}, \"replay_us\": {}, \
             \"replayed_frames\": {}, \"answers_match_sequential\": {}}}{comma}",
            row.pass,
            row.detect_us,
            row.restore_us,
            row.replay_us,
            row.replayed_frames,
            row.matches
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"checkpoint_recovery\": [");
    for (i, row) in ckpt_recovery_rows.iter().enumerate() {
        let comma = if i + 1 < ckpt_recovery_rows.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"restore_us\": {}, \"replayed_frames\": {}, \
             \"answers_match_sequential\": {}}}{comma}",
            row.mode, row.restore_us, row.replayed_frames, row.matches
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"reshard\": [");
    for (i, row) in reshard_rows.iter().enumerate() {
        let comma = if i + 1 < reshard_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"pass\": \"{}\", \"pause_us\": {}, \"paused_subwindows\": {}, \
             \"swap_frames\": {}, \"checkpoint_bytes\": {}, \"replayed_frames\": {}, \
             \"answers_match_sequential\": {}}}{comma}",
            row.pass,
            row.pause_us,
            row.paused_subwindows,
            row.swap_frames,
            row.checkpoint_bytes,
            row.replayed_frames,
            row.matches
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"boundary_cost_us\": [");
    for (i, row) in boundary_rows.iter().enumerate() {
        let comma = if i + 1 < boundary_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"fewk\": {}, \"us_per_boundary\": {:.2}}}{comma}",
            row.backend, row.fewk, row.us_per_boundary
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"fold_ns_per_summary\": [");
    for (i, row) in fold_rows.iter().enumerate() {
        let comma = if i + 1 < fold_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"backend\": \"{}\", \"ns_per_summary\": {:.0}, \
             \"avg_pairs_per_summary\": {:.1}}}{comma}",
            row.dataset, row.backend, row.ns_per_summary, row.avg_pairs
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"codec\": {{\"shards\": {codec_shards}, \"avg_bytes_per_summary\": {avg_bytes:.1}, \
         \"avg_pairs_per_summary\": {avg_pairs:.1}, \"raw_bytes_per_summary\": {raw_bytes:.1}}},"
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"fold_tree_over_dense_normal\": {fold_speedup_normal:.2},"
    );
    let _ = writeln!(
        json,
        "  \"fold_tree_over_dense_pareto\": {fold_speedup_pareto:.2},"
    );
    let _ = writeln!(
        json,
        "  \"dense_distributed4_over_dense_sequential\": {dist_over_seq:.3},"
    );
    let _ = writeln!(
        json,
        "  \"dense_distributed4_over_tree_sequential\": {dist_over_tree_seq:.3}"
    );
    json.push_str("}\n");

    if reports
        .iter()
        .any(|r| r.dist_rows.iter().any(|&(_, _, m)| !m))
        || transport_rows.iter().any(|r| !r.matches)
        || telemetry_rows.iter().any(|r| !r.matches)
        || sessions_rows.iter().any(|r| !r.matches)
        || recovery_rows.iter().any(|r| !r.matches)
        || ckpt_recovery_rows.iter().any(|r| !r.matches)
        || reshard_rows.iter().any(|r| !r.matches)
    {
        eprintln!("bench_merge: distributed answers diverged from sequential");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("bench_merge: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);
}
