//! `bench_merge` — record the cost of mergeable-summary distributed
//! execution per Level-1 store backend as `BENCH_merge.json`, so the
//! merge path's perf trajectory is tracked across PRs alongside
//! `BENCH_ingest.json`.
//!
//! ```text
//! bench_merge [--events N] [--shards a,b,c] [--out PATH] [--smoke]
//! ```
//!
//! Measures, over the quantized Normal stream with the paper-default
//! QLOVE configuration (100K/10K window), for **both** backends (tree
//! and dense):
//!
//! * single-instance batched ingestion throughput (the baseline the
//!   distributed executor must amortize against);
//! * `run_distributed` end-to-end throughput per shard count, verifying
//!   on the way that the merged answers are bit-identical to the
//!   sequential run;
//! * the isolated coordinator merge cost per sub-window boundary
//!   (pre-extracted shard summaries, timed merge loop only) — this
//!   includes the boundary *completion* work (exact quantiles, tail
//!   snapshot, burst test, bounds), which is backend-independent and
//!   dominates at high shard counts;
//! * the isolated **fold** cost per summary — a fresh Level-1 store
//!   per boundary folding each shard summary in, which is the
//!   primitive the backend actually changes (one tree descent per
//!   unique key vs one array add per pair). Measured on the Normal
//!   stream *and* the Pareto stream: quantized Normal summaries hold
//!   ~150 unique pairs (a small, cache-resident tree — its best
//!   case), while Pareto's heavy tail spreads across decades and
//!   makes tree descents pay, which is where the slice-fold win
//!   compounds;
//! * summary codec compactness (bytes per shipped summary vs the raw
//!   16-bytes-per-pair encoding; backend-neutral, measured once).
//!
//! Headline ratios: fold cost per summary, tree over dense (the win of
//! folding sorted pairs into a flat array instead of one tree descent
//! per unique key), and dense-backend distributed throughput at 4
//! shards over both its own sequential run and the tree sequential
//! baseline. The artifact records `host_cpus`: on a single-CPU host
//! distributed execution serializes onto one core and can at best tie
//! sequential ingest (it is the same work plus dealing overhead), so
//! the tree-baseline ratio is the meaningful cross-PR trajectory there,
//! while the own-sequential ratio becomes meaningful on multi-core
//! hosts where shard ingest overlaps coordinator merging.
//!
//! `--smoke` shrinks the run for CI (fewer events, fewer shard counts)
//! while keeping every measurement present in the artifact.

use qlove_core::{Backend, Qlove, QloveAnswer, QloveConfig, QloveShard, QloveSummary};
use qlove_stream::run_distributed;
use qlove_workloads::NormalGen;
use std::fmt::Write as _;
use std::time::Instant;

const WINDOW: usize = 100_000;
const PERIOD: usize = 10_000;
const PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];
const BACKENDS: [(Backend, &str); 2] = [(Backend::Tree, "tree"), (Backend::Dense, "dense")];

struct Args {
    events: usize,
    shards: Vec<usize>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: 2_000_000,
        shards: vec![2, 4, 8],
        out: "BENCH_merge.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("usage: bench_merge [--events N] [--shards a,b,c] [--out PATH] [--smoke]");
                std::process::exit(0);
            }
            "--smoke" => {
                args.events = 300_000;
                args.shards = vec![2, 4];
                i += 1;
                continue;
            }
            flag @ ("--events" | "--shards" | "--out") => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                match flag {
                    "--events" => args.events = value.parse().map_err(|e| format!("{e}"))?,
                    "--shards" => {
                        args.shards = value
                            .split(',')
                            .map(|s| s.trim().parse::<usize>().map_err(|e| format!("{e}")))
                            .collect::<Result<_, _>>()?;
                        if args.shards.contains(&0) {
                            return Err("shard counts must be positive".into());
                        }
                    }
                    _ => args.out = value.clone(),
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.events < WINDOW + PERIOD {
        return Err(format!("need at least {} events", WINDOW + PERIOD));
    }
    Ok(args)
}

/// Deal `data` round-robin into `shards` accumulators, extracting one
/// summary group per sub-window boundary (full boundaries only).
fn deal_summaries(cfg: &QloveConfig, data: &[u64], shards: usize) -> Vec<Vec<QloveSummary>> {
    let mut workers: Vec<QloveShard> = (0..shards).map(|_| QloveShard::new(cfg)).collect();
    let mut groups = Vec::with_capacity(data.len() / cfg.period);
    for sub in data.chunks_exact(cfg.period) {
        for (i, &v) in sub.iter().enumerate() {
            workers[i % shards].push(v);
        }
        groups.push(workers.iter_mut().map(QloveShard::take_summary).collect());
    }
    groups
}

struct BackendReport {
    name: &'static str,
    seq_rate: f64,
    /// Per shard count: (shards, Melem/s, answers match sequential).
    dist_rows: Vec<(usize, f64, bool)>,
    /// Per shard count: (shards, ns/boundary, ns/summary).
    merge_rows: Vec<(usize, f64, f64)>,
}

/// Pure fold cost: (dataset, backend, ns/summary, avg pairs/summary).
struct FoldRow {
    dataset: &'static str,
    backend: &'static str,
    ns_per_summary: f64,
    avg_pairs: f64,
}

/// Store-level fold measurement: a fresh Level-1 store per boundary,
/// each of the boundary group's summaries folded in through
/// `FreqStoreImpl::merge_sorted_counts` — exactly the coordinator's
/// state-combining step, with no boundary-completion work attached.
fn measure_folds(dataset: &'static str, data: &[u64], shards: usize, out: &mut Vec<FoldRow>) {
    use qlove_freqstore::{FreqStore, FreqStoreImpl};
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD);
    let groups = deal_summaries(&cfg, data, shards);
    let n: usize = groups.iter().map(Vec::len).sum();
    let pairs: usize = groups
        .iter()
        .flat_map(|g| g.iter().map(|s| s.counts().len()))
        .sum();
    let avg_pairs = pairs as f64 / n as f64;
    for (name, mut store) in [
        ("tree", FreqStoreImpl::tree(1 << 14)),
        ("dense", FreqStoreImpl::dense(3)),
    ] {
        let start = Instant::now();
        for group in &groups {
            store.clear();
            for summary in group {
                store.merge_sorted_counts(summary.counts());
            }
            std::hint::black_box(store.total());
        }
        let ns_per_summary = start.elapsed().as_nanos() as f64 / n as f64;
        eprintln!(
            "{dataset:>7} {name:>5} fold                  {ns_per_summary:8.0} ns/summary \
             ({avg_pairs:.0} pairs)"
        );
        out.push(FoldRow {
            dataset,
            backend: name,
            ns_per_summary,
            avg_pairs,
        });
    }
}

fn measure_backend(
    backend: Backend,
    name: &'static str,
    data: &[u64],
    shards_list: &[usize],
) -> BackendReport {
    let cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD).backend(backend);

    // Baseline: single-instance batched ingestion.
    let mut single = Qlove::new(cfg.clone());
    let mut seq_answers: Vec<QloveAnswer> = Vec::new();
    let start = Instant::now();
    for chunk in data.chunks(4096) {
        single.push_batch_into(chunk, &mut seq_answers);
    }
    let seq_rate = data.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
    eprintln!("{name:>5} sequential push_batch(4096)      {seq_rate:8.2} Melem/s");

    // Distributed end-to-end, checking bit-identity with the baseline.
    let mut dist_rows: Vec<(usize, f64, bool)> = Vec::new();
    for &shards in shards_list {
        let mut coordinator = Qlove::new(cfg.clone());
        let start = Instant::now();
        let answers = run_distributed(
            || QloveShard::new(&cfg),
            &mut coordinator,
            cfg.period,
            data,
            shards,
        );
        let rate = data.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
        let matches = answers == seq_answers;
        eprintln!(
            "{name:>5} run_distributed({shards} shards)       {rate:8.2} Melem/s  \
             answers_match={matches}"
        );
        dist_rows.push((shards, rate, matches));
    }

    // Isolated merge cost per sub-window boundary.
    let mut merge_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &shards in shards_list {
        let groups = deal_summaries(&cfg, data, shards);
        let boundaries = groups.len();
        let mut coordinator = Qlove::new(cfg.clone());
        let start = Instant::now();
        for group in &groups {
            for summary in group {
                std::hint::black_box(coordinator.merge(summary));
            }
        }
        let total_ns = start.elapsed().as_nanos() as f64;
        let per_boundary = total_ns / boundaries as f64;
        let per_summary = per_boundary / shards as f64;
        eprintln!(
            "{name:>5} merge cost ({shards} shards)           {per_boundary:10.0} ns/boundary \
             ({per_summary:.0} ns/summary)"
        );
        merge_rows.push((shards, per_boundary, per_summary));
    }

    BackendReport {
        name,
        seq_rate,
        dist_rows,
        merge_rows,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_merge: {e}");
            std::process::exit(1);
        }
    };
    let data = NormalGen::generate(7, args.events);

    let reports: Vec<BackendReport> = BACKENDS
        .iter()
        .map(|&(backend, name)| measure_backend(backend, name, &data, &args.shards))
        .collect();

    // Store-level fold cost on both workload families, at the 4-shard
    // (or closest configured) dealing.
    let fold_shards = args.shards.iter().copied().find(|&s| s >= 4).unwrap_or(1);
    let mut fold_rows: Vec<FoldRow> = Vec::new();
    measure_folds("normal", &data, fold_shards, &mut fold_rows);
    let pareto = qlove_workloads::ParetoGen::generate(7, args.events);
    measure_folds("pareto", &pareto, fold_shards, &mut fold_rows);

    // Codec compactness over a representative dealing (4 shards or the
    // largest configured count below that). Summaries are backend-
    // neutral sorted pairs, so one backend suffices.
    let codec_shards = args.shards.iter().copied().find(|&s| s >= 4).unwrap_or(1);
    let codec_cfg = QloveConfig::new(&PHIS, WINDOW, PERIOD);
    let groups = deal_summaries(&codec_cfg, &data, codec_shards);
    let (mut bytes, mut pairs, mut n) = (0usize, 0usize, 0usize);
    for group in &groups {
        for summary in group {
            bytes += summary.to_bytes().len();
            pairs += summary.counts().len();
            n += 1;
        }
    }
    let avg_bytes = bytes as f64 / n as f64;
    let avg_pairs = pairs as f64 / n as f64;
    let raw_bytes = avg_pairs * 16.0;
    eprintln!(
        "codec ({codec_shards} shards)              {avg_bytes:8.1} B/summary vs \
         {raw_bytes:.1} B raw ({avg_pairs:.0} pairs)"
    );

    // Headline ratios at the 4-shard (or closest) configuration.
    let tree = &reports[0];
    let dense = &reports[1];
    let fold_of = |dataset: &str, backend: &str| {
        fold_rows
            .iter()
            .find(|r| r.dataset == dataset && r.backend == backend)
            .map(|r| r.ns_per_summary)
            .unwrap_or(f64::NAN)
    };
    let fold_speedup_normal = fold_of("normal", "tree") / fold_of("normal", "dense");
    let fold_speedup_pareto = fold_of("pareto", "tree") / fold_of("pareto", "dense");
    let dense_dist4 = dense
        .dist_rows
        .iter()
        .find(|r| r.0 == 4)
        .or(dense.dist_rows.last())
        .map(|r| r.1)
        .unwrap_or(f64::NAN);
    let dist_over_seq = dense_dist4 / dense.seq_rate;
    let dist_over_tree_seq = dense_dist4 / tree.seq_rate;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("fold ns/summary tree / dense (normal):     {fold_speedup_normal:.2}x");
    eprintln!("fold ns/summary tree / dense (pareto):     {fold_speedup_pareto:.2}x");
    eprintln!("dense distributed(4) / dense sequential:   {dist_over_seq:.2}x");
    eprintln!("dense distributed(4) / tree sequential:    {dist_over_tree_seq:.2}x  (host_cpus={host_cpus})");

    // Hand-rolled JSON: the workspace deliberately has no serde.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"merge\",");
    let _ = writeln!(json, "  \"window\": {WINDOW},");
    let _ = writeln!(json, "  \"period\": {PERIOD},");
    let _ = writeln!(json, "  \"events\": {},", args.events);
    let _ = writeln!(
        json,
        "  \"phis\": [{}],",
        PHIS.map(|p| p.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (bi, report) in reports.iter().enumerate() {
        let name = report.name;
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{name}\", \"mode\": \"sequential\", \"shards\": 1, \
             \"melems_per_sec\": {:.3}}},",
            report.seq_rate
        );
        for (i, (shards, rate, matches)) in report.dist_rows.iter().enumerate() {
            let last = bi + 1 == reports.len() && i + 1 == report.dist_rows.len();
            let comma = if last { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"backend\": \"{name}\", \"mode\": \"distributed\", \"shards\": {shards}, \
                 \"melems_per_sec\": {rate:.3}, \"answers_match_sequential\": {matches}}}{comma}"
            );
        }
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"merge_cost_per_boundary\": [");
    for (bi, report) in reports.iter().enumerate() {
        for (i, (shards, per_boundary, per_summary)) in report.merge_rows.iter().enumerate() {
            let last = bi + 1 == reports.len() && i + 1 == report.merge_rows.len();
            let comma = if last { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"backend\": \"{}\", \"shards\": {shards}, \"ns_per_boundary\": \
                 {per_boundary:.0}, \"ns_per_summary\": {per_summary:.0}}}{comma}",
                report.name
            );
        }
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"fold_ns_per_summary\": [");
    for (i, row) in fold_rows.iter().enumerate() {
        let comma = if i + 1 < fold_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"backend\": \"{}\", \"ns_per_summary\": {:.0}, \
             \"avg_pairs_per_summary\": {:.1}}}{comma}",
            row.dataset, row.backend, row.ns_per_summary, row.avg_pairs
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"codec\": {{\"shards\": {codec_shards}, \"avg_bytes_per_summary\": {avg_bytes:.1}, \
         \"avg_pairs_per_summary\": {avg_pairs:.1}, \"raw_bytes_per_summary\": {raw_bytes:.1}}},"
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"fold_tree_over_dense_normal\": {fold_speedup_normal:.2},"
    );
    let _ = writeln!(
        json,
        "  \"fold_tree_over_dense_pareto\": {fold_speedup_pareto:.2},"
    );
    let _ = writeln!(
        json,
        "  \"dense_distributed4_over_dense_sequential\": {dist_over_seq:.3},"
    );
    let _ = writeln!(
        json,
        "  \"dense_distributed4_over_tree_sequential\": {dist_over_tree_seq:.3}"
    );
    json.push_str("}\n");

    if reports
        .iter()
        .any(|r| r.dist_rows.iter().any(|&(_, _, m)| !m))
    {
        eprintln!("bench_merge: distributed answers diverged from sequential");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("bench_merge: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out);
}
