//! # qlove-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index) plus Criterion micro-benchmarks. This library holds the shared
//! measurement machinery:
//!
//! * [`harness::measure_accuracy`] — drive any [`qlove_stream::QuantilePolicy`] over a
//!   dataset, comparing each emission against ground-truth quantiles of
//!   the same window, accumulating the paper's two accuracy metrics
//!   (average relative value error %, average normalized rank error) and
//!   peak observed space.
//! * [`harness::measure_throughput`] — single-thread events/second over
//!   a dataset, matching §5.1's "million elements per second processed
//!   for a single thread".
//! * [`table`] — fixed-width table rendering for harness stdout, with
//!   optional paper-reference columns so every run shows
//!   measured-vs-paper side by side.
//! * [`configs`] — the paper's standard experiment configurations
//!   (Table 1's 16K/128K query, Figure 4's 1K/100K query, …) so
//!   binaries and tests agree on parameters.
//! * [`gate`] — the perf-regression gate: parse `BENCH_*.json`
//!   artifacts and compare a fresh run against the committed baseline
//!   (the tested core of the `bench_gate` binary CI runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod experiments;
pub mod gate;
pub mod harness;
pub mod table;

pub use harness::{
    measure_accuracy, measure_throughput, measure_throughput_batched, AccuracyReport, PhiAccuracy,
};
