//! Fixed-width table rendering for harness stdout.
//!
//! Every experiment binary prints its results in the same visual shape
//! as the paper's table, with an optional "paper" reference column so a
//! run immediately shows whether the measured *shape* (orderings,
//! ratios, crossovers) reproduces.

/// A simple left-header table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Render with per-column auto-widths.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:>width$}", s, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `prec` decimals (harness cells).
pub fn f(x: f64, prec: usize) -> String {
    if x.is_nan() {
        "–".into()
    } else {
        format!("{x:.prec$}")
    }
}

/// Format in scientific notation (Table 5's 1e-5-scale errors).
pub fn sci(x: f64) -> String {
    if x.is_nan() {
        "–".into()
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["policy", "err%"]);
        t.row(["QLOVE", "0.10"]).row(["CMQS", "13.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("policy"));
        assert!(lines[3].contains("CMQS"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("0.10"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(f64::NAN, 2), "–");
        assert_eq!(sci(3.46e-5), "3.46e-5");
    }
}
