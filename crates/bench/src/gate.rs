//! Perf-regression gate: compare a freshly measured `BENCH_*.json`
//! artifact against a committed baseline and fail on regressions.
//!
//! The bench binaries (`bench_ingest`, `bench_merge`) emit hand-rolled
//! JSON artifacts that are committed at the repo root as the perf
//! baseline. The CI `perf-gate` job re-measures with `--smoke` and runs
//! `bench_gate`, which uses this module to:
//!
//! 1. parse both artifacts ([`parse_json`] — a minimal JSON reader,
//!    since the workspace deliberately has no serde);
//! 2. flatten each into named metrics with a regression *direction*
//!    ([`extract_metrics`]): throughput rows regress by **dropping**,
//!    cost rows (`ns_per_boundary`, `us_per_boundary`,
//!    `ns_per_summary`) regress by **rising**;
//! 3. join on metric name and flag any fresh value beyond the
//!    tolerance band ([`compare`], default ±25%).
//!
//! Metrics present in only one artifact are reported but never fail the
//! gate: baselines predate newly added measurements (e.g.
//! `boundary_cost_us` landed after the first committed artifacts), and
//! retired measurements shouldn't wedge CI. The comparison logic lives
//! here — in tested library code — rather than in workflow shell.

use std::fmt;

/// A parsed JSON value (the subset the bench artifacts use).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64 — bench metrics are all f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and a short
/// message — enough to debug a malformed artifact, no more.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    // Collect raw bytes, validate as UTF-8 once at the end — multi-byte
    // sequences (e.g. "µs" in a future label) survive intact.
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => b'"',
                    b'\\' => b'\\',
                    b'/' => b'/',
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    // The artifacts never emit \b \f \uXXXX; reject
                    // rather than silently mangle.
                    other => return Err(format!("unsupported escape '\\{}'", *other as char)),
                });
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Which way a metric regresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a regression is the fresh value **dropping**
    /// below baseline.
    HigherIsBetter,
    /// Cost-like: a regression is the fresh value **rising** above
    /// baseline.
    LowerIsBetter,
}

/// One gated measurement extracted from an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable join key built from the row's identifying fields, e.g.
    /// `merge/boundary_cost_us/backend=dense/fewk=true`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Regression direction.
    pub direction: Direction,
}

/// Render a row's identifying fields (everything except the measured
/// values) as a stable `key=value` join suffix.
fn row_key(row: &Json, fields: &[&str]) -> String {
    let mut out = String::new();
    for field in fields {
        if let Some(v) = row.get(field) {
            let rendered = match v {
                Json::Str(s) => s.clone(),
                Json::Num(n) => format!("{n}"),
                Json::Bool(b) => format!("{b}"),
                other => format!("{other:?}"),
            };
            out.push_str(&format!("/{field}={rendered}"));
        }
    }
    out
}

/// Flatten an artifact into its gated metrics. Unknown sections are
/// ignored (forward compatibility); known sections contribute:
///
/// * `results[]` → `melems_per_sec` (higher is better), keyed by the
///   row's dataset/backend/mode/batch/shards fields;
/// * `merge_cost_per_boundary[]` → `ns_per_boundary` (lower is better);
/// * `boundary_cost_us[]` → `us_per_boundary` (lower is better);
/// * `transport[]` → `melems_per_sec` (higher is better), keyed by
///   transport family and shard count.
///
/// Derived headline ratios and the codec section are deliberately not
/// gated: they re-derive from the gated rows, and double-counting them
/// would double the flake surface. `fold_ns_per_summary` is recorded
/// in the artifact but not gated either — a sub-2 µs store-level
/// microbenchmark whose run-to-run noise on 1-CPU runners exceeds the
/// tolerance band, and whose work is already inside the gated boundary
/// rows. The transport rows' `overlap_us_per_boundary` is likewise
/// recorded but ungated: overlap only exists with real parallelism, so
/// on the 1-CPU CI runner it reads ~0 µs and gating it would be pure
/// noise (the throughput row of the same run *is* gated). The
/// `recovery` section (supervised-recovery detect/restore/replay
/// costs from an injected worker crash) is report-only by the same
/// design: recovery is off the failure-free hot path, so its timings
/// must never wedge a perf gate that exists to protect that path —
/// and `checkpoint_recovery` (mmap remap-restore vs classic replay on
/// the shm data plane) is report-only for exactly the same reason,
/// while the shm *throughput* rows in `transport[]` stay gated like
/// uds/tcp. The `telemetry_overhead` section (the instrumented vs
/// uninstrumented twin of a transport row) is report-only too: the
/// instrumented run already IS the gated configuration — metrics are
/// on by default in every gated transport row — so gating the twin
/// would double-count the same noise, while the recorded pair still
/// documents that the registry costs nothing measurable.
pub fn extract_metrics(doc: &Json) -> Vec<Metric> {
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let mut out = Vec::new();
    let sections: [(&str, &str, Direction, &[&str]); 4] = [
        (
            "results",
            "melems_per_sec",
            Direction::HigherIsBetter,
            &["dataset", "backend", "mode", "batch", "shards"],
        ),
        (
            "merge_cost_per_boundary",
            "ns_per_boundary",
            Direction::LowerIsBetter,
            &["backend", "shards"],
        ),
        (
            "boundary_cost_us",
            "us_per_boundary",
            Direction::LowerIsBetter,
            &["backend", "fewk"],
        ),
        (
            "transport",
            "melems_per_sec",
            Direction::HigherIsBetter,
            &["transport", "shards"],
        ),
    ];
    for (section, value_field, direction, key_fields) in sections {
        let Some(rows) = doc.get(section).and_then(Json::as_arr) else {
            continue;
        };
        for row in rows {
            let Some(value) = row.get(value_field).and_then(Json::as_num) else {
                continue;
            };
            out.push(Metric {
                name: format!("{experiment}/{section}{}", row_key(row, key_fields)),
                value,
                direction,
            });
        }
    }
    out
}

/// One compared metric in a [`GateReport`].
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Metric name (join key).
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// `fresh / baseline`.
    pub ratio: f64,
    /// Regression direction of this metric.
    pub direction: Direction,
    /// `true` when the fresh value regressed beyond tolerance.
    pub regressed: bool,
}

/// Outcome of gating one fresh artifact against one baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Metrics present in both artifacts, compared.
    pub compared: Vec<Comparison>,
    /// Metric names only in the baseline (retired measurements).
    pub only_baseline: Vec<String>,
    /// Metric names only in the fresh artifact (new measurements).
    pub only_fresh: Vec<String>,
}

impl GateReport {
    /// `true` when no compared metric regressed beyond tolerance.
    pub fn passed(&self) -> bool {
        self.compared.iter().all(|c| !c.regressed)
    }

    /// Compared metrics that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &Comparison> {
        self.compared.iter().filter(|c| c.regressed)
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.compared {
            let verdict = if c.regressed { "REGRESSED" } else { "ok" };
            writeln!(
                f,
                "{verdict:>9}  {:<72} {:>12.3} -> {:>12.3}  ({:+.1}%)",
                c.name,
                c.baseline,
                c.fresh,
                (c.ratio - 1.0) * 100.0
            )?;
        }
        for name in &self.only_fresh {
            writeln!(f, "      new  {name}")?;
        }
        for name in &self.only_baseline {
            writeln!(f, "  retired  {name}")?;
        }
        Ok(())
    }
}

/// Gate `fresh` against `baseline` at the given relative `tolerance`
/// (0.25 = fail beyond ±25%): throughput metrics fail when they drop
/// more than `tolerance` below baseline, cost metrics fail when they
/// rise more than `tolerance` above it. Improvements never fail.
pub fn compare(baseline: &[Metric], fresh: &[Metric], tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    for b in baseline {
        let Some(f) = fresh.iter().find(|f| f.name == b.name) else {
            report.only_baseline.push(b.name.clone());
            continue;
        };
        // Guard degenerate baselines (0 or NaN would make every ratio
        // meaningless): such rows compare as non-regressed but visible.
        let ratio = if b.value > 0.0 {
            f.value / b.value
        } else {
            1.0
        };
        let regressed = match b.direction {
            Direction::HigherIsBetter => ratio < 1.0 - tolerance,
            Direction::LowerIsBetter => ratio > 1.0 + tolerance,
        };
        report.compared.push(Comparison {
            name: b.name.clone(),
            baseline: b.value,
            fresh: f.value,
            ratio,
            direction: b.direction,
            regressed,
        });
    }
    for f in fresh {
        if !baseline.iter().any(|b| b.name == f.name) {
            report.only_fresh.push(f.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
      "experiment": "merge",
      "events": 2000000,
      "results": [
        {"backend": "tree", "mode": "sequential", "shards": 1, "melems_per_sec": 35.754},
        {"backend": "dense", "mode": "distributed", "shards": 4, "melems_per_sec": 61.151, "answers_match_sequential": true}
      ],
      "merge_cost_per_boundary": [
        {"backend": "dense", "shards": 4, "ns_per_boundary": 41886, "ns_per_summary": 10472}
      ],
      "boundary_cost_us": [
        {"backend": "dense", "fewk": true, "us_per_boundary": 52.0},
        {"backend": "dense", "fewk": false, "us_per_boundary": 4.2}
      ],
      "transport": [
        {"transport": "uds", "shards": 4, "melems_per_sec": 18.0, "overlap_us_per_boundary": 0.0, "merge_hidden_pct": 0.0, "answers_match_sequential": true}
      ]
    }"#;

    fn degraded(throughput: f64, boundary: f64) -> String {
        format!(
            r#"{{
              "experiment": "merge",
              "results": [
                {{"backend": "tree", "mode": "sequential", "shards": 1, "melems_per_sec": {throughput}}},
                {{"backend": "dense", "mode": "distributed", "shards": 4, "melems_per_sec": 60.0}}
              ],
              "merge_cost_per_boundary": [
                {{"backend": "dense", "shards": 4, "ns_per_boundary": 42000, "ns_per_summary": 10500}}
              ],
              "boundary_cost_us": [
                {{"backend": "dense", "fewk": true, "us_per_boundary": {boundary}}},
                {{"backend": "dense", "fewk": false, "us_per_boundary": 4.0}}
              ]
            }}"#
        )
    }

    fn gate(baseline: &str, fresh: &str) -> GateReport {
        let b = extract_metrics(&parse_json(baseline).unwrap());
        let f = extract_metrics(&parse_json(fresh).unwrap());
        compare(&b, &f, 0.25)
    }

    #[test]
    fn parser_round_trips_a_real_artifact() {
        let doc = parse_json(BASELINE).unwrap();
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("merge"));
        assert_eq!(doc.get("events").and_then(Json::as_num), Some(2_000_000.0));
        let rows = doc.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].get("answers_match_sequential"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_json(r#"{"a": 1e}"#).is_err());
        assert!(parse_json(r#"["unterminated"#).is_err());
    }

    #[test]
    fn parser_preserves_multibyte_utf8_and_escapes() {
        let doc = parse_json(r#"{"unit": "µs/boundary", "esc": "a\tb\n\"c\""}"#).unwrap();
        assert_eq!(doc.get("unit").and_then(Json::as_str), Some("µs/boundary"));
        assert_eq!(doc.get("esc").and_then(Json::as_str), Some("a\tb\n\"c\""));
    }

    #[test]
    fn metrics_carry_names_and_directions() {
        let metrics = extract_metrics(&parse_json(BASELINE).unwrap());
        assert_eq!(metrics.len(), 6);
        let tput = metrics
            .iter()
            .find(|m| m.name == "merge/results/backend=tree/mode=sequential/shards=1")
            .unwrap();
        assert_eq!(tput.direction, Direction::HigherIsBetter);
        assert_eq!(tput.value, 35.754);
        let cost = metrics
            .iter()
            .find(|m| m.name == "merge/boundary_cost_us/backend=dense/fewk=true")
            .unwrap();
        assert_eq!(cost.direction, Direction::LowerIsBetter);
        assert_eq!(cost.value, 52.0);
    }

    #[test]
    fn identical_artifacts_pass() {
        let report = gate(BASELINE, BASELINE);
        assert!(report.passed());
        assert_eq!(report.compared.len(), 6);
        assert!(report.only_fresh.is_empty());
        assert!(report.only_baseline.is_empty());
    }

    #[test]
    fn within_tolerance_drift_passes() {
        // -20% throughput and +20% boundary cost: inside the ±25% band.
        let report = gate(BASELINE, &degraded(28.7, 62.0));
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn throughput_collapse_fails() {
        let report = gate(BASELINE, &degraded(20.0, 52.0));
        assert!(!report.passed());
        let names: Vec<&str> = report.regressions().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["merge/results/backend=tree/mode=sequential/shards=1"]
        );
    }

    #[test]
    fn boundary_cost_increase_fails() {
        let report = gate(BASELINE, &degraded(35.0, 70.0));
        assert!(!report.passed());
        assert!(report
            .regressions()
            .any(|c| c.name == "merge/boundary_cost_us/backend=dense/fewk=true"));
    }

    #[test]
    fn improvements_never_fail() {
        // 3× throughput, boundary cost cut 4×: the gate is one-sided.
        let report = gate(BASELINE, &degraded(100.0, 13.0));
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn missing_and_new_metrics_are_reported_not_fatal() {
        // Fresh artifact lacks boundary_cost_us (old binary) and brings
        // a measurement row the baseline predates.
        let fresh = r#"{
          "experiment": "merge",
          "results": [
            {"backend": "tree", "mode": "sequential", "shards": 1, "melems_per_sec": 35.0},
            {"backend": "dense", "mode": "distributed", "shards": 16, "melems_per_sec": 50.0}
          ]
        }"#;
        let report = gate(BASELINE, fresh);
        assert!(report.passed());
        assert_eq!(report.compared.len(), 1);
        assert_eq!(report.only_baseline.len(), 5);
        assert_eq!(
            report.only_fresh,
            ["merge/results/backend=dense/mode=distributed/shards=16"]
        );
    }

    #[test]
    fn fold_rows_are_recorded_but_not_gated() {
        // Store-level fold microbenchmarks are too noisy for the band
        // on 1-CPU runners; they must not appear among gated metrics.
        let with_fold = r#"{
          "experiment": "merge",
          "fold_ns_per_summary": [
            {"dataset": "pareto", "backend": "dense", "ns_per_summary": 1541}
          ],
          "boundary_cost_us": [
            {"backend": "dense", "fewk": true, "us_per_boundary": 16.8}
          ]
        }"#;
        let metrics = extract_metrics(&parse_json(with_fold).unwrap());
        assert_eq!(metrics.len(), 1);
        assert!(metrics[0].name.starts_with("merge/boundary_cost_us"));
    }

    #[test]
    fn recovery_rows_are_recorded_but_not_gated() {
        // Supervised-recovery timings ride in the artifact for
        // observability, but recovery is off the failure-free hot
        // path: the gate must not read the section, so a slow (or
        // fast) recovery can never flip the perf verdict.
        let with_recovery = r#"{
          "experiment": "merge",
          "recovery": [
            {"pass": 0, "detect_us": 120, "restore_us": 800, "replay_us": 300, "replayed_frames": 12, "answers_match_sequential": true}
          ],
          "transport": [
            {"transport": "uds", "shards": 4, "melems_per_sec": 18.0, "answers_match_sequential": true}
          ]
        }"#;
        let metrics = extract_metrics(&parse_json(with_recovery).unwrap());
        assert_eq!(metrics.len(), 1);
        assert!(metrics[0].name.starts_with("merge/transport"));
    }

    #[test]
    fn reshard_rows_are_recorded_but_not_gated() {
        // Live-resharding swap costs ride in the artifact for
        // observability, but a reshard is a one-off control-plane
        // event off the steady-state hot path: the gate must not read
        // the section, so swap-cost jitter can never flip the perf
        // verdict. Steady-state socket throughput stays gated through
        // the transport rows in the same artifact.
        let with_reshard = r#"{
          "experiment": "merge",
          "reshard": [
            {"pass": "split", "pause_us": 410, "paused_subwindows": 1, "swap_frames": 7, "checkpoint_bytes": 1220, "replayed_frames": 0, "answers_match_sequential": true},
            {"pass": "split+kill", "pause_us": 460, "paused_subwindows": 1, "swap_frames": 7, "checkpoint_bytes": 1220, "replayed_frames": 9, "answers_match_sequential": true}
          ],
          "transport": [
            {"transport": "uds", "shards": 4, "melems_per_sec": 18.0, "answers_match_sequential": true}
          ]
        }"#;
        let metrics = extract_metrics(&parse_json(with_reshard).unwrap());
        assert_eq!(metrics.len(), 1);
        assert!(metrics[0].name.starts_with("merge/transport"));
    }

    #[test]
    fn shm_transport_rows_are_gated_like_uds_and_tcp() {
        // The shm data plane's throughput rows must sit under the same
        // ±25% higher-is-better gate as the socket transports: the
        // whole point of the zero-copy ring is closing the socket tax,
        // and an ungated row could silently give that win back.
        let with_shm = r#"{
          "experiment": "merge",
          "transport": [
            {"transport": "uds", "shards": 2, "melems_per_sec": 42.0, "answers_match_sequential": true},
            {"transport": "shm", "shards": 2, "melems_per_sec": 70.0, "answers_match_sequential": true}
          ]
        }"#;
        let metrics = extract_metrics(&parse_json(with_shm).unwrap());
        let shm = metrics
            .iter()
            .find(|m| m.name == "merge/transport/transport=shm/shards=2")
            .expect("shm transport row must be a gated metric");
        assert_eq!(shm.direction, Direction::HigherIsBetter);
        assert_eq!(shm.value, 70.0);
        // A beyond-tolerance collapse of only the shm row fails the
        // gate, exactly like a uds/tcp regression would.
        let degraded = r#"{
          "experiment": "merge",
          "transport": [
            {"transport": "uds", "shards": 2, "melems_per_sec": 42.0, "answers_match_sequential": true},
            {"transport": "shm", "shards": 2, "melems_per_sec": 40.0, "answers_match_sequential": true}
          ]
        }"#;
        let report = gate(with_shm, degraded);
        assert!(!report.passed());
        let names: Vec<&str> = report.regressions().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["merge/transport/transport=shm/shards=2"]);
    }

    #[test]
    fn checkpoint_recovery_rows_are_recorded_but_not_gated() {
        // Remap-vs-replay restore timings ride in the artifact for
        // observability, but restore — like `recovery` — is off the
        // failure-free hot path: the gate must never read the section,
        // so a slow restore can't flip the perf verdict. The shm
        // throughput rows in `transport[]` stay gated instead.
        let with_ckpt = r#"{
          "experiment": "merge",
          "checkpoint_recovery": [
            {"mode": "remap", "restore_us": 350, "replayed_frames": 12, "answers_match_sequential": true},
            {"mode": "replay", "restore_us": 900, "replayed_frames": 12, "answers_match_sequential": true}
          ],
          "transport": [
            {"transport": "shm", "shards": 2, "melems_per_sec": 70.0, "answers_match_sequential": true}
          ]
        }"#;
        let metrics = extract_metrics(&parse_json(with_ckpt).unwrap());
        assert_eq!(metrics.len(), 1);
        assert!(metrics[0].name.starts_with("merge/transport"));
    }

    #[test]
    fn telemetry_overhead_rows_are_recorded_but_not_gated() {
        // The telemetry on/off twin rides in the artifact to document
        // that instrumentation is free, but the gated configuration IS
        // the instrumented one (metrics default on in every transport
        // row), so gating the twin would double-count the same noise.
        // The transport rows of the same artifact must stay gated —
        // they are what holds instrumented throughput to ±25%.
        let with_telemetry = r#"{
          "experiment": "merge",
          "telemetry_overhead": [
            {"enabled": true, "melems_per_sec": 17.8, "answers_match_sequential": true},
            {"enabled": false, "melems_per_sec": 18.1, "answers_match_sequential": true}
          ],
          "transport": [
            {"transport": "uds", "shards": 4, "melems_per_sec": 18.0, "answers_match_sequential": true}
          ]
        }"#;
        let metrics = extract_metrics(&parse_json(with_telemetry).unwrap());
        assert_eq!(metrics.len(), 1);
        assert!(metrics[0].name.starts_with("merge/transport"));
        // And a collapse of the gated transport row still fails even
        // with the telemetry section present.
        let degraded = r#"{
          "experiment": "merge",
          "telemetry_overhead": [
            {"enabled": true, "melems_per_sec": 17.8, "answers_match_sequential": true}
          ],
          "transport": [
            {"transport": "uds", "shards": 4, "melems_per_sec": 9.0, "answers_match_sequential": true}
          ]
        }"#;
        let report = gate(with_telemetry, degraded);
        assert!(!report.passed());
        let names: Vec<&str> = report.regressions().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["merge/transport/transport=uds/shards=4"]);
    }

    #[test]
    fn sessions_rows_are_recorded_but_not_gated() {
        // The sessions/process scaling curve rides in the artifact for
        // observability, but on the 1-CPU CI host it measures scheduler
        // fairness, not speedup — its run-to-run noise must never flip
        // the perf verdict. Single-session socket throughput stays
        // gated through the transport rows in the same artifact.
        let with_sessions = r#"{
          "experiment": "merge",
          "sessions": [
            {"sessions": 1, "melems_per_sec": 11.0, "us_per_session": 55000.0, "answers_match_sequential": true},
            {"sessions": 64, "melems_per_sec": 9.0, "us_per_session": 980.0, "answers_match_sequential": true}
          ],
          "transport": [
            {"transport": "uds", "shards": 4, "melems_per_sec": 18.0, "answers_match_sequential": true}
          ]
        }"#;
        let metrics = extract_metrics(&parse_json(with_sessions).unwrap());
        assert_eq!(metrics.len(), 1);
        assert!(metrics[0].name.starts_with("merge/transport"));
    }

    #[test]
    fn disjoint_metric_names_compare_nothing() {
        // `passed()` is trivially true on zero overlap — callers (the
        // bench_gate binary) must treat an empty `compared` list as a
        // configuration error, not a green gate.
        let b = [Metric {
            name: "merge/results/backend=dense".into(),
            value: 60.0,
            direction: Direction::HigherIsBetter,
        }];
        let f = [Metric {
            name: "merge/results/backend=flat".into(),
            value: 1.0,
            direction: Direction::HigherIsBetter,
        }];
        let report = compare(&b, &f, 0.25);
        assert!(report.compared.is_empty());
        assert_eq!(report.only_baseline.len(), 1);
        assert_eq!(report.only_fresh.len(), 1);
        assert!(
            report.passed(),
            "vacuous pass is the caller's hazard to guard"
        );
    }

    #[test]
    fn zero_baseline_rows_never_divide() {
        let b = [Metric {
            name: "x".into(),
            value: 0.0,
            direction: Direction::HigherIsBetter,
        }];
        let f = [Metric {
            name: "x".into(),
            value: 5.0,
            direction: Direction::HigherIsBetter,
        }];
        let report = compare(&b, &f, 0.25);
        assert!(report.passed());
        assert!(report.compared[0].ratio.is_finite());
    }
}
