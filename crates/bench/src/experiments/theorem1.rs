//! Theorem 1 empirical coverage: on i.i.d. (and AR(1)) normal data, the
//! observed |y_a − y_e| must fall within the reported 95% bound — the
//! paper states "empirical probabilities that the absolute errors are
//! within the corresponding error bounds are always 1" across ψ and φ.

use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_rbtree::FreqTree;
use qlove_workloads::Ar1Gen;
use std::collections::VecDeque;

const PHIS: [f64; 5] = [0.1, 0.3, 0.5, 0.9, 0.99];
const PSIS: [f64; 3] = [0.0, 0.2, 0.8];

/// Run the coverage study with `events` samples per ψ.
pub fn run(events: usize) -> String {
    let (w, p) = (64_000, 8_000);
    let events = events.max(w * 3);

    let mut out = super::header(
        "Theorem 1 — empirical coverage of the 95% CLT error bound",
        &format!(
            "AR(1) marginal N(1M, 50K²), window {w}, period {p}, {events} \
             events per ψ; paper: coverage is 1 for every ψ and φ"
        ),
    );
    let mut t = Table::new(["psi", "phi", "coverage", "mean |err|", "mean bound"]);
    for &psi in &PSIS {
        let data = Ar1Gen::generate(101, psi, events);
        let cfg = QloveConfig::without_fewk(&PHIS, w, p).quantize(None);
        let mut q = Qlove::new(cfg);

        let mut truth: FreqTree<u64> = FreqTree::new();
        let mut live: VecDeque<u64> = VecDeque::with_capacity(w + 1);
        let mut covered = vec![0usize; PHIS.len()];
        let mut total = vec![0usize; PHIS.len()];
        let mut sum_err = vec![0.0f64; PHIS.len()];
        let mut sum_bound = vec![0.0f64; PHIS.len()];

        for &v in &data {
            truth.insert(v, 1);
            live.push_back(v);
            if live.len() > w {
                truth.remove(live.pop_front().unwrap(), 1).unwrap();
            }
            if let Some(ans) = q.push_detailed(v) {
                for (j, &phi) in PHIS.iter().enumerate() {
                    let Some(b) = &ans.bounds[j] else { continue };
                    let exact = truth.quantile(phi).unwrap() as f64;
                    let err = (ans.values[j] as f64 - exact).abs();
                    total[j] += 1;
                    sum_err[j] += err;
                    sum_bound[j] += b.half_width;
                    if b.covers(err) {
                        covered[j] += 1;
                    }
                }
            }
        }
        for (j, &phi) in PHIS.iter().enumerate() {
            if total[j] == 0 {
                continue;
            }
            t.row([
                format!("{psi}"),
                format!("{phi}"),
                f(covered[j] as f64 / total[j] as f64, 3),
                f(sum_err[j] / total[j] as f64, 1),
                f(sum_bound[j] / total[j] as f64, 1),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}
