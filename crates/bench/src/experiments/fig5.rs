//! Figure 5: scalability — throughput of QLOVE vs Exact as the window
//! grows from 1K to 100M elements (1K period) on the Normal and Uniform
//! synthetic datasets.
//!
//! Shape to reproduce: QLOVE's throughput is flat across window sizes;
//! Exact collapses as soon as the window slides (deaccumulation +
//! whole-window state), with the paper quoting ~79% degradation already
//! at a 10K window.
//!
//! Default sweep stops at 1M (laptop-friendly); pass a larger `events`
//! (e.g. via `--scale`) to extend — window sizes are capped so that
//! `window·2 ≤ events`.

use crate::harness::measure_throughput_streaming;
use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::ExactPolicy;
use qlove_workloads::{NormalGen, UniformGen};

const WINDOWS: [usize; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];
const PERIOD: usize = 1_000;

/// Run the sweep; `events` bounds both stream length and max window.
pub fn run(events: usize) -> String {
    let events = events.max(200_000);
    let phis = [0.5, 0.9, 0.99, 0.999];

    let mut out = super::header(
        "Figure 5 — scalability: throughput vs window size (1K period)",
        &format!(
            "Normal(1M, 50K) and Uniform(90..110) streams, {events} events \
             per point; paper shape: QLOVE flat, Exact degrades once sliding"
        ),
    );
    for dataset in ["Normal", "Uniform"] {
        out.push_str(&format!("\n[{dataset}]\n"));
        let mut t = Table::new(["window", "QLOVE M ev/s", "Exact M ev/s", "QLOVE/Exact"]);
        for &w in &WINDOWS {
            if w * 2 > events {
                continue;
            }
            let stream = |seed: u64| -> Box<dyn Iterator<Item = u64>> {
                match dataset {
                    "Normal" => Box::new(NormalGen::paper(seed).take(events)),
                    _ => Box::new(UniformGen::paper(seed).take(events)),
                }
            };
            let mut qlove = Qlove::new(QloveConfig::without_fewk(&phis, w, PERIOD));
            let tq = measure_throughput_streaming(&mut qlove, stream(33));
            let mut exact = ExactPolicy::new(&phis, w, PERIOD);
            let te = measure_throughput_streaming(&mut exact, stream(33));
            t.row([
                w.to_string(),
                f(tq, 3),
                f(te, 3),
                format!("{:.1}x", tq / te),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// The window sizes the sweep covers for a given event budget (used by
/// tests to know what to expect).
pub fn windows_for(events: usize) -> Vec<usize> {
    WINDOWS
        .iter()
        .copied()
        .filter(|w| w * 2 <= events)
        .collect()
}
