//! Table 3: top-k merging — average relative error (and few-k cache
//! size) for budget fractions 0.1 and 0.5 of the exact tail requirement,
//! at Q0.999, window 128K, periods 8K → 1K on NetMon.
//!
//! Shape to reproduce: fraction 0.5 is near-exact everywhere; fraction
//! 0.1 lands around the ≈5% NetMon accuracy target; both crush the
//! no-few-k errors of Table 2.

use crate::configs::*;
use crate::harness::measure_accuracy;
use crate::table::{f, Table};
use qlove_core::{fewk::tail_need, FewKConfig, Qlove, QloveConfig};

/// Paper's Table 3: err% (cache entries) per fraction × period.
const PAPER: [[f64; 4]; 2] = [
    [5.54, 2.43, 1.67, 1.30], // fraction 0.1
    [0.68, 0.40, 0.36, 0.35], // fraction 0.5
];

/// Run the sweep over `events` NetMon samples.
pub fn run(events: usize) -> String {
    let data = super::netmon(events.max(TABLE1_WINDOW * 2));
    let (w, phi) = (TABLE1_WINDOW, 0.999);

    let mut out = super::header(
        "Table 3 — top-k merging: Q0.999 value error (cache entries)",
        &format!(
            "NetMon ({} events), window {w}, exact tail need N(1−φ) = {}",
            data.len(),
            tail_need(w, phi)
        ),
    );
    let mut t = Table::new([
        "fraction", "8K", "4K", "2K", "1K", " ", "paper@8K", "paper@1K",
    ]);
    for (fi, &fraction) in TABLE3_FRACTIONS.iter().enumerate() {
        let mut row: Vec<String> = vec![format!("{fraction}")];
        for &period in &TABLE3_PERIODS {
            let fewk = FewKConfig::with_fractions(fraction, 0.0);
            let cfg = QloveConfig::new(&[phi], w, period).fewk(Some(fewk));
            let mut q = Qlove::new(cfg);
            let r = measure_accuracy(&mut q, &data, w);
            let cache = ((tail_need(w, phi) as f64 * fraction).ceil() as usize) * (w / period);
            row.push(format!(
                "{} ({cache})",
                f(r.per_phi[0].avg_value_err_pct, 2)
            ));
        }
        row.push(String::new());
        row.push(f(PAPER[fi][0], 2));
        row.push(f(PAPER[fi][3], 2));
        t.row(row);
    }
    out.push_str(&t.render());
    out
}
