//! Table 4: sample-k merging under injected bursty traffic — average
//! relative error (and sample space) for sampling fractions 0, 0.1, 0.5
//! at Q0.99/Q0.999, window 128K, periods 16K and 4K.
//!
//! Burst injection follows §5.3: the top `N(1−φ)` elements of every
//! `(N/P)`-th sub-window are multiplied by 10, so exactly one burst is
//! live in every evaluation of the sliding window. Shape to reproduce:
//! fraction 0 is catastrophic (tens of percent at Q0.999, and Q0.99
//! compromised at the 4K period), fraction 0.5 repairs both to ~1–2%.

use crate::configs::*;
use crate::harness::measure_accuracy;
use crate::table::{f, Table};
use qlove_core::{fewk::tail_need, FewKConfig, Qlove, QloveConfig};
use qlove_workloads::burst::inject_burst;

/// Paper's Table 4: rows = fraction, cols = (16K Q0.99, 16K Q0.999,
/// 4K Q0.99, 4K Q0.999).
const PAPER: [[f64; 4]; 3] = [
    [0.08, 44.10, 28.15, 55.36],
    [0.14, 25.97, 0.43, 17.38],
    [0.05, 1.75, 0.30, 1.52],
];

/// Run the sweep over `events` burst-injected NetMon samples.
pub fn run(events: usize) -> String {
    let w = TABLE1_WINDOW;
    let phis = [0.99, 0.999];
    let base = super::netmon(events.max(w * 2));

    let mut out = super::header(
        "Table 4 — sample-k merging under bursty traffic: value error",
        &format!(
            "NetMon ({} events) with 10× bursts on the top N(1−0.999) of \
             every (N/P)-th sub-window; window {w}",
            base.len()
        ),
    );
    let mut t = Table::new([
        "fraction",
        "16K Q.99",
        "16K Q.999",
        "4K Q.99",
        "4K Q.999",
        " ",
        "paper 16K Q.999",
        "paper 4K Q.999",
    ]);
    for (fi, &fraction) in TABLE4_FRACTIONS.iter().enumerate() {
        let mut cells: Vec<String> = vec![format!("{fraction}")];
        for &period in &TABLE4_PERIODS {
            // Fresh burst-injected copy per period (bursts align with P).
            let mut data = base.clone();
            inject_burst(&mut data, w, period, 0.999, 10);
            let fewk = if fraction > 0.0 {
                Some(FewKConfig::with_fractions(0.0, fraction))
            } else {
                None
            };
            let cfg = QloveConfig::new(&phis, w, period).fewk(fewk);
            let mut q = Qlove::new(cfg);
            let r = measure_accuracy(&mut q, &data, w);
            for (qi, &phi) in phis.iter().enumerate() {
                let space = ((tail_need(w, phi) as f64 * fraction).ceil() as usize) * (w / period);
                cells.push(format!(
                    "{} ({space})",
                    f(r.per_phi[qi].avg_value_err_pct, 2)
                ));
            }
        }
        cells.push(String::new());
        cells.push(f(PAPER[fi][1], 2));
        cells.push(f(PAPER[fi][3], 2));
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}
