//! Figure 1: histogram of 100K NetMon latency values, x-axis cut at
//! 10,000 µs "due to a very long tail", plus the §1 summary statistics
//! (median 798, 90% below 1,247, max up to 74,265, heavy redundancy).

use qlove_stats::Histogram;
use qlove_workloads::transform::unique_fraction;

/// Build the histogram over `events` values (paper uses 100K).
pub fn run(events: usize) -> String {
    let n = events.clamp(10_000, 1_000_000);
    let data = super::netmon(n);

    let mut h = Histogram::new(0.0, 10_000.0, 25);
    h.record_all(data.iter().map(|&v| v as f64));

    let mut sorted = data.clone();
    sorted.sort_unstable();
    let q = |phi| qlove_stats::quantile_sorted(&sorted, phi);

    let mut out = super::header(
        "Figure 1 — NetMon latency histogram (x-axis cut at 10,000 µs)",
        &format!("{n} values; paper anchors: median 798, P90 1,247, max 74,265"),
    );
    out.push_str(&h.render_ascii(60));
    out.push_str(&format!(
        "\nmedian = {}   P90 = {}   P99 = {}   P99.9 = {}   max = {}\n\
         unique fraction = {:.4} (paper: heavy redundancy, 0.08% unique \
         over a one-hour window)\n",
        q(0.5),
        q(0.9),
        q(0.99),
        q(0.999),
        sorted.last().unwrap(),
        unique_fraction(&data),
    ));
    out
}
