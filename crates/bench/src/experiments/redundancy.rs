//! §5.4 data redundancy: throughput gain from low-precision (100 µs)
//! variants of NetMon and Search — two low-order digits dropped — for a
//! tumbling 1K window and a sliding 100K/1K query.
//!
//! Paper shape: clear gains everywhere; bigger gains on sliding windows
//! (tree stays smaller for both accumulate and deaccumulate); NetMon
//! gains more than Search (more of its values collide at 100 µs
//! precision). Quantization is disabled in the operator so the gain
//! isolates the *dataset* precision effect, as in the paper.

use crate::harness::measure_throughput;
use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::ExactPolicy;
use qlove_stream::QuantilePolicy;
use qlove_workloads::transform::drop_low_digits;
use qlove_workloads::SearchGen;

/// Run the study over `events` samples per dataset.
pub fn run(events: usize) -> String {
    let events = events.max(400_000);
    let phis = [0.5, 0.9, 0.99, 0.999];
    let queries: [(&str, usize, usize); 2] = [
        ("tumbling 1K", 1_000, 1_000),
        ("sliding 100K/1K", 100_000, 1_000),
    ];

    let mut out = super::header(
        "§5.4 data redundancy — low-precision (drop 2 digits) speedup",
        &format!(
            "{events} events per dataset; paper: 2.7×/1.8× tumbling gains \
             (NetMon/Search), 3.7–4.6× sliding"
        ),
    );
    let mut t = Table::new([
        "dataset",
        "query",
        "policy",
        "orig M ev/s",
        "lowprec M ev/s",
        "gain",
    ]);
    for dataset in ["NetMon", "Search"] {
        let original: Vec<u64> = match dataset {
            "NetMon" => super::netmon(events),
            _ => SearchGen::generate(super::NETMON_SEED, events),
        };
        let mut lowprec = original.clone();
        drop_low_digits(&mut lowprec, 2);

        for &(qname, w, p) in &queries {
            for policy_name in ["QLOVE", "Exact"] {
                let make = |_: &str| -> Box<dyn QuantilePolicy> {
                    match policy_name {
                        "QLOVE" => Box::new(Qlove::new(
                            QloveConfig::without_fewk(&phis, w, p).quantize(None),
                        )),
                        _ => Box::new(ExactPolicy::new(&phis, w, p)),
                    }
                };
                let mut a = make("orig");
                let t_orig = measure_throughput(a.as_mut(), &original);
                let mut b = make("low");
                let t_low = measure_throughput(b.as_mut(), &lowprec);
                t.row([
                    dataset.to_string(),
                    qname.to_string(),
                    policy_name.to_string(),
                    f(t_orig, 3),
                    f(t_low, 3),
                    format!("{:.2}x", t_low / t_orig),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out
}
