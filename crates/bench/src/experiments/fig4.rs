//! Figure 4: single-thread throughput of QLOVE vs CMQS at ε ∈
//! {1×, 5×, 10×} vs Exact, on NetMon with a 1K period / 100K window
//! query answering the four Qmonitor quantiles.
//!
//! Shape to reproduce: QLOVE above Exact and every CMQS setting;
//! CMQS(1×) *below* Exact (aggressive ε costs more than exact
//! computation); CMQS recovering with looser ε but never reaching QLOVE.

use crate::configs::*;
use crate::harness::measure_throughput;
use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::{CmqsPolicy, ExactPolicy};
use qlove_stream::QuantilePolicy;

/// Run the comparison over `events` NetMon samples.
pub fn run(events: usize) -> String {
    let data = super::netmon(events.max(FIG4_WINDOW * 2));
    let (w, p) = (FIG4_WINDOW, FIG4_PERIOD);
    let phis = &QMONITOR_PHIS;
    let base_eps = 0.02;

    let mut policies: Vec<(String, Box<dyn QuantilePolicy>)> = vec![
        (
            "QLOVE".into(),
            Box::new(Qlove::new(QloveConfig::without_fewk(phis, w, p))),
        ),
        (
            "CMQS(1x)".into(),
            Box::new(CmqsPolicy::new(phis, w, p, base_eps)),
        ),
        (
            "CMQS(5x)".into(),
            Box::new(CmqsPolicy::new(phis, w, p, base_eps * 5.0)),
        ),
        (
            "CMQS(10x)".into(),
            Box::new(CmqsPolicy::new(phis, w, p, base_eps * 10.0)),
        ),
        ("Exact".into(), Box::new(ExactPolicy::new(phis, w, p))),
    ];

    let mut out = super::header(
        "Figure 4 — throughput comparison (M events/s, single thread)",
        &format!(
            "NetMon ({} events), window {w}, period {p}; paper shape: \
             QLOVE > CMQS(10x) > CMQS(5x) > Exact > CMQS(1x)",
            data.len()
        ),
    );
    let mut t = Table::new(["policy", "M ev/s", "vs Exact"]);
    let mut rows = Vec::new();
    let mut exact_tput = 0.0;
    for (name, policy) in policies.iter_mut() {
        let tput = measure_throughput(policy.as_mut(), &data);
        if name == "Exact" {
            exact_tput = tput;
        }
        rows.push((name.clone(), tput));
    }
    for (name, tput) in rows {
        t.row([name, f(tput, 3), format!("{:.2}x", tput / exact_tput)]);
    }
    out.push_str(&t.render());
    out
}
