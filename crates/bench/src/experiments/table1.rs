//! Table 1: accuracy (value + rank error) and space usage of the five
//! approximation policies on NetMon, 16K period / 128K window,
//! ε = 0.02, Moment K = 12. Few-k merging is disabled in QLOVE here,
//! exactly as §5.2 does ("We disable few-k merging in QLOVE until
//! Section 5.3").

use crate::configs::*;
use crate::harness::measure_accuracy;
use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::{AmPolicy, CmqsPolicy, MomentPolicy, RandomPolicy};
use qlove_stream::QuantilePolicy;

/// Paper's Table 1 reference rows (value error %, Q0.5/Q0.9/Q0.99/Q0.999
/// and observed space), for side-by-side shape comparison.
const PAPER: &[(&str, [f64; 4], usize)] = &[
    ("QLOVE", [0.10, 0.06, 0.78, 4.40], 3_340),
    ("CMQS", [0.31, 0.26, 1.78, 28.47], 31_194),
    ("AM", [0.24, 0.20, 0.94, 13.25], 36_253),
    ("Random", [0.20, 0.20, 1.00, 16.69], 68_001),
    ("Moment", [0.98, 0.28, 0.76, 9.30], 16_596),
];

/// Run the experiment over `events` NetMon samples.
pub fn run(events: usize) -> String {
    let data = super::netmon(events.max(TABLE1_WINDOW * 2));
    let (w, p, eps) = (TABLE1_WINDOW, TABLE1_PERIOD, TABLE1_EPSILON);
    let phis = &QMONITOR_PHIS;

    let mut policies: Vec<Box<dyn QuantilePolicy>> = vec![
        Box::new(Qlove::new(QloveConfig::without_fewk(phis, w, p))),
        Box::new(CmqsPolicy::new(phis, w, p, eps)),
        Box::new(AmPolicy::new(phis, w, p, eps)),
        // Reservoir sized to the paper's *observed* Random space budget
        // (68,001 variables over 8 sub-windows ≈ 8,500 samples each);
        // `from_epsilon`'s theoretical 1/ε² sizing is far smaller and
        // produces much worse tails than the system the paper measured.
        Box::new(RandomPolicy::with_reservoir(phis, w, p, 8_500, 0xDA7A)),
        Box::new(MomentPolicy::new(phis, w, p, TABLE1_MOMENT_K)),
    ];

    let mut out = super::header(
        "Table 1 — accuracy & space of five approximation policies",
        &format!(
            "NetMon ({} events), window {w}, period {p}, ε = {eps}, Moment K = {}",
            data.len(),
            TABLE1_MOMENT_K
        ),
    );
    let mut t = Table::new([
        "policy",
        "e'(.5)",
        "e'(.9)",
        "e'(.99)",
        "e'(.999)",
        "val%(.5)",
        "val%(.9)",
        "val%(.99)",
        "val%(.999)",
        "space",
    ]);
    for policy in policies.iter_mut() {
        let name = policy.name();
        let r = measure_accuracy(policy.as_mut(), &data, w);
        t.row([
            name.to_string(),
            f(r.per_phi[0].avg_rank_err, 4),
            f(r.per_phi[1].avg_rank_err, 4),
            f(r.per_phi[2].avg_rank_err, 4),
            f(r.per_phi[3].avg_rank_err, 4),
            f(r.per_phi[0].avg_value_err_pct, 2),
            f(r.per_phi[1].avg_value_err_pct, 2),
            f(r.per_phi[2].avg_value_err_pct, 2),
            f(r.per_phi[3].avg_value_err_pct, 2),
            r.peak_space.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nPaper (value error %, observed space) for shape comparison:\n");
    let mut pt = Table::new([
        "policy",
        "val%(.5)",
        "val%(.9)",
        "val%(.99)",
        "val%(.999)",
        "space",
    ]);
    for (name, errs, space) in PAPER {
        pt.row([
            name.to_string(),
            f(errs[0], 2),
            f(errs[1], 2),
            f(errs[2], 2),
            f(errs[3], 2),
            space.to_string(),
        ]);
    }
    out.push_str(&pt.render());
    out
}
