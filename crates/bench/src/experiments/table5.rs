//! Table 5: robustness to non-i.i.d. data — average relative errors for
//! AR(1) streams with correlation ψ ∈ {0, 0.2, 0.8} at Q0.5/Q0.9/Q0.99.
//!
//! Shape to reproduce: errors in the 1e-5…1e-3 range (the normal
//! marginal is extremely dense), rising only mildly with ψ — Level-2
//! aggregation survives dependence.

use crate::configs::*;
use crate::harness::measure_accuracy;
use crate::table::{sci, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_workloads::Ar1Gen;

/// Paper's Table 5 (relative error as a fraction, not %).
const PAPER: [[f64; 3]; 3] = [
    [3.46e-5, 1.23e-4, 8.88e-4],
    [3.47e-5, 1.39e-4, 9.84e-4],
    [5.66e-5, 3.35e-4, 1.56e-3],
];

/// Run the sweep with `events` samples per ψ.
pub fn run(events: usize) -> String {
    let (w, p) = (TABLE1_WINDOW, TABLE1_PERIOD);
    let events = events.max(w * 2);

    let mut out = super::header(
        "Table 5 — QLOVE on AR(1) non-i.i.d. data: relative error",
        &format!("marginal N(1M, 50K²), window {w}, period {p}, {events} events per ψ"),
    );
    let mut t = Table::new([
        "psi",
        "Q0.5",
        "Q0.9",
        "Q0.99",
        " ",
        "paper Q0.5",
        "paper Q0.9",
        "paper Q0.99",
    ]);
    for (pi, &psi) in TABLE5_PSIS.iter().enumerate() {
        let data = Ar1Gen::generate(77, psi, events);
        // Quantization off: the paper's 1e-5-scale errors are far below
        // the 3-digit quantization floor.
        let cfg = QloveConfig::without_fewk(&TABLE5_PHIS, w, p).quantize(None);
        let mut q = Qlove::new(cfg);
        let r = measure_accuracy(&mut q, &data, w);
        t.row([
            format!("{psi}"),
            sci(r.per_phi[0].avg_value_err_pct / 100.0),
            sci(r.per_phi[1].avg_value_err_pct / 100.0),
            sci(r.per_phi[2].avg_value_err_pct / 100.0),
            String::new(),
            sci(PAPER[pi][0]),
            sci(PAPER[pi][1]),
            sci(PAPER[pi][2]),
        ]);
    }
    out.push_str(&t.render());
    out
}
