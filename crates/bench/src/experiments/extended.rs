//! Extended comparison (beyond the paper): QLOVE against the modern
//! sketch landscape — DDSketch (bounded relative value error), KLL
//! (optimal rank error), CKMS high-biased (relative rank error at the
//! tail) — on the Table-1 NetMon query.
//!
//! The question this answers: does QLOVE's workload-driven design still
//! earn its keep against a sketch that *guarantees* the value-error
//! metric (DDSketch)? Expected outcome: DDSketch matches or beats
//! QLOVE's tail accuracy (that is its contract) at comparable space,
//! while KLL reproduces the rank-error failure mode and CKMS sits in
//! between — the interesting trade-off being QLOVE's extra abilities
//! (burst provenance, error bounds) rather than raw numbers.

use crate::configs::*;
use crate::harness::{measure_accuracy, measure_throughput};
use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::{CkmsPolicy, DdSketchPolicy, KllPolicy, TDigestPolicy};
use qlove_stream::QuantilePolicy;

/// Run the extended comparison over `events` NetMon samples.
pub fn run(events: usize) -> String {
    let (w, p) = (TABLE1_WINDOW, TABLE1_PERIOD);
    let phis = &QMONITOR_PHIS;
    let data = super::netmon(events.max(w * 2));

    type Factory = Box<dyn Fn() -> Box<dyn QuantilePolicy>>;
    let make: Vec<(&str, Factory)> = vec![
        (
            "QLOVE",
            Box::new(move || Box::new(Qlove::new(QloveConfig::new(phis, w, p)))),
        ),
        (
            "DDSketch(1%)",
            Box::new(move || Box::new(DdSketchPolicy::new(phis, w, p, 0.01))),
        ),
        (
            "KLL(k=200)",
            Box::new(move || Box::new(KllPolicy::new(phis, w, p, 200, 0xC0FFEE))),
        ),
        (
            "CKMS(2%)",
            Box::new(move || Box::new(CkmsPolicy::new(phis, w, p, 0.02))),
        ),
        (
            "t-digest(200)",
            Box::new(move || Box::new(TDigestPolicy::new(phis, w, p, 200.0))),
        ),
    ];

    let mut out = super::header(
        "Extended — QLOVE vs the modern sketch landscape (not in paper)",
        &format!(
            "NetMon ({} events), window {w}, period {p}; DDSketch \
             guarantees ≤1% relative value error by construction",
            data.len()
        ),
    );
    let mut t = Table::new([
        "policy",
        "val%(.5)",
        "val%(.9)",
        "val%(.99)",
        "val%(.999)",
        "space",
        "M ev/s",
    ]);
    for (name, factory) in &make {
        let mut policy = factory();
        let acc = measure_accuracy(policy.as_mut(), &data, w);
        let mut fresh = factory();
        let tput = measure_throughput(fresh.as_mut(), &data);
        t.row([
            name.to_string(),
            f(acc.per_phi[0].avg_value_err_pct, 2),
            f(acc.per_phi[1].avg_value_err_pct, 2),
            f(acc.per_phi[2].avg_value_err_pct, 2),
            f(acc.per_phi[3].avg_value_err_pct, 2),
            acc.peak_space.to_string(),
            f(tput, 2),
        ]);
    }
    out.push_str(&t.render());
    out
}
