//! §5.3 few-k throughput: the cost of the tail caches at the most
//! resource-demanding query (1K period, 128K window, Q0.999) as the
//! caching fraction grows.
//!
//! Paper shape: fraction 1.0 costs ~21% throughput vs no few-k;
//! fraction 0.2 recovers to ~9% while already achieving ~0.6% error.

use crate::configs::*;
use crate::harness::{measure_accuracy, measure_throughput};
use crate::table::{f, Table};
use qlove_core::{FewKConfig, Qlove, QloveConfig};

const FRACTIONS: [f64; 4] = [0.0, 0.2, 0.5, 1.0];

/// Run the sweep over `events` NetMon samples.
pub fn run(events: usize) -> String {
    let (w, p, phi) = (TABLE1_WINDOW, 1_000, 0.999);
    let data = super::netmon(events.max(w * 2));

    let mut out = super::header(
        "§5.3 few-k throughput — caching fraction vs speed and accuracy",
        &format!(
            "NetMon ({} events), window {w}, period {p}, Q{phi}; paper: \
             21.2% penalty at fraction 1, 9.0% at 0.2 (err 0.6%)",
            data.len()
        ),
    );
    let mut t = Table::new(["fraction", "M ev/s", "penalty", "val err %"]);
    let mut base_tput = 0.0;
    for &fraction in &FRACTIONS {
        let fewk = (fraction > 0.0).then(|| FewKConfig::with_fractions(fraction, 0.0));
        let cfg = QloveConfig::new(&[phi], w, p).fewk(fewk);
        let mut q = Qlove::new(cfg.clone());
        let tput = measure_throughput(&mut q, &data);
        if fraction == 0.0 {
            base_tput = tput;
        }
        let mut q2 = Qlove::new(cfg);
        let acc = measure_accuracy(&mut q2, &data, w);
        t.row([
            format!("{fraction}"),
            f(tput, 3),
            format!("{:+.1}%", (tput / base_tput - 1.0) * 100.0),
            f(acc.per_phi[0].avg_value_err_pct, 2),
        ]);
    }
    out.push_str(&t.render());
    out
}
