//! Table 2: QLOVE's average relative value error **without few-k
//! merging** for period sizes 64K → 1K at a 128K window on NetMon.
//! The paper's finding to reproduce: Q0.5/Q0.9 stay below 1% at every
//! period, while Q0.999 degrades sharply as periods shrink (statistical
//! inefficiency), reaching ~19% at 1K.

use crate::configs::*;
use crate::harness::measure_accuracy;
use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};

/// Paper's Table 2 (value error %, rows = quantile, cols = period).
pub const PAPER: [[f64; 7]; 4] = [
    [0.04, 0.06, 0.10, 0.15, 0.22, 0.28, 0.35],
    [0.03, 0.04, 0.06, 0.08, 0.10, 0.14, 0.27],
    [0.13, 0.27, 0.78, 1.27, 1.73, 2.27, 3.39],
    [1.82, 3.31, 4.40, 7.04, 10.46, 10.55, 18.93],
];

/// Run the sweep over `events` NetMon samples; returns the rendered
/// report and (via [`run_matrix`]) the measured error matrix.
pub fn run(events: usize) -> String {
    let (report, _) = run_matrix(events);
    report
}

/// Like [`run`] but also returns `errors[phi_idx][period_idx]` for
/// integration tests.
pub fn run_matrix(events: usize) -> (String, Vec<Vec<f64>>) {
    let data = super::netmon(events.max(TABLE1_WINDOW * 2));
    let w = TABLE1_WINDOW;
    let phis = &QMONITOR_PHIS;
    let mut errors = vec![vec![f64::NAN; TABLE2_PERIODS.len()]; phis.len()];

    for (pi, &period) in TABLE2_PERIODS.iter().enumerate() {
        let mut q = Qlove::new(QloveConfig::without_fewk(phis, w, period));
        let r = measure_accuracy(&mut q, &data, w);
        for (qi, pa) in r.per_phi.iter().enumerate() {
            errors[qi][pi] = pa.avg_value_err_pct;
        }
    }

    let mut out = super::header(
        "Table 2 — QLOVE value error without few-k vs period size",
        &format!(
            "NetMon ({} events), window {w}, periods 64K → 1K",
            data.len()
        ),
    );
    let mut t = Table::new([
        "quantile",
        "64K",
        "32K",
        "16K",
        "8K",
        "4K",
        "2K",
        "1K",
        " ",
        "paper@16K",
        "paper@1K",
    ]);
    for (qi, &phi) in phis.iter().enumerate() {
        let mut row: Vec<String> = vec![format!("{phi}")];
        row.extend(errors[qi].iter().map(|&e| f(e, 2)));
        row.push(String::new());
        row.push(f(PAPER[qi][2], 2));
        row.push(f(PAPER[qi][6], 2));
        t.row(row);
    }
    out.push_str(&t.render());
    (out, errors)
}
