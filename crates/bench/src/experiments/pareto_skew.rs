//! §5.4 data skewness: on the Pareto dataset (Q0.5 = 20, Q0.999 =
//! 10,000, α = 1), compare Q0.999 value error of QLOVE vs AM vs Random
//! at the Table-1 query (16K period, 128K window).
//!
//! Paper numbers: QLOVE 4.00%, AM 29.22%, Random 35.17% — rank-bounded
//! sketches blow up when tail value gaps are wide.

use crate::configs::*;
use crate::harness::measure_accuracy;
use crate::table::{f, Table};
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::{AmPolicy, RandomPolicy};
use qlove_stream::QuantilePolicy;
use qlove_workloads::ParetoGen;

/// Run the comparison over `events` Pareto samples.
pub fn run(events: usize) -> String {
    let (w, p, eps) = (TABLE1_WINDOW, TABLE1_PERIOD, TABLE1_EPSILON);
    let data = ParetoGen::generate(99, events.max(w * 2));
    let phis = &QMONITOR_PHIS;

    let mut policies: Vec<Box<dyn QuantilePolicy>> = vec![
        Box::new(Qlove::new(QloveConfig::new(phis, w, p))),
        Box::new(AmPolicy::new(phis, w, p, eps)),
        Box::new(RandomPolicy::from_epsilon(phis, w, p, eps)),
    ];

    let mut out = super::header(
        "§5.4 data skewness — Pareto dataset, Q0.999 value error",
        &format!(
            "Pareto(xm=10, α=1) ({} events), window {w}, period {p}; \
             paper: QLOVE 4.00%, AM 29.22%, Random 35.17%",
            data.len()
        ),
    );
    let mut t = Table::new(["policy", "val%(.5)", "val%(.9)", "val%(.99)", "val%(.999)"]);
    for policy in policies.iter_mut() {
        let name = policy.name();
        let r = measure_accuracy(policy.as_mut(), &data, w);
        t.row([
            name.to_string(),
            f(r.per_phi[0].avg_value_err_pct, 2),
            f(r.per_phi[1].avg_value_err_pct, 2),
            f(r.per_phi[2].avg_value_err_pct, 2),
            f(r.per_phi[3].avg_value_err_pct, 2),
        ]);
    }
    out.push_str(&t.render());
    out
}
