//! One module per table/figure of the paper. Each exposes
//! `run(events) -> String` returning the rendered report, so the thin
//! binaries and the `experiments_all` runner share identical logic.

pub mod extended;
pub mod fewk_throughput;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod pareto_skew;
pub mod redundancy;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod theorem1;

/// Shared seed so every experiment sees the same NetMon trace.
pub(crate) const NETMON_SEED: u64 = 42;

/// Generate the shared NetMon stand-in trace.
pub(crate) fn netmon(events: usize) -> Vec<u64> {
    qlove_workloads::NetMonGen::generate(NETMON_SEED, events)
}

/// Section header used by every report.
pub(crate) fn header(title: &str, detail: &str) -> String {
    format!("\n=== {title} ===\n{detail}\n\n")
}
