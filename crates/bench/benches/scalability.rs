//! Criterion micro-version of Figure 5: QLOVE vs Exact per-event cost
//! as the sliding window grows (1K period). The full sweep with larger
//! windows lives in the `fig5_scalability` binary; this keeps a
//! regression-checked core of the scalability claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::ExactPolicy;
use qlove_stream::QuantilePolicy;
use qlove_workloads::NormalGen;

const PERIOD: usize = 1_000;
const WINDOWS: [usize; 3] = [10_000, 100_000, 400_000];

fn bench_scalability(c: &mut Criterion) {
    let phis = [0.5, 0.9, 0.99, 0.999];
    let mut group = c.benchmark_group("fig5_scalability");
    group.sample_size(10);

    for &window in &WINDOWS {
        let events = window * 2 + 100_000;
        let data = NormalGen::generate(33, events);
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::new("qlove", window), &data, |b, data| {
            b.iter(|| {
                let mut q = Qlove::new(QloveConfig::without_fewk(&phis, window, PERIOD));
                let mut out = 0usize;
                for &v in data {
                    if q.push(v).is_some() {
                        out += 1;
                    }
                }
                out
            });
        });
        group.bench_with_input(BenchmarkId::new("exact", window), &data, |b, data| {
            b.iter(|| {
                let mut e = ExactPolicy::new(&phis, window, PERIOD);
                let mut out = 0usize;
                for &v in data {
                    if e.push(v).is_some() {
                        out += 1;
                    }
                }
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
