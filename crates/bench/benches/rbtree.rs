//! Ablation: the arena frequency red-black tree against
//! `BTreeMap<u64, u64>` for Level-1 accumulation and quantile queries.
//! DESIGN.md calls this decision out; the tree must win (or at least
//! tie) on the accumulate-heavy telemetry pattern to justify itself —
//! and only the tree gives O(log u) rank selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qlove_rbtree::FreqTree;
use qlove_workloads::{transform::quantize_sig_digits, NetMonGen};
use std::collections::BTreeMap;

const N: usize = 100_000;

fn bench_accumulate(c: &mut Criterion) {
    let data: Vec<u64> = NetMonGen::generate(7, N)
        .into_iter()
        .map(|v| quantize_sig_digits(v, 3))
        .collect();
    let mut group = c.benchmark_group("level1_accumulate");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    group.bench_with_input(BenchmarkId::from_parameter("freqtree"), &data, |b, d| {
        b.iter(|| {
            let mut t = FreqTree::new();
            for &v in d {
                t.insert(v, 1);
            }
            t.total()
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("btreemap"), &data, |b, d| {
        b.iter(|| {
            let mut m: BTreeMap<u64, u64> = BTreeMap::new();
            for &v in d {
                *m.entry(v).or_insert(0) += 1;
            }
            m.len()
        });
    });
    group.finish();
}

fn bench_multi_quantile(c: &mut Criterion) {
    let phis = [0.5, 0.9, 0.99, 0.999];
    let mut tree = FreqTree::new();
    let mut map: BTreeMap<u64, u64> = BTreeMap::new();
    for v in NetMonGen::generate(7, N) {
        let v = quantize_sig_digits(v, 3);
        tree.insert(v, 1);
        *map.entry(v).or_insert(0) += 1;
    }
    let total: u64 = map.values().sum();

    let mut group = c.benchmark_group("compute_result");
    group.sample_size(30);
    group.bench_function("freqtree_single_pass", |b| {
        b.iter(|| tree.quantiles(&phis).unwrap());
    });
    group.bench_function("freqtree_select_per_phi", |b| {
        b.iter(|| -> Vec<u64> { phis.iter().map(|&p| tree.quantile(p).unwrap()).collect() });
    });
    group.bench_function("btreemap_scan", |b| {
        b.iter(|| -> Vec<u64> {
            phis.iter()
                .map(|&phi| {
                    let rank = (phi * total as f64).ceil() as u64;
                    let mut acc = 0;
                    for (&k, &c) in &map {
                        acc += c;
                        if acc >= rank {
                            return k;
                        }
                    }
                    unreachable!()
                })
                .collect()
        });
    });
    group.finish();
}

fn bench_sliding_deaccumulate(c: &mut Criterion) {
    // The Exact baseline's hot loop: insert new + remove expired.
    let data: Vec<u64> = NetMonGen::generate(11, N);
    let window = 20_000;
    let mut group = c.benchmark_group("sliding_deaccumulate");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);
    group.bench_function("freqtree", |b| {
        b.iter(|| {
            let mut t = FreqTree::new();
            for (i, &v) in data.iter().enumerate() {
                t.insert(v, 1);
                if i >= window {
                    t.remove(data[i - window], 1).unwrap();
                }
            }
            t.total()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_accumulate,
    bench_multi_quantile,
    bench_sliding_deaccumulate
);
criterion_main!(benches);
