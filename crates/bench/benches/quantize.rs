//! Ablation: §3.1 value quantization. More duplicate density → smaller
//! Level-1 tree → faster accumulation (the §5.4 redundancy effect), at
//! the cost of ≤1% value error. Measures the full QLOVE operator with
//! quantization on and off, plus the raw quantization primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qlove_core::{Qlove, QloveConfig};
use qlove_stream::QuantilePolicy;
use qlove_workloads::{transform::quantize_sig_digits, NetMonGen, NormalGen};

const EVENTS: usize = 200_000;
const WINDOW: usize = 50_000;
const PERIOD: usize = 5_000;

fn bench_operator_quantization(c: &mut Criterion) {
    let phis = [0.5, 0.9, 0.99, 0.999];
    let mut group = c.benchmark_group("quantization_ablation");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    for (dataset, data) in [
        ("netmon", NetMonGen::generate(5, EVENTS)),
        ("normal", NormalGen::generate(5, EVENTS)),
    ] {
        for (mode, digits) in [("quantized3", Some(3)), ("raw", None)] {
            group.bench_with_input(BenchmarkId::new(dataset, mode), &data, |b, data| {
                b.iter(|| {
                    let cfg = QloveConfig::without_fewk(&phis, WINDOW, PERIOD).quantize(digits);
                    let mut q = Qlove::new(cfg);
                    let mut out = 0usize;
                    for &v in data {
                        if q.push(v).is_some() {
                            out += 1;
                        }
                    }
                    out
                });
            });
        }
    }
    group.finish();
}

fn bench_quantize_primitive(c: &mut Criterion) {
    let data = NetMonGen::generate(9, EVENTS);
    let mut group = c.benchmark_group("quantize_primitive");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.bench_function("quantize_sig_digits_3", |b| {
        b.iter(|| -> u64 { data.iter().map(|&v| quantize_sig_digits(v, 3)).sum() });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_operator_quantization,
    bench_quantize_primitive
);
criterion_main!(benches);
