//! Criterion micro-version of Figure 4: per-event cost of each policy
//! on the NetMon workload at a sliding 100K/1K query.
//!
//! Run with `cargo bench -p qlove-bench --bench throughput`; the
//! `fig4_throughput` binary produces the full-table version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qlove_bench::configs::QMONITOR_PHIS;
use qlove_core::{Qlove, QloveConfig};
use qlove_sketches::{CmqsPolicy, ExactPolicy, MomentPolicy, RandomPolicy};
use qlove_stream::QuantilePolicy;
use qlove_workloads::NetMonGen;

const WINDOW: usize = 100_000;
const PERIOD: usize = 1_000;
const EVENTS: usize = 300_000;

type PolicyFactory = Box<dyn FnMut() -> Box<dyn QuantilePolicy>>;

fn policies() -> Vec<(&'static str, PolicyFactory)> {
    let phis = &QMONITOR_PHIS;
    vec![
        (
            "qlove",
            Box::new(move || {
                Box::new(Qlove::new(QloveConfig::without_fewk(phis, WINDOW, PERIOD)))
                    as Box<dyn QuantilePolicy>
            }),
        ),
        (
            "qlove_fewk",
            Box::new(move || {
                Box::new(Qlove::new(QloveConfig::new(phis, WINDOW, PERIOD)))
                    as Box<dyn QuantilePolicy>
            }),
        ),
        (
            "cmqs_1x",
            Box::new(move || {
                Box::new(CmqsPolicy::new(phis, WINDOW, PERIOD, 0.02)) as Box<dyn QuantilePolicy>
            }),
        ),
        (
            "cmqs_10x",
            Box::new(move || {
                Box::new(CmqsPolicy::new(phis, WINDOW, PERIOD, 0.2)) as Box<dyn QuantilePolicy>
            }),
        ),
        (
            "random",
            Box::new(move || {
                Box::new(RandomPolicy::from_epsilon(phis, WINDOW, PERIOD, 0.02))
                    as Box<dyn QuantilePolicy>
            }),
        ),
        (
            "moment_k12",
            Box::new(move || {
                Box::new(MomentPolicy::new(phis, WINDOW, PERIOD, 12)) as Box<dyn QuantilePolicy>
            }),
        ),
        (
            "exact",
            Box::new(move || {
                Box::new(ExactPolicy::new(phis, WINDOW, PERIOD)) as Box<dyn QuantilePolicy>
            }),
        ),
    ]
}

fn bench_policies(c: &mut Criterion) {
    let data = NetMonGen::generate(42, EVENTS);
    let mut group = c.benchmark_group("fig4_throughput");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);
    for (name, mut make) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            b.iter(|| {
                let mut p = make();
                let mut emitted = 0usize;
                for &v in data {
                    if p.push(v).is_some() {
                        emitted += 1;
                    }
                }
                emitted
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
