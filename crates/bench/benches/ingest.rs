//! Criterion micro-benchmark for the batched ingestion fast path:
//! per-element `push` versus `push_batch` at several batch sizes, on a
//! quantized Normal stream and a heavy-tailed Pareto stream.
//!
//! Run with `cargo bench -p qlove-bench --bench ingest`. The
//! `bench_ingest` binary emits the same comparison as
//! `BENCH_ingest.json` for cross-PR tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qlove_core::{Qlove, QloveConfig};
use qlove_workloads::{NormalGen, ParetoGen};

const WINDOW: usize = 100_000;
const PERIOD: usize = 10_000;
const EVENTS: usize = 300_000;
const PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];
const BATCH_SIZES: [usize; 3] = [64, 1024, 4096];

fn config() -> QloveConfig {
    QloveConfig::new(&PHIS, WINDOW, PERIOD)
}

fn bench_ingest(c: &mut Criterion) {
    let datasets: [(&str, Vec<u64>); 2] = [
        ("normal", NormalGen::generate(7, EVENTS)),
        ("pareto", ParetoGen::generate(7, EVENTS)),
    ];
    for (name, data) in &datasets {
        let mut group = c.benchmark_group(format!("ingest_{name}"));
        group.throughput(Throughput::Elements(EVENTS as u64));
        group.sample_size(10);

        group.bench_with_input(BenchmarkId::from_parameter("push"), data, |b, data| {
            b.iter(|| {
                let mut q = Qlove::new(config());
                let mut emitted = 0usize;
                for &v in data {
                    if q.push_detailed(v).is_some() {
                        emitted += 1;
                    }
                }
                emitted
            });
        });

        for &batch in &BATCH_SIZES {
            group.bench_with_input(BenchmarkId::new("push_batch", batch), data, |b, data| {
                b.iter(|| {
                    let mut q = Qlove::new(config());
                    let mut out = Vec::new();
                    for chunk in data.chunks(batch) {
                        q.push_batch_into(chunk, &mut out);
                    }
                    out.len()
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
