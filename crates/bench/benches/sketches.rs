//! Per-sketch micro-costs: insert paths and query paths of the baseline
//! summaries, isolated from windowing. Explains *why* the Figure-4
//! ordering comes out the way it does (GK tuple maintenance vs tree
//! insert vs reservoir update vs moment accumulation).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qlove_rbtree::FreqTree;
use qlove_sketches::{GkSketch, MomentSketch};
use qlove_workloads::NetMonGen;

const N: usize = 100_000;

fn bench_insert_paths(c: &mut Criterion) {
    let data = NetMonGen::generate(3, N);
    let mut group = c.benchmark_group("sketch_insert");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(15);

    group.bench_function("gk_eps_0.01", |b| {
        b.iter(|| {
            let mut s = GkSketch::new(0.01);
            for &v in &data {
                s.insert(v);
            }
            s.tuple_count()
        });
    });
    group.bench_function("moment_k12", |b| {
        b.iter(|| {
            let mut s = MomentSketch::new(12);
            for &v in &data {
                s.insert(v);
            }
            s.count()
        });
    });
    group.bench_function("freqtree", |b| {
        b.iter(|| {
            let mut t = FreqTree::new();
            for &v in &data {
                t.insert(v, 1);
            }
            t.total()
        });
    });
    group.finish();
}

fn bench_query_paths(c: &mut Criterion) {
    let data = NetMonGen::generate(3, N);
    let mut gk = GkSketch::new(0.01);
    let mut moment = MomentSketch::new(12);
    let mut tree = FreqTree::new();
    for &v in &data {
        gk.insert(v);
        moment.insert(v);
        tree.insert(v, 1);
    }
    let phis = [0.5, 0.9, 0.99, 0.999];

    let mut group = c.benchmark_group("sketch_query_4_quantiles");
    group.sample_size(20);
    group.bench_function("gk", |b| {
        b.iter(|| -> Vec<u64> { phis.iter().map(|&p| gk.query(p).unwrap()).collect() });
    });
    group.bench_function("moment_maxent_solve", |b| {
        b.iter(|| moment.quantiles(&phis).unwrap());
    });
    group.bench_function("freqtree_single_pass", |b| {
        b.iter(|| tree.quantiles(&phis).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_insert_paths, bench_query_paths);
criterion_main!(benches);
