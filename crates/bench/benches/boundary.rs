//! Boundary burst-detector ablation: reference vs cached detector at
//! 250 / 1000 / 4000 tail samples per side.
//!
//! The boundary-completion hot path used to pay, per boundary and per
//! φ, a pooled `O(k log k)` sort, two fresh `ln` passes, and four
//! allocations inside `is_bursty`. The reworked path caches each
//! sub-window's comparison-ready `TailStats` once (reverse-copy of the
//! already-descending samples + one `ln` pass + moment reduction) and
//! decides via a linear merge and an `O(1)` Welch t. Three rows per
//! size:
//!
//! * `reference` — the stateless `is_bursty` (what every boundary paid
//!   before);
//! * `cached` — `is_bursty_stats` over prebuilt stats (what a boundary
//!   pays now: the stats of both sides already live in the summary
//!   ring);
//! * `rebuild+cached` — one `TailStats::rebuild` plus the decision (the
//!   total per-sub-window cost including the once-per-lifetime cache
//!   build, i.e. the honest amortized comparison).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qlove_core::burst::{is_bursty, is_bursty_stats, TailStats};

const SIZES: [usize; 3] = [250, 1000, 4000];
/// The operator's corrected level at default α = 0.05 and 10
/// sub-windows: α / (4·n_sub).
const ALPHA: f64 = 0.05 / 40.0;

/// Descending tail samples with realistic spread and ties (quantized
/// telemetry collapses values onto a coarse grid).
fn tail(seed: u64, n: usize) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n as u64)
        .map(|i| {
            let r = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407));
            10_000 + (r % 500) * 10
        })
        .collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

fn bench_detector(c: &mut Criterion) {
    let mut group = c.benchmark_group("burst_detector");
    group.sample_size(20);
    for &n in &SIZES {
        let cur = tail(7, n);
        let prev = tail(11, n);
        group.throughput(Throughput::Elements(2 * n as u64));

        group.bench_with_input(
            BenchmarkId::new("reference", n),
            &(&cur, &prev),
            |b, (cur, prev)| b.iter(|| is_bursty(black_box(cur), black_box(prev), ALPHA)),
        );

        let mut sc = TailStats::new();
        let mut sp = TailStats::new();
        sc.rebuild(&cur);
        sp.rebuild(&prev);
        group.bench_with_input(BenchmarkId::new("cached", n), &(&sc, &sp), |b, (sc, sp)| {
            b.iter(|| is_bursty_stats(black_box(sc), black_box(sp), ALPHA))
        });

        group.bench_with_input(
            BenchmarkId::new("rebuild+cached", n),
            &(&cur, &prev),
            |b, (cur, prev)| {
                let mut fresh = TailStats::new();
                let mut other = TailStats::new();
                other.rebuild(prev);
                b.iter(|| {
                    fresh.rebuild(black_box(cur));
                    is_bursty_stats(&fresh, &other, ALPHA)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
