//! Backend ablation: the red-black `FreqTree` against the flat
//! `DenseFreqStore` on the three operations that dominate QLOVE's hot
//! paths — accumulate, multi-quantile evaluation, and multiset merge —
//! at 1K/10K/100K unique quantized keys.
//!
//! Keys are drawn from the 4-significant-digit quantized domain (the
//! widest the Auto backend selection still maps to the dense store), so
//! the 100K-unique case exercises a key universe spanning eleven
//! decades. Expectation: dense wins accumulate outright (O(1) array
//! arithmetic vs a descent), wins merge increasingly with unique count
//! (slice-add vs one descent per key), and holds its own on quantiles
//! (block-skipping prefix scan vs an in-order walk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qlove_freqstore::{FreqStore, FreqStoreImpl};

const SIG_DIGITS: u32 = 4;
const STREAM: usize = 200_000;
const UNIQUE: [usize; 3] = [1_000, 10_000, 100_000];
const PHIS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// The first `k` values of the 4-digit quantized domain in value order:
/// 0..10^4 directly, then every `s·10^e`. The domain holds 154K keys,
/// comfortably above the largest benchmark size.
fn key_universe(k: usize) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..10_000u64).collect();
    'outer: for e in 1u32.. {
        for s in 1_000u64..10_000 {
            keys.push(s * 10u64.pow(e));
            if keys.len() >= k {
                break 'outer;
            }
        }
    }
    keys.truncate(k);
    keys
}

/// A deterministic pseudo-random stream cycling over `keys`.
fn stream_over(keys: &[u64], n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| keys[(i.wrapping_mul(2654435761)) % keys.len()])
        .collect()
}

fn backends() -> [(&'static str, FreqStoreImpl); 2] {
    [
        ("tree", FreqStoreImpl::tree(1 << 16)),
        ("dense", FreqStoreImpl::dense(SIG_DIGITS)),
    ]
}

fn filled(proto: &FreqStoreImpl, data: &[u64]) -> FreqStoreImpl {
    let mut s = proto.clone();
    for &v in data {
        s.insert(v, 1);
    }
    s
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("freqstore_insert");
    group.throughput(Throughput::Elements(STREAM as u64));
    group.sample_size(15);
    for unique in UNIQUE {
        let data = stream_over(&key_universe(unique), STREAM);
        for (name, proto) in backends() {
            group.bench_with_input(BenchmarkId::new(name, unique), &data, |b, d| {
                b.iter(|| {
                    let mut s = proto.clone();
                    for &v in d {
                        s.insert(v, 1);
                    }
                    s.total()
                });
            });
        }
    }
    group.finish();
}

fn bench_quantiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("freqstore_quantiles");
    group.sample_size(30);
    for unique in UNIQUE {
        let data = stream_over(&key_universe(unique), STREAM);
        for (name, proto) in backends() {
            let store = filled(&proto, &data);
            group.bench_with_input(BenchmarkId::new(name, unique), &store, |b, s| {
                let mut buf = Vec::new();
                b.iter(|| {
                    assert!(s.quantiles_into(&PHIS, &mut buf));
                    buf[0]
                });
            });
        }
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    // Merge two stores built over interleaved halves of the stream —
    // the distributed boundary shape. The timed body clones the target
    // first (both backends clone a flat Vec arena, so the clone cost is
    // comparable and the delta isolates the merge).
    let mut group = c.benchmark_group("freqstore_merge");
    group.sample_size(15);
    for unique in UNIQUE {
        let data = stream_over(&key_universe(unique), STREAM);
        let (left, right): (Vec<u64>, Vec<u64>) = {
            let mut l = Vec::new();
            let mut r = Vec::new();
            for (i, &v) in data.iter().enumerate() {
                if i % 2 == 0 {
                    l.push(v);
                } else {
                    r.push(v);
                }
            }
            (l, r)
        };
        for (name, proto) in backends() {
            let target = filled(&proto, &left);
            let source = filled(&proto, &right);
            group.bench_with_input(
                BenchmarkId::new(name, unique),
                &(target, source),
                |b, (target, source)| {
                    b.iter(|| {
                        let mut t = target.clone();
                        t.merge_from(source);
                        t.total()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_quantiles, bench_merge);
criterion_main!(benches);
