//! # qlove-rbtree — order-statistic frequency red-black tree
//!
//! The in-flight state of QLOVE's Level 1 (paper §3.1, Algorithm 1) is a
//! red-black tree keyed by *element value* whose nodes carry the
//! *frequency* of that value — the `{(e₁,f₁), …, (eₙ,fₙ)}` compressed
//! representation that exploits telemetry's high value redundancy. The
//! same structure, plus a decrement/deaccumulate path, is the paper's
//! `Exact` baseline (§5.1: "the node representing the expired element's
//! value decrements its frequency by one, and is deleted from the
//! red-black tree if the frequency becomes zero").
//!
//! This implementation is an **arena-based** CLRS red-black tree (nodes in
//! a `Vec`, `u32` links, free-list reuse) augmented with per-subtree
//! frequency sums, which provides:
//!
//! * `O(log u)` [`FreqTree::insert`] / [`FreqTree::remove`] where `u` is
//!   the number of *unique* values — the paper's duplicate-driven cost
//!   continuum between `O(log 1)` and `O(log P)` (§3.2);
//! * `O(log u)` [`FreqTree::select`] (rank → value) and
//!   [`FreqTree::rank_of`] (value → rank) via the subtree sums;
//! * `O(u)` single-pass multi-quantile [`FreqTree::quantiles`] — exactly
//!   Algorithm 1's `ComputeResult` in-order traversal;
//! * cheap [`FreqTree::clear`] for tumbling sub-window reuse (the arena is
//!   retained, so steady-state Level-1 processing allocates nothing).
//!
//! No `unsafe` anywhere: links are indices, the borrow checker stays happy,
//! and the memory layout is cache-friendlier than `Box`-per-node trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tree;

pub use tree::{FreqTree, InOrderIter, RemoveError};

#[cfg(test)]
mod proptests;
