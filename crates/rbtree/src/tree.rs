//! The arena-based order-statistic frequency red-black tree.

use std::fmt;

/// Index type for arena links. `u32` halves node size versus `usize`
/// pointers; 4 billion unique values per sub-window is far beyond any
/// telemetry workload (the paper's largest sub-window holds 1M elements).
type Idx = u32;

/// Sentinel index of the NIL node (always slot 0 of the arena, black,
/// zero frequency) — the CLRS `T.nil` trick, which removes almost every
/// null check from the fixup procedures.
const NIL: Idx = 0;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    /// Frequency of `key` in the multiset.
    count: u64,
    /// Total frequency of the subtree rooted here (order-statistic
    /// augmentation; NIL carries 0).
    subtree: u64,
    left: Idx,
    right: Idx,
    parent: Idx,
    red: bool,
}

/// Error from [`FreqTree::remove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveError {
    /// The key is not present in the tree.
    KeyNotFound,
    /// The key is present but with a smaller frequency than requested.
    InsufficientCount {
        /// Frequency actually present.
        available: u64,
    },
}

impl fmt::Display for RemoveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoveError::KeyNotFound => write!(f, "key not found in frequency tree"),
            RemoveError::InsufficientCount { available } => {
                write!(f, "requested removal exceeds stored frequency {available}")
            }
        }
    }
}

impl std::error::Error for RemoveError {}

/// Order-statistic red-black tree over a multiset of `K`, stored as
/// `{key → frequency}` with subtree frequency sums.
///
/// `K: Default` is only used to fill the NIL sentinel slot; the default
/// value itself is never observed through the public API.
#[derive(Clone)]
pub struct FreqTree<K> {
    arena: Vec<Node<K>>,
    root: Idx,
    /// Head of the free list threaded through `parent` links of freed slots.
    free_head: Idx,
    /// Number of live (non-NIL, non-free) nodes.
    unique: usize,
    /// Total frequency over all keys.
    total: u64,
}

impl<K: Ord + Copy + Default> Default for FreqTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy + Default> FreqTree<K> {
    /// Empty tree.
    pub fn new() -> Self {
        let nil = Node {
            key: K::default(),
            count: 0,
            subtree: 0,
            left: NIL,
            right: NIL,
            parent: NIL,
            red: false,
        };
        Self {
            arena: vec![nil],
            root: NIL,
            free_head: NIL,
            unique: 0,
            total: 0,
        }
    }

    /// Empty tree with arena capacity for `unique_capacity` distinct keys.
    pub fn with_capacity(unique_capacity: usize) -> Self {
        let mut t = Self::new();
        t.arena.reserve(unique_capacity);
        t
    }

    /// Total frequency (the paper's `state.Count`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys currently stored.
    pub fn unique_len(&self) -> usize {
        self.unique
    }

    /// `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Remove all elements but keep the arena allocation for reuse — the
    /// tumbling-window reset at every sub-window boundary (§3.1: "once a
    /// sub-window completes, all values are discarded").
    pub fn clear(&mut self) {
        self.arena.truncate(1);
        self.arena[0].left = NIL;
        self.arena[0].right = NIL;
        self.arena[0].parent = NIL;
        self.root = NIL;
        self.free_head = NIL;
        self.unique = 0;
        self.total = 0;
    }

    // ---- arena plumbing ------------------------------------------------

    fn alloc(&mut self, key: K, count: u64) -> Idx {
        let node = Node {
            key,
            count,
            subtree: count,
            left: NIL,
            right: NIL,
            parent: NIL,
            red: true,
        };
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.arena[idx as usize].parent;
            self.arena[idx as usize] = node;
            idx
        } else {
            self.arena.push(node);
            (self.arena.len() - 1) as Idx
        }
    }

    fn free(&mut self, idx: Idx) {
        debug_assert_ne!(idx, NIL);
        self.arena[idx as usize].parent = self.free_head;
        self.free_head = idx;
    }

    #[inline]
    fn n(&self, i: Idx) -> &Node<K> {
        &self.arena[i as usize]
    }

    #[inline]
    fn nm(&mut self, i: Idx) -> &mut Node<K> {
        &mut self.arena[i as usize]
    }

    /// Recompute a node's subtree sum from its children.
    #[inline]
    fn update(&mut self, i: Idx) {
        if i == NIL {
            return;
        }
        let l = self.n(self.n(i).left).subtree;
        let r = self.n(self.n(i).right).subtree;
        let c = self.n(i).count;
        self.nm(i).subtree = l + r + c;
    }

    // ---- rotations (subtree sums repaired locally) ----------------------

    fn rotate_left(&mut self, x: Idx) {
        let y = self.n(x).right;
        debug_assert_ne!(y, NIL);
        let y_left = self.n(y).left;
        self.nm(x).right = y_left;
        if y_left != NIL {
            self.nm(y_left).parent = x;
        }
        let xp = self.n(x).parent;
        self.nm(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.n(xp).left == x {
            self.nm(xp).left = y;
        } else {
            self.nm(xp).right = y;
        }
        self.nm(y).left = x;
        self.nm(x).parent = y;
        // x is now y's child: recompute bottom-up.
        self.update(x);
        self.update(y);
    }

    fn rotate_right(&mut self, x: Idx) {
        let y = self.n(x).left;
        debug_assert_ne!(y, NIL);
        let y_right = self.n(y).right;
        self.nm(x).left = y_right;
        if y_right != NIL {
            self.nm(y_right).parent = x;
        }
        let xp = self.n(x).parent;
        self.nm(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.n(xp).right == x {
            self.nm(xp).right = y;
        } else {
            self.nm(xp).left = y;
        }
        self.nm(y).right = x;
        self.nm(x).parent = y;
        self.update(x);
        self.update(y);
    }

    // ---- insertion ------------------------------------------------------

    /// Add `freq` occurrences of `key` (Algorithm 1 `Accumulate`).
    ///
    /// Existing keys take the `O(log u)` descent with an in-place counter
    /// bump — the cheap path that high-redundancy telemetry hits almost
    /// always. `freq == 0` is a no-op.
    pub fn insert(&mut self, key: K, freq: u64) {
        if freq == 0 {
            return;
        }
        self.total += freq;
        if self.root == NIL {
            let z = self.alloc(key, freq);
            self.nm(z).red = false;
            self.root = z;
            self.unique += 1;
            return;
        }
        // Descend, bumping subtree sums optimistically (every node on the
        // path gains `freq` whether the key exists or is created below it).
        let mut cur = self.root;
        loop {
            self.nm(cur).subtree += freq;
            match key.cmp(&self.n(cur).key) {
                std::cmp::Ordering::Equal => {
                    self.nm(cur).count += freq;
                    return;
                }
                std::cmp::Ordering::Less => {
                    let next = self.n(cur).left;
                    if next == NIL {
                        let z = self.alloc(key, freq);
                        self.nm(z).parent = cur;
                        self.nm(cur).left = z;
                        self.unique += 1;
                        self.insert_fixup(z);
                        return;
                    }
                    cur = next;
                }
                std::cmp::Ordering::Greater => {
                    let next = self.n(cur).right;
                    if next == NIL {
                        let z = self.alloc(key, freq);
                        self.nm(z).parent = cur;
                        self.nm(cur).right = z;
                        self.unique += 1;
                        self.insert_fixup(z);
                        return;
                    }
                    cur = next;
                }
            }
        }
    }

    /// Bulk-insert a batch of keys: sorts the slice in place, collapses
    /// it into `(key, run-length)` runs, and performs **one tree descent
    /// per unique key** instead of one per element.
    ///
    /// This is the batched-ingestion primitive behind
    /// `Qlove::push_batch`: quantization shrinks the key domain so far
    /// (§3.1: three significant digits) that a 4096-element sub-window
    /// batch typically collapses to a few hundred runs, replacing
    /// thousands of `O(log u)` descents with a sort of a small, mostly
    /// cache-resident buffer plus a few hundred descents.
    ///
    /// Equivalent to `for &k in batch { self.insert(k, 1) }` in final
    /// tree state (a multiset is insertion-order-independent).
    pub fn insert_batch(&mut self, batch: &mut [K]) {
        batch.sort_unstable();
        self.extend_counts(RunLengths::new(batch));
    }

    /// Add many `(key, frequency)` pairs — one [`FreqTree::insert`]
    /// descent per pair. Zero frequencies are skipped; duplicate keys
    /// accumulate.
    pub fn extend_counts<I: IntoIterator<Item = (K, u64)>>(&mut self, runs: I) {
        for (key, freq) in runs {
            self.insert(key, freq);
        }
    }

    /// Multiset union: fold every `(key, frequency)` run of `other` into
    /// this tree — the distributed sub-window merge primitive.
    ///
    /// This rides the same machinery as [`FreqTree::insert_batch`] after
    /// its sort (the source tree's in-order walk already yields runs in
    /// key order), so the cost is **one descent per unique key of
    /// `other`**: `O(u_other · log(u_self + u_other))`, with the only
    /// allocation being a single up-front arena reservation. Keys shared
    /// by both trees take the cheap counter-bump path.
    ///
    /// Equivalent in final state to inserting `other`'s expanded
    /// multiset element by element (insertion order cannot matter in a
    /// multiset).
    pub fn merge_from(&mut self, other: &FreqTree<K>) {
        // Worst case (disjoint key sets) every unique key of `other`
        // needs a fresh arena slot.
        self.arena.reserve(other.unique);
        self.extend_counts(other.iter());
    }

    /// Consuming counterpart of [`FreqTree::merge_from`]: drain this
    /// tree into `target`, leaving the union there.
    pub fn merge_into(self, target: &mut FreqTree<K>) {
        target.merge_from(&self);
    }

    fn insert_fixup(&mut self, mut z: Idx) {
        while self.n(self.n(z).parent).red {
            let zp = self.n(z).parent;
            let zpp = self.n(zp).parent;
            if zp == self.n(zpp).left {
                let uncle = self.n(zpp).right;
                if self.n(uncle).red {
                    self.nm(zp).red = false;
                    self.nm(uncle).red = false;
                    self.nm(zpp).red = true;
                    z = zpp;
                } else {
                    if z == self.n(zp).right {
                        z = zp;
                        self.rotate_left(z);
                    }
                    let zp = self.n(z).parent;
                    let zpp = self.n(zp).parent;
                    self.nm(zp).red = false;
                    self.nm(zpp).red = true;
                    self.rotate_right(zpp);
                }
            } else {
                let uncle = self.n(zpp).left;
                if self.n(uncle).red {
                    self.nm(zp).red = false;
                    self.nm(uncle).red = false;
                    self.nm(zpp).red = true;
                    z = zpp;
                } else {
                    if z == self.n(zp).left {
                        z = zp;
                        self.rotate_right(z);
                    }
                    let zp = self.n(z).parent;
                    let zpp = self.n(zp).parent;
                    self.nm(zp).red = false;
                    self.nm(zpp).red = true;
                    self.rotate_left(zpp);
                }
            }
        }
        let r = self.root;
        self.nm(r).red = false;
    }

    // ---- removal ---------------------------------------------------------

    /// Remove `freq` occurrences of `key` (the Exact baseline's
    /// `Deaccumulate`). Structural deletion only happens when the key's
    /// frequency reaches zero. `freq == 0` is a no-op.
    pub fn remove(&mut self, key: K, freq: u64) -> Result<(), RemoveError> {
        if freq == 0 {
            return Ok(());
        }
        let z = self.find(key);
        if z == NIL {
            return Err(RemoveError::KeyNotFound);
        }
        let available = self.n(z).count;
        if freq > available {
            return Err(RemoveError::InsufficientCount { available });
        }
        self.total -= freq;
        if freq < available {
            // Counter path: subtract along the ancestor chain.
            self.nm(z).count -= freq;
            let mut cur = z;
            while cur != NIL {
                self.nm(cur).subtree -= freq;
                cur = self.n(cur).parent;
            }
            return Ok(());
        }
        self.delete_node(z);
        self.unique -= 1;
        Ok(())
    }

    fn find(&self, key: K) -> Idx {
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(&self.n(cur).key) {
                std::cmp::Ordering::Equal => return cur,
                std::cmp::Ordering::Less => cur = self.n(cur).left,
                std::cmp::Ordering::Greater => cur = self.n(cur).right,
            }
        }
        NIL
    }

    /// Frequency of `key`, 0 if absent.
    pub fn count_of(&self, key: K) -> u64 {
        let i = self.find(key);
        if i == NIL {
            0
        } else {
            self.n(i).count
        }
    }

    fn minimum(&self, mut x: Idx) -> Idx {
        while self.n(x).left != NIL {
            x = self.n(x).left;
        }
        x
    }

    /// `v` replaces `u` as `u.parent`'s child (CLRS RB-TRANSPLANT; also
    /// sets `v.parent` even when `v` is NIL — delete_fixup relies on it).
    fn transplant(&mut self, u: Idx, v: Idx) {
        let up = self.n(u).parent;
        if up == NIL {
            self.root = v;
        } else if self.n(up).left == u {
            self.nm(up).left = v;
        } else {
            self.nm(up).right = v;
        }
        self.nm(v).parent = up;
    }

    /// CLRS RB-DELETE with augmentation repair.
    fn delete_node(&mut self, z: Idx) {
        let mut y = z;
        let mut y_was_red = self.n(y).red;
        let x;
        if self.n(z).left == NIL {
            x = self.n(z).right;
            self.transplant(z, x);
        } else if self.n(z).right == NIL {
            x = self.n(z).left;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.n(z).right);
            y_was_red = self.n(y).red;
            x = self.n(y).right;
            if self.n(y).parent == z {
                // x may be NIL; fixup needs its parent pointer anyway.
                self.nm(x).parent = y;
            } else {
                self.transplant(y, x);
                let zr = self.n(z).right;
                self.nm(y).right = zr;
                self.nm(zr).parent = y;
            }
            self.transplant(z, y);
            let zl = self.n(z).left;
            self.nm(y).left = zl;
            self.nm(zl).parent = y;
            self.nm(y).red = self.n(z).red;
        }
        // Repair subtree sums from the splice point upward. Starting at
        // x's parent covers both the two-children case (y moved) and the
        // simple transplant cases.
        let mut cur = self.n(x).parent;
        while cur != NIL {
            self.update(cur);
            cur = self.n(cur).parent;
        }
        if !y_was_red {
            self.delete_fixup(x);
        }
        // NIL may have been given a temporary parent; restore invariants.
        self.nm(NIL).parent = NIL;
        self.free(z);
    }

    fn delete_fixup(&mut self, mut x: Idx) {
        while x != self.root && !self.n(x).red {
            let xp = self.n(x).parent;
            if x == self.n(xp).left {
                let mut w = self.n(xp).right;
                if self.n(w).red {
                    self.nm(w).red = false;
                    self.nm(xp).red = true;
                    self.rotate_left(xp);
                    w = self.n(self.n(x).parent).right;
                }
                if !self.n(self.n(w).left).red && !self.n(self.n(w).right).red {
                    self.nm(w).red = true;
                    x = self.n(x).parent;
                } else {
                    if !self.n(self.n(w).right).red {
                        let wl = self.n(w).left;
                        self.nm(wl).red = false;
                        self.nm(w).red = true;
                        self.rotate_right(w);
                        w = self.n(self.n(x).parent).right;
                    }
                    let xp = self.n(x).parent;
                    let xp_red = self.n(xp).red;
                    self.nm(w).red = xp_red;
                    self.nm(xp).red = false;
                    let wr = self.n(w).right;
                    self.nm(wr).red = false;
                    self.rotate_left(xp);
                    x = self.root;
                }
            } else {
                let mut w = self.n(xp).left;
                if self.n(w).red {
                    self.nm(w).red = false;
                    self.nm(xp).red = true;
                    self.rotate_right(xp);
                    w = self.n(self.n(x).parent).left;
                }
                if !self.n(self.n(w).left).red && !self.n(self.n(w).right).red {
                    self.nm(w).red = true;
                    x = self.n(x).parent;
                } else {
                    if !self.n(self.n(w).left).red {
                        let wr = self.n(w).right;
                        self.nm(wr).red = false;
                        self.nm(w).red = true;
                        self.rotate_left(w);
                        w = self.n(self.n(x).parent).left;
                    }
                    let xp = self.n(x).parent;
                    let xp_red = self.n(xp).red;
                    self.nm(w).red = xp_red;
                    self.nm(xp).red = false;
                    let wl = self.n(w).left;
                    self.nm(wl).red = false;
                    self.rotate_right(xp);
                    x = self.root;
                }
            }
        }
        self.nm(x).red = false;
    }

    // ---- order statistics -------------------------------------------------

    /// Value at 1-indexed rank `r` in the multiset (`1 ≤ r ≤ total`),
    /// `O(log u)` via the subtree sums. Returns `None` out of range.
    pub fn select(&self, mut r: u64) -> Option<K> {
        if r == 0 || r > self.total {
            return None;
        }
        let mut cur = self.root;
        loop {
            debug_assert_ne!(cur, NIL);
            let left = self.n(cur).left;
            let left_sum = self.n(left).subtree;
            if r <= left_sum {
                cur = left;
                continue;
            }
            r -= left_sum;
            let c = self.n(cur).count;
            if r <= c {
                return Some(self.n(cur).key);
            }
            r -= c;
            cur = self.n(cur).right;
        }
    }

    /// Number of stored elements `≤ key` — the multiset rank used for
    /// measuring observed rank error.
    pub fn rank_of(&self, key: K) -> u64 {
        let mut acc = 0u64;
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(&self.n(cur).key) {
                std::cmp::Ordering::Less => cur = self.n(cur).left,
                std::cmp::Ordering::Equal => {
                    return acc + self.n(self.n(cur).left).subtree + self.n(cur).count;
                }
                std::cmp::Ordering::Greater => {
                    acc += self.n(self.n(cur).left).subtree + self.n(cur).count;
                    cur = self.n(cur).right;
                }
            }
        }
        acc
    }

    /// Exact φ-quantile under the paper's rank convention `⌈φ·total⌉`,
    /// `O(log u)`. Returns `None` on an empty tree.
    pub fn quantile(&self, phi: f64) -> Option<K> {
        if self.total == 0 {
            return None;
        }
        let r = (phi * self.total as f64).ceil() as u64;
        self.select(r.clamp(1, self.total))
    }

    /// Exact φ-quantiles for several fractions in **one** in-order pass —
    /// Algorithm 1's `ComputeResult`. `phis` need not be sorted; results
    /// are returned in the caller's order. `None` on an empty tree.
    pub fn quantiles(&self, phis: &[f64]) -> Option<Vec<K>> {
        let mut out = Vec::with_capacity(phis.len());
        self.quantiles_into(phis, &mut out).then_some(out)
    }

    /// [`FreqTree::quantiles`] into a caller-owned buffer (cleared
    /// first), so sub-window boundaries can recycle one allocation per
    /// ring slot. Returns `false` — leaving `out` empty — exactly when
    /// [`FreqTree::quantiles`] would return `None`.
    pub fn quantiles_into(&self, phis: &[f64], out: &mut Vec<K>) -> bool {
        out.clear();
        if self.total == 0 || phis.is_empty() {
            return phis.is_empty();
        }
        // Sort the requested ranks but remember the original positions.
        let mut order: Vec<usize> = (0..phis.len()).collect();
        order.sort_by(|&a, &b| phis[a].partial_cmp(&phis[b]).expect("NaN quantile"));
        let ranks: Vec<u64> = order
            .iter()
            .map(|&i| ((phis[i] * self.total as f64).ceil() as u64).clamp(1, self.total))
            .collect();

        // `K::Default` as a placeholder; every slot is overwritten
        // because each rank is clamped to [1, total].
        out.resize(phis.len(), K::default());
        let mut next = 0usize; // index into `ranks`/`order`
        let mut running = 0u64;

        // Iterative in-order traversal, as in Algorithm 1 lines 17-27.
        let mut stack: Vec<Idx> = Vec::new();
        let mut cur = self.root;
        'outer: while (cur != NIL || !stack.is_empty()) && next < ranks.len() {
            while cur != NIL {
                stack.push(cur);
                cur = self.n(cur).left;
            }
            let node = stack.pop().expect("loop guard ensures non-empty");
            running += self.n(node).count;
            while next < ranks.len() && running >= ranks[next] {
                out[order[next]] = self.n(node).key;
                next += 1;
                if next == ranks.len() {
                    break 'outer;
                }
            }
            cur = self.n(node).right;
        }
        debug_assert_eq!(next, ranks.len(), "every clamped rank is reachable");
        true
    }

    /// Smallest key, `None` when empty.
    pub fn min_key(&self) -> Option<K> {
        if self.root == NIL {
            None
        } else {
            Some(self.n(self.minimum(self.root)).key)
        }
    }

    /// Largest key, `None` when empty.
    pub fn max_key(&self) -> Option<K> {
        if self.root == NIL {
            return None;
        }
        let mut x = self.root;
        while self.n(x).right != NIL {
            x = self.n(x).right;
        }
        Some(self.n(x).key)
    }

    /// The `k` largest stored *elements* (with multiplicity), descending.
    /// Cost `O(log u + k)` via a reverse in-order walk — used by few-k
    /// merging to snapshot a sub-window's tail.
    pub fn top_k(&self, k: usize) -> Vec<K> {
        let mut out = Vec::with_capacity(k);
        self.top_k_into(k, &mut out);
        out
    }

    /// [`FreqTree::top_k`] into a caller-owned buffer (cleared first) so
    /// steady-state sub-window boundaries reuse one allocation.
    pub fn top_k_into(&self, k: usize, out: &mut Vec<K>) {
        out.clear();
        if k == 0 {
            return;
        }
        let mut stack: Vec<Idx> = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.n(cur).right;
            }
            let node = stack.pop().expect("guard");
            let key = self.n(node).key;
            let mut c = self.n(node).count;
            while c > 0 && out.len() < k {
                out.push(key);
                c -= 1;
            }
            if out.len() == k {
                return;
            }
            cur = self.n(node).left;
        }
    }

    /// Borrowed in-order iterator over `(key, frequency)` pairs.
    pub fn iter(&self) -> InOrderIter<'_, K> {
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL {
            stack.push(cur);
            cur = self.n(cur).left;
        }
        InOrderIter { tree: self, stack }
    }

    /// Approximate heap footprint in bytes (arena slots × node size).
    pub fn memory_bytes(&self) -> usize {
        self.arena.capacity() * std::mem::size_of::<Node<K>>()
    }

    // ---- invariant validation (used by tests & proptests) ------------------

    /// Check every red-black and augmentation invariant; returns a
    /// description of the first violation. `O(u)`. Intended for tests —
    /// not called on hot paths.
    pub fn validate(&self) -> Result<(), String> {
        if self.n(NIL).red {
            return Err("NIL is red".into());
        }
        if self.n(NIL).subtree != 0 {
            return Err("NIL has nonzero subtree sum".into());
        }
        if self.root != NIL {
            if self.n(self.root).red {
                return Err("root is red".into());
            }
            if self.n(self.root).parent != NIL {
                return Err("root has a parent".into());
            }
        }
        let mut unique = 0usize;
        let (total, _) = self.validate_node(self.root, None, None, &mut unique)?;
        if total != self.total {
            return Err(format!(
                "total mismatch: cached {} vs walked {total}",
                self.total
            ));
        }
        if unique != self.unique {
            return Err(format!(
                "unique mismatch: cached {} vs walked {unique}",
                self.unique
            ));
        }
        Ok(())
    }

    /// Returns (subtree frequency sum, black height).
    fn validate_node(
        &self,
        i: Idx,
        lo: Option<K>,
        hi: Option<K>,
        unique: &mut usize,
    ) -> Result<(u64, usize), String> {
        if i == NIL {
            return Ok((0, 1));
        }
        *unique += 1;
        let node = self.n(i);
        if node.count == 0 {
            return Err("live node with zero frequency".into());
        }
        if let Some(lo) = lo {
            if node.key <= lo {
                return Err("BST order violated (left bound)".into());
            }
        }
        if let Some(hi) = hi {
            if node.key >= hi {
                return Err("BST order violated (right bound)".into());
            }
        }
        if node.red && (self.n(node.left).red || self.n(node.right).red) {
            return Err("red node with red child".into());
        }
        if node.left != NIL && self.n(node.left).parent != i {
            return Err("broken parent link (left)".into());
        }
        if node.right != NIL && self.n(node.right).parent != i {
            return Err("broken parent link (right)".into());
        }
        let (lsum, lbh) = self.validate_node(node.left, lo, Some(node.key), unique)?;
        let (rsum, rbh) = self.validate_node(node.right, Some(node.key), hi, unique)?;
        if lbh != rbh {
            return Err("black heights differ".into());
        }
        let sum = lsum + rsum + node.count;
        if sum != node.subtree {
            return Err(format!(
                "subtree sum mismatch: stored {} vs walked {sum}",
                node.subtree
            ));
        }
        Ok((sum, lbh + usize::from(!node.red)))
    }
}

impl<K: Ord + Copy + Default + fmt::Debug> fmt::Debug for FreqTree<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FreqTree")
            .field("total", &self.total)
            .field("unique", &self.unique)
            .finish()
    }
}

/// Iterator over maximal `(key, run-length)` runs of a sorted slice —
/// the compressed form [`FreqTree::insert_batch`] feeds to
/// [`FreqTree::extend_counts`].
struct RunLengths<'a, K> {
    slice: &'a [K],
}

impl<'a, K> RunLengths<'a, K> {
    fn new(sorted: &'a [K]) -> Self {
        Self { slice: sorted }
    }
}

impl<K: PartialEq + Copy> Iterator for RunLengths<'_, K> {
    type Item = (K, u64);

    fn next(&mut self) -> Option<(K, u64)> {
        let first = *self.slice.first()?;
        let mut n = 1;
        while n < self.slice.len() && self.slice[n] == first {
            n += 1;
        }
        self.slice = &self.slice[n..];
        Some((first, n as u64))
    }
}

/// In-order `(key, frequency)` iterator over a [`FreqTree`].
pub struct InOrderIter<'a, K> {
    tree: &'a FreqTree<K>,
    stack: Vec<Idx>,
}

impl<K: Ord + Copy + Default> Iterator for InOrderIter<'_, K> {
    type Item = (K, u64);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        let out = (self.tree.n(node).key, self.tree.n(node).count);
        let mut cur = self.tree.n(node).right;
        while cur != NIL {
            self.stack.push(cur);
            cur = self.tree.n(cur).left;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_basics() {
        let t: FreqTree<u64> = FreqTree::new();
        assert!(t.is_empty());
        assert_eq!(t.total(), 0);
        assert_eq!(t.unique_len(), 0);
        assert_eq!(t.select(1), None);
        assert_eq!(t.quantile(0.5), None);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        assert_eq!(t.iter().count(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn insert_and_count() {
        let mut t = FreqTree::new();
        t.insert(5u64, 1);
        t.insert(3, 2);
        t.insert(5, 1);
        assert_eq!(t.total(), 4);
        assert_eq!(t.unique_len(), 2);
        assert_eq!(t.count_of(5), 2);
        assert_eq!(t.count_of(3), 2);
        assert_eq!(t.count_of(42), 0);
        t.validate().unwrap();
    }

    #[test]
    fn zero_freq_insert_is_noop() {
        let mut t = FreqTree::new();
        t.insert(1u64, 0);
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn select_respects_multiplicity() {
        let mut t = FreqTree::new();
        t.insert(10u64, 3);
        t.insert(20, 1);
        t.insert(5, 2);
        // Multiset: 5,5,10,10,10,20
        assert_eq!(t.select(1), Some(5));
        assert_eq!(t.select(2), Some(5));
        assert_eq!(t.select(3), Some(10));
        assert_eq!(t.select(5), Some(10));
        assert_eq!(t.select(6), Some(20));
        assert_eq!(t.select(7), None);
        assert_eq!(t.select(0), None);
    }

    #[test]
    fn quantile_paper_convention() {
        let mut t = FreqTree::new();
        for v in 1..=100u64 {
            t.insert(v, 1);
        }
        assert_eq!(t.quantile(0.5), Some(50));
        assert_eq!(t.quantile(0.99), Some(99));
        assert_eq!(t.quantile(1.0), Some(100));
        assert_eq!(t.quantile(0.0), Some(1)); // clamped to rank 1
    }

    #[test]
    fn multi_quantile_single_pass_matches_select() {
        let mut t = FreqTree::new();
        for v in [5u64, 9, 9, 1, 14, 2, 2, 2, 30, 7] {
            t.insert(v, 1);
        }
        let phis = [0.999, 0.5, 0.9, 0.1]; // deliberately unsorted
        let qs = t.quantiles(&phis).unwrap();
        for (i, &phi) in phis.iter().enumerate() {
            assert_eq!(Some(qs[i]), t.quantile(phi), "phi = {phi}");
        }
    }

    #[test]
    fn quantiles_empty_inputs() {
        let t: FreqTree<u64> = FreqTree::new();
        assert_eq!(t.quantiles(&[]), Some(vec![]));
        assert_eq!(t.quantiles(&[0.5]), None);
    }

    #[test]
    fn remove_decrements_then_deletes() {
        let mut t = FreqTree::new();
        t.insert(7u64, 3);
        t.remove(7, 2).unwrap();
        assert_eq!(t.count_of(7), 1);
        assert_eq!(t.unique_len(), 1);
        t.remove(7, 1).unwrap();
        assert_eq!(t.count_of(7), 0);
        assert_eq!(t.unique_len(), 0);
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn remove_errors() {
        let mut t = FreqTree::new();
        t.insert(1u64, 2);
        assert_eq!(t.remove(9, 1), Err(RemoveError::KeyNotFound));
        assert_eq!(
            t.remove(1, 5),
            Err(RemoveError::InsufficientCount { available: 2 })
        );
        // Failed removals must not corrupt state.
        assert_eq!(t.total(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn rank_of_multiset() {
        let mut t = FreqTree::new();
        t.insert(10u64, 2);
        t.insert(20, 3);
        t.insert(30, 1);
        assert_eq!(t.rank_of(5), 0);
        assert_eq!(t.rank_of(10), 2);
        assert_eq!(t.rank_of(15), 2);
        assert_eq!(t.rank_of(20), 5);
        assert_eq!(t.rank_of(30), 6);
        assert_eq!(t.rank_of(99), 6);
    }

    #[test]
    fn top_k_descending_with_multiplicity() {
        let mut t = FreqTree::new();
        t.insert(1u64, 1);
        t.insert(50, 2);
        t.insert(9, 1);
        assert_eq!(t.top_k(3), vec![50, 50, 9]);
        assert_eq!(t.top_k(0), Vec::<u64>::new());
        assert_eq!(t.top_k(10), vec![50, 50, 9, 1]); // k > total
    }

    #[test]
    fn insert_batch_matches_per_element() {
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 97).collect();
        let mut per_element = FreqTree::new();
        for &v in &data {
            per_element.insert(v, 1);
        }
        let mut batched = FreqTree::new();
        let mut buf = data.clone();
        batched.insert_batch(&mut buf);
        batched.validate().unwrap();
        assert_eq!(
            batched.iter().collect::<Vec<_>>(),
            per_element.iter().collect::<Vec<_>>()
        );
        assert_eq!(batched.total(), per_element.total());
    }

    #[test]
    fn insert_batch_empty_and_single() {
        let mut t = FreqTree::new();
        t.insert_batch(&mut []);
        assert!(t.is_empty());
        t.insert_batch(&mut [42u64]);
        assert_eq!(t.count_of(42), 1);
        t.validate().unwrap();
    }

    #[test]
    fn extend_counts_accumulates_and_skips_zero() {
        let mut t = FreqTree::new();
        t.extend_counts([(5u64, 2), (3, 0), (5, 1), (9, 4)]);
        assert_eq!(t.count_of(5), 3);
        assert_eq!(t.count_of(3), 0);
        assert_eq!(t.count_of(9), 4);
        assert_eq!(t.unique_len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn merge_from_unions_multisets() {
        let mut a = FreqTree::new();
        a.extend_counts([(1u64, 2), (5, 1), (9, 3)]);
        let mut b = FreqTree::new();
        b.extend_counts([(0u64, 1), (5, 4), (12, 2)]);
        a.merge_from(&b);
        a.validate().unwrap();
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (5, 5), (9, 3), (12, 2)]
        );
        assert_eq!(a.total(), 13);
        assert_eq!(a.unique_len(), 5);
        // The source is untouched.
        assert_eq!(b.total(), 7);
        b.validate().unwrap();
    }

    #[test]
    fn merge_from_empty_and_into_empty() {
        let mut a = FreqTree::new();
        a.insert(3u64, 2);
        let empty = FreqTree::new();
        a.merge_from(&empty);
        assert_eq!(a.total(), 2);
        let mut target = FreqTree::new();
        a.merge_from(&target); // no-op
        target.merge_from(&a); // union into empty = copy
        assert_eq!(target.iter().collect::<Vec<_>>(), vec![(3, 2)]);
        target.validate().unwrap();
    }

    #[test]
    fn merge_into_consumes_and_matches_merge_from() {
        let mut x = FreqTree::new();
        x.extend_counts([(2u64, 1), (4, 4)]);
        let mut y = FreqTree::new();
        y.extend_counts([(4u64, 1), (8, 2)]);
        let mut want = x.clone();
        want.merge_from(&y);
        y.merge_into(&mut x);
        assert_eq!(
            x.iter().collect::<Vec<_>>(),
            want.iter().collect::<Vec<_>>()
        );
        x.validate().unwrap();
    }

    #[test]
    fn merge_equals_interleaved_inserts() {
        // Union of two trees must equal one tree fed the concatenated
        // element stream — the property the distributed window rests on.
        let stream_a: Vec<u64> = (0..2000u64).map(|i| (i * 7919) % 257).collect();
        let stream_b: Vec<u64> = (0..1500u64).map(|i| (i * 104729) % 257).collect();
        let mut ta = FreqTree::new();
        let mut tb = FreqTree::new();
        let mut single = FreqTree::new();
        for &v in &stream_a {
            ta.insert(v, 1);
            single.insert(v, 1);
        }
        for &v in &stream_b {
            tb.insert(v, 1);
            single.insert(v, 1);
        }
        ta.merge_from(&tb);
        ta.validate().unwrap();
        assert_eq!(
            ta.iter().collect::<Vec<_>>(),
            single.iter().collect::<Vec<_>>()
        );
        assert_eq!(ta.quantiles(&[0.5, 0.99]), single.quantiles(&[0.5, 0.99]));
    }

    #[test]
    fn top_k_into_reuses_buffer() {
        let mut t = FreqTree::new();
        t.insert(1u64, 1);
        t.insert(50, 2);
        t.insert(9, 1);
        let mut buf = vec![99u64; 8]; // stale contents must be cleared
        t.top_k_into(3, &mut buf);
        assert_eq!(buf, vec![50, 50, 9]);
        t.top_k_into(0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn quantiles_into_matches_quantiles() {
        let mut t = FreqTree::new();
        for v in [5u64, 9, 9, 1, 14, 2, 2, 2, 30, 7] {
            t.insert(v, 1);
        }
        let phis = [0.999, 0.5, 0.9, 0.1];
        let mut buf = vec![77u64; 2];
        assert!(t.quantiles_into(&phis, &mut buf));
        assert_eq!(Some(buf.clone()), t.quantiles(&phis));
        // Empty tree: signalled by `false`, buffer left empty.
        let empty: FreqTree<u64> = FreqTree::new();
        assert!(!empty.quantiles_into(&[0.5], &mut buf));
        assert!(buf.is_empty());
        assert!(empty.quantiles_into(&[], &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn iter_sorted_pairs() {
        let mut t = FreqTree::new();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            t.insert(v, 1);
        }
        let pairs: Vec<(u64, u64)> = t.iter().collect();
        assert_eq!(
            pairs,
            vec![(1, 2), (2, 1), (3, 1), (4, 1), (5, 1), (6, 1), (9, 1)]
        );
    }

    #[test]
    fn clear_retains_capacity_and_resets() {
        let mut t = FreqTree::new();
        for v in 0..100u64 {
            t.insert(v, 1);
        }
        let bytes = t.memory_bytes();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.unique_len(), 0);
        assert_eq!(t.memory_bytes(), bytes);
        t.insert(5, 1);
        assert_eq!(t.quantile(0.5), Some(5));
        t.validate().unwrap();
    }

    #[test]
    fn ascending_descending_and_random_insert_stay_balanced() {
        // 2·log2(n+1) is the red-black height bound; validate() checks the
        // invariants that imply it.
        let mut t = FreqTree::new();
        for v in 0..1000u64 {
            t.insert(v, 1);
        }
        t.validate().unwrap();
        let mut t2 = FreqTree::new();
        for v in (0..1000u64).rev() {
            t2.insert(v, 1);
        }
        t2.validate().unwrap();
        assert_eq!(t.quantile(0.5), t2.quantile(0.5));
    }

    #[test]
    fn interleaved_insert_remove_consistency() {
        let mut t = FreqTree::new();
        // Simulate a sliding window: insert 0..500, remove 0..250.
        for v in 0..500u64 {
            t.insert(v % 97, 1); // heavy duplication
        }
        for v in 0..250u64 {
            t.remove(v % 97, 1).unwrap();
        }
        assert_eq!(t.total(), 250);
        t.validate().unwrap();
    }

    #[test]
    fn arena_slots_are_reused_after_free() {
        let mut t = FreqTree::new();
        for v in 0..64u64 {
            t.insert(v, 1);
        }
        let bytes = t.memory_bytes();
        for v in 0..64u64 {
            t.remove(v, 1).unwrap();
        }
        for v in 100..164u64 {
            t.insert(v, 1);
        }
        assert_eq!(t.memory_bytes(), bytes, "free list should recycle slots");
        t.validate().unwrap();
    }

    #[test]
    fn works_with_signed_and_float_ordered_keys() {
        let mut t = FreqTree::new();
        for v in [-5i64, 3, -5, 0, 8] {
            t.insert(v, 1);
        }
        assert_eq!(t.min_key(), Some(-5));
        assert_eq!(t.max_key(), Some(8));
        assert_eq!(t.quantile(0.5), Some(0));
    }
}
