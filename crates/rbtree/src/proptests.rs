//! Property-based tests: the tree must behave exactly like a reference
//! `BTreeMap<K, u64>` model under arbitrary interleavings of operations,
//! and every operation must preserve the red-black + order-statistic
//! invariants checked by `FreqTree::validate`.

use crate::FreqTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u8),
    Remove(u16, u8),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (any::<u16>(), 1..16u8).prop_map(|(k, f)| Op::Insert(k % 512, f)),
        6 => (any::<u16>(), 1..16u8).prop_map(|(k, f)| Op::Remove(k % 512, f)),
        1 => Just(Op::Clear),
    ]
}

fn model_quantile(model: &BTreeMap<u64, u64>, phi: f64) -> Option<u64> {
    let total: u64 = model.values().sum();
    if total == 0 {
        return None;
    }
    let rank = ((phi * total as f64).ceil() as u64).clamp(1, total);
    let mut running = 0;
    for (&k, &c) in model {
        running += c;
        if running >= rank {
            return Some(k);
        }
    }
    unreachable!("rank ≤ total")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary op sequences agree with the BTreeMap model and keep all
    /// invariants.
    #[test]
    fn model_equivalence(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut tree: FreqTree<u64> = FreqTree::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, f) => {
                    let (k, f) = (k as u64, f as u64);
                    tree.insert(k, f);
                    *model.entry(k).or_insert(0) += f;
                }
                Op::Remove(k, f) => {
                    let (k, f) = (k as u64, f as u64);
                    let available = model.get(&k).copied().unwrap_or(0);
                    let res = tree.remove(k, f);
                    if available >= f {
                        prop_assert!(res.is_ok());
                        if available == f {
                            model.remove(&k);
                        } else {
                            *model.get_mut(&k).unwrap() -= f;
                        }
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::Clear => {
                    tree.clear();
                    model.clear();
                }
            }
            tree.validate().map_err(TestCaseError::fail)?;
            let model_total: u64 = model.values().sum();
            prop_assert_eq!(tree.total(), model_total);
            prop_assert_eq!(tree.unique_len(), model.len());
        }

        // Full in-order agreement.
        let tree_pairs: Vec<(u64, u64)> = tree.iter().collect();
        let model_pairs: Vec<(u64, u64)> = model.iter().map(|(&k, &c)| (k, c)).collect();
        prop_assert_eq!(tree_pairs, model_pairs);
    }

    /// select(rank) enumerates the sorted multiset.
    #[test]
    fn select_is_sorted_enumeration(keys in proptest::collection::vec((0u64..256, 1u64..8), 1..80)) {
        let mut tree = FreqTree::new();
        let mut expanded: Vec<u64> = Vec::new();
        for &(k, f) in &keys {
            tree.insert(k, f);
            for _ in 0..f {
                expanded.push(k);
            }
        }
        expanded.sort_unstable();
        for (i, &want) in expanded.iter().enumerate() {
            prop_assert_eq!(tree.select(i as u64 + 1), Some(want));
        }
        prop_assert_eq!(tree.select(expanded.len() as u64 + 1), None);
    }

    /// quantile() agrees with the model on arbitrary fractions.
    #[test]
    fn quantile_matches_model(
        keys in proptest::collection::vec((0u64..128, 1u64..5), 1..60),
        phi in 0.0f64..=1.0,
    ) {
        let mut tree = FreqTree::new();
        let mut model = BTreeMap::new();
        for &(k, f) in &keys {
            tree.insert(k, f);
            *model.entry(k).or_insert(0u64) += f;
        }
        prop_assert_eq!(tree.quantile(phi), model_quantile(&model, phi));
    }

    /// Multi-quantile single-pass equals repeated select-based quantiles.
    #[test]
    fn quantiles_batch_matches_individual(
        keys in proptest::collection::vec((0u64..128, 1u64..5), 1..60),
        phis in proptest::collection::vec(0.001f64..=1.0, 1..6),
    ) {
        let mut tree = FreqTree::new();
        for &(k, f) in &keys {
            tree.insert(k, f);
        }
        let batch = tree.quantiles(&phis).unwrap();
        for (i, &phi) in phis.iter().enumerate() {
            prop_assert_eq!(Some(batch[i]), tree.quantile(phi));
        }
    }

    /// rank_of and select are mutually consistent: for every stored key,
    /// select(rank_of(key)) == key.
    #[test]
    fn rank_select_roundtrip(keys in proptest::collection::vec((0u64..200, 1u64..4), 1..50)) {
        let mut tree = FreqTree::new();
        for &(k, f) in &keys {
            tree.insert(k, f);
        }
        for (k, _) in tree.iter().collect::<Vec<_>>() {
            let r = tree.rank_of(k);
            prop_assert_eq!(tree.select(r), Some(k));
        }
    }

    /// insert_batch (sort + run-length + one descent per unique key) is
    /// observationally identical to per-element insertion.
    #[test]
    fn insert_batch_equals_per_element(keys in proptest::collection::vec(0u64..512, 0..300)) {
        let mut batched: FreqTree<u64> = FreqTree::new();
        let mut buf = keys.clone();
        batched.insert_batch(&mut buf);
        batched.validate().map_err(TestCaseError::fail)?;

        let mut reference: FreqTree<u64> = FreqTree::new();
        for &k in &keys {
            reference.insert(k, 1);
        }
        prop_assert_eq!(batched.total(), reference.total());
        prop_assert_eq!(batched.unique_len(), reference.unique_len());
        prop_assert_eq!(
            batched.iter().collect::<Vec<_>>(),
            reference.iter().collect::<Vec<_>>()
        );
    }

    /// merge_from is a multiset union: merging K trees built from K
    /// slices of a stream equals one tree built from the whole stream,
    /// and the result keeps every invariant.
    #[test]
    fn merge_from_equals_union(
        keys in proptest::collection::vec(0u64..512, 0..300),
        parts in 1usize..6,
    ) {
        let mut single: FreqTree<u64> = FreqTree::new();
        for &k in &keys {
            single.insert(k, 1);
        }
        // Deal round-robin into `parts` trees, then fold them together.
        let mut shards: Vec<FreqTree<u64>> = (0..parts).map(|_| FreqTree::new()).collect();
        for (i, &k) in keys.iter().enumerate() {
            shards[i % parts].insert(k, 1);
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge_from(shard);
        }
        merged.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(merged.total(), single.total());
        prop_assert_eq!(
            merged.iter().collect::<Vec<_>>(),
            single.iter().collect::<Vec<_>>()
        );
    }

    /// top_k returns the k largest elements with multiplicity, descending.
    #[test]
    fn top_k_matches_sorted_tail(
        keys in proptest::collection::vec((0u64..100, 1u64..4), 1..40),
        k in 0usize..40,
    ) {
        let mut tree = FreqTree::new();
        let mut expanded = Vec::new();
        for &(key, f) in &keys {
            tree.insert(key, f);
            for _ in 0..f {
                expanded.push(key);
            }
        }
        expanded.sort_unstable_by(|a, b| b.cmp(a));
        expanded.truncate(k);
        prop_assert_eq!(tree.top_k(k), expanded);
    }
}
