//! The flat direct-indexed frequency store for quantized key domains.

use crate::{FreqStore, RemoveError};
use qlove_shm::{CheckpointFile, CKPT_MAGIC, CKPT_VERSION};
use std::io;
use std::path::Path;
use std::sync::atomic::{compiler_fence, Ordering};

/// Slots per maintained block sum. 64 keeps one block of counts inside
/// a cache line pair while making the block array small enough (a few
/// hundred entries for 3-digit quantization) that rank scans skip empty
/// regions almost for free.
const BLOCK: usize = 64;

/// `10^e` for every exponent a `u64` can carry.
const POW10: [u64; 20] = {
    let mut t = [1u64; 20];
    let mut i = 1;
    while i < 20 {
        t[i] = t[i - 1] * 10;
        i += 1;
    }
    t
};

/// A frequency multiset over keys quantized to `d` significant decimal
/// digits, stored as a flat `Vec<u64>` of per-key frequencies indexed
/// by a reversible `(significand, exponent)` encoding.
///
/// # Index encoding
///
/// Quantization (§3.1 of the paper) maps every `u64` onto
/// `s × 10^e` with significand `s ∈ [10^(d-1), 10^d)` (or the value
/// itself when it has ≤ d digits). That domain is *small and bounded* —
/// for the paper's `d = 3`: 1000 direct values plus 900 significands ×
/// 17 possible exponents = 16 300 slots, ever — so it can be laid out
/// flat:
///
/// ```text
/// index(v) = v                                   v < 10^d
///          = 10^d + (e-1)·span + (s − 10^(d-1))  v = s·10^e, e ≥ 1
/// span     = 9·10^(d-1)
/// ```
///
/// The encoding is monotone (larger keys ⇒ larger indices), so an
/// index scan *is* sorted iteration, and it is reversible
/// (`value_of(index_of(v)) == quantize(v)`), so no keys are stored at
/// all. Encoding a raw value quantizes it as a side effect of the
/// `s = v / 10^e` division — [`DenseFreqStore::insert`] therefore
/// accepts unquantized input and quantizes it on entry (idempotent for
/// already-quantized keys, which is what the QLOVE operator feeds it).
///
/// # Costs versus the tree
///
/// * `insert`: one `ilog10`, one table-indexed division, three array
///   `+=` — O(1), no descent, no rebalancing, no per-key allocation.
/// * rank queries: prefix scans over the counts, accelerated by
///   per-[`BLOCK`] sums maintained incrementally on every mutation
///   (empty blocks are skipped without touching their counts).
/// * `merge_from`: a vectorized slice-add of the whole count array —
///   the distributed merge primitive that replaces one tree descent
///   per unique key.
/// * `memory_bytes`: **independent of occupancy** — the array grows to
///   the highest encoded index seen (never beyond the fixed domain
///   bound) and stays there. For `d = 3` that is ≤ 130 KB; a tree
///   holding the same sub-window is smaller at very low unique counts
///   but pays pointer-chasing on every operation. See the README's
///   backend-selection notes.
#[derive(Debug, Clone)]
pub struct DenseFreqStore {
    sig_digits: u32,
    /// `10^sig_digits` — first value that needs an exponent.
    base: u64,
    /// Significands per decade: `9·10^(d-1)`.
    span: usize,
    /// Hard cap on the index domain (`base + (20−d)·span`): `u64::MAX`
    /// has 20 digits, so no key encodes past this.
    max_slots: usize,
    /// The count and block-sum arrays — heap vectors or a mapped
    /// checkpoint slab; see [`Slab`].
    slab: Slab,
    total: u64,
    unique: usize,
}

/// Storage for the count and block-sum arrays.
///
/// * `Heap` — the original lazily-grown vectors (counts grow toward
///   `max_slots` in [`BLOCK`] multiples; `blocks[b]` sums
///   `counts[b·BLOCK..(b+1)·BLOCK]`).
/// * `Map` — both arrays live in a [`CheckpointFile`] slab at full
///   domain capacity (`counts_cap` words of counts, then the block
///   sums), so a boundary checkpoint is an `msync` and recovery is a
///   remap plus validation. The domain is bounded (≈ 130 KB at the
///   paper's `d = 3`), so pre-allocating it costs what the heap mode's
///   high-water mark would reach anyway.
enum Slab {
    Heap {
        counts: Vec<u64>,
        blocks: Vec<u64>,
    },
    Map {
        file: CheckpointFile,
        counts_cap: usize,
    },
}

impl Slab {
    fn counts(&self) -> &[u64] {
        match self {
            Slab::Heap { counts, .. } => counts,
            Slab::Map { file, counts_cap } => &file.data()[..*counts_cap],
        }
    }

    fn blocks(&self) -> &[u64] {
        match self {
            Slab::Heap { blocks, .. } => blocks,
            Slab::Map { file, counts_cap } => &file.data()[*counts_cap..],
        }
    }

    fn parts_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        match self {
            Slab::Heap { counts, blocks } => (counts.as_mut_slice(), blocks.as_mut_slice()),
            Slab::Map { file, counts_cap } => file.data_mut().split_at_mut(*counts_cap),
        }
    }
}

impl Clone for Slab {
    /// A mapped slab clones to a plain heap snapshot — the clone is an
    /// independent in-memory store, never a second owner of the file.
    fn clone(&self) -> Self {
        match self {
            Slab::Heap { counts, blocks } => Slab::Heap {
                counts: counts.clone(),
                blocks: blocks.clone(),
            },
            Slab::Map { .. } => Slab::Heap {
                counts: self.counts().to_vec(),
                blocks: self.blocks().to_vec(),
            },
        }
    }
}

impl std::fmt::Debug for Slab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slab::Heap { counts, .. } => write!(f, "Slab::Heap({} slots)", counts.len()),
            Slab::Map { file, counts_cap } => write!(
                f,
                "Slab::Map({} slots @ {:?})",
                counts_cap,
                file.path().unwrap_or_else(|| Path::new("<anon>"))
            ),
        }
    }
}

impl DenseFreqStore {
    /// Widest supported quantization: beyond 6 significant digits the
    /// index domain (≈ `13·10^d` slots) stops being "small" and the
    /// tree backend is the right tool. `QloveConfig::validate` rejects
    /// dense configurations above this, so misconfiguration fails at
    /// validation with a clear message rather than in the constructor.
    pub const MAX_SIG_DIGITS: u32 = 6;

    /// Empty store for keys quantized to `sig_digits` significant
    /// decimal digits.
    ///
    /// # Panics
    /// Panics unless `1 ≤ sig_digits ≤` [`DenseFreqStore::MAX_SIG_DIGITS`].
    pub fn new(sig_digits: u32) -> Self {
        let (base, span, max_slots) = Self::geometry(sig_digits);
        Self {
            sig_digits,
            base,
            span,
            max_slots,
            slab: Slab::Heap {
                counts: Vec::new(),
                blocks: Vec::new(),
            },
            total: 0,
            unique: 0,
        }
    }

    /// `(base, span, max_slots)` for a precision, shared by every
    /// constructor.
    ///
    /// # Panics
    /// Panics unless `1 ≤ sig_digits ≤` [`DenseFreqStore::MAX_SIG_DIGITS`].
    fn geometry(sig_digits: u32) -> (u64, usize, usize) {
        assert!(
            (1..=Self::MAX_SIG_DIGITS).contains(&sig_digits),
            "dense store supports 1–{} significant digits, got {sig_digits}",
            Self::MAX_SIG_DIGITS
        );
        let base = POW10[sig_digits as usize];
        let span = (9 * POW10[sig_digits as usize - 1]) as usize;
        let max_slots = base as usize + (20 - sig_digits as usize) * span;
        (base, span, max_slots)
    }

    /// Full-domain slab capacities for a precision:
    /// `(counts_cap, blocks_cap)`, both already `BLOCK`-aligned.
    fn slab_caps(sig_digits: u32) -> (usize, usize) {
        let (_, _, max_slots) = Self::geometry(sig_digits);
        let counts_cap = max_slots.next_multiple_of(BLOCK);
        (counts_cap, counts_cap / BLOCK)
    }

    /// Empty store whose slab lives in a freshly created (truncated)
    /// checkpoint file at `path`, pre-sized to the full quantized
    /// domain. Same semantics as [`DenseFreqStore::new`] plus the
    /// checkpoint API ([`Self::checkpoint_begin`] /
    /// [`Self::checkpoint_commit`] / [`Self::msync`]).
    ///
    /// # Panics
    /// As [`DenseFreqStore::new`], on an out-of-range precision.
    pub fn new_mapped(sig_digits: u32, path: &Path) -> io::Result<Self> {
        let (counts_cap, blocks_cap) = Self::slab_caps(sig_digits);
        let file = CheckpointFile::create(path, counts_cap + blocks_cap)?;
        Self::init_mapped(sig_digits, file, counts_cap)
    }

    /// [`Self::new_mapped`] over an anonymous in-memory checkpoint —
    /// the layout and seqlock logic without the filesystem, for tests
    /// and Miri.
    pub fn new_mapped_anon(sig_digits: u32) -> io::Result<Self> {
        let (counts_cap, blocks_cap) = Self::slab_caps(sig_digits);
        let file = CheckpointFile::anon(counts_cap + blocks_cap)?;
        Self::init_mapped(sig_digits, file, counts_cap)
    }

    fn init_mapped(
        sig_digits: u32,
        mut file: CheckpointFile,
        counts_cap: usize,
    ) -> io::Result<Self> {
        let (base, span, max_slots) = Self::geometry(sig_digits);
        let hdr = file.header_mut();
        hdr.sig_digits = sig_digits as u64;
        hdr.len = counts_cap as u64;
        hdr.blocks_off = counts_cap as u64;
        Ok(Self {
            sig_digits,
            base,
            span,
            max_slots,
            slab: Slab::Map { file, counts_cap },
            total: 0,
            unique: 0,
        })
    }

    /// Remap an existing checkpoint file as a live store — the
    /// crash-recovery path: a respawned same-host worker revalidates
    /// the header and slab instead of replaying QLVS frames.
    ///
    /// Rejects (with `InvalidData`) a checkpoint whose magic, version,
    /// precision, or geometry disagree, whose sequence word is odd (the
    /// writer died mid-burst — its contents cannot be trusted), or
    /// whose slab fails the full invariant walk. A rejected checkpoint
    /// falls back to replay; it never panics and never produces a
    /// half-trusted store.
    #[cfg(all(unix, not(miri)))]
    pub fn open_mapped(sig_digits: u32, path: &Path) -> io::Result<Self> {
        Self::from_checkpoint(sig_digits, CheckpointFile::open(path)?)
    }

    /// The validation core of [`Self::open_mapped`], split out so it
    /// runs under Miri over anonymous checkpoints.
    pub fn from_checkpoint(sig_digits: u32, file: CheckpointFile) -> io::Result<Self> {
        let (base, span, max_slots) = Self::geometry(sig_digits);
        let (counts_cap, blocks_cap) = Self::slab_caps(sig_digits);
        let hdr = *file.header();
        // CheckpointFile::validate checked magic/version/offsets
        // structurally, but an adopted anonymous file (the Miri path)
        // arrives unvalidated — recheck everything semantic here.
        if hdr.magic != CKPT_MAGIC || hdr.version != CKPT_VERSION {
            return Err(bad_ckpt("checkpoint magic/version mismatch"));
        }
        if hdr.sig_digits != sig_digits as u64 {
            return Err(bad_ckpt(
                "checkpoint precision does not match configuration",
            ));
        }
        if hdr.seq % 2 == 1 {
            return Err(bad_ckpt("checkpoint torn: writer died mid-burst"));
        }
        if hdr.len != counts_cap as u64
            || hdr.blocks_off != counts_cap as u64
            || file.data_words() != counts_cap + blocks_cap
        {
            return Err(bad_ckpt("checkpoint slab geometry mismatch"));
        }
        if hdr.unique > counts_cap as u64 {
            return Err(bad_ckpt("checkpoint unique count exceeds domain"));
        }
        let store = Self {
            sig_digits,
            base,
            span,
            max_slots,
            slab: Slab::Map { file, counts_cap },
            total: hdr.total,
            unique: hdr.unique as usize,
        };
        // Full invariant walk: block sums, total, unique must all agree
        // with the slab contents. O(domain) ≈ 16k words at d = 3.
        store.validate().map_err(|e| bad_ckpt(&e))?;
        Ok(store)
    }

    /// Whether the slab is checkpoint-backed.
    pub fn is_mapped(&self) -> bool {
        matches!(self.slab, Slab::Map { .. })
    }

    /// Path of the backing checkpoint file, if any.
    pub fn checkpoint_path(&self) -> Option<&Path> {
        match &self.slab {
            Slab::Map { file, .. } => file.path(),
            Slab::Heap { .. } => None,
        }
    }

    /// Mark the checkpoint dirty (sequence word odd) before a mutation
    /// burst. A process that dies between `begin` and
    /// [`Self::checkpoint_commit`] leaves an odd sequence word, which
    /// [`Self::open_mapped`] rejects — the recovery path then replays
    /// instead of trusting torn state. No-op for heap slabs.
    pub fn checkpoint_begin(&mut self) {
        if let Slab::Map { file, .. } = &mut self.slab {
            let hdr = file.header_mut();
            hdr.seq |= 1;
            // Single-owner file: ordering against our own later stores
            // only needs to survive compiler reordering (the page cache
            // gives the successor process one coherent view).
            compiler_fence(Ordering::SeqCst);
        }
    }

    /// Publish a consistent checkpoint: refresh the header summary
    /// fields and flip the sequence word back to even. `boundary` and
    /// `batches` record replay progress for the recovery protocol
    /// (batches applied since the last boundary). No-op for heap slabs.
    pub fn checkpoint_commit(&mut self, boundary: u64, batches: u64) {
        let (total, unique) = (self.total, self.unique as u64);
        if let Slab::Map { file, .. } = &mut self.slab {
            compiler_fence(Ordering::SeqCst);
            let hdr = file.header_mut();
            hdr.total = total;
            hdr.unique = unique;
            hdr.boundary = boundary;
            hdr.batches = batches;
            compiler_fence(Ordering::SeqCst);
            hdr.seq = (hdr.seq | 1) + 1;
        }
    }

    /// `(boundary, batches)` recorded by the last
    /// [`Self::checkpoint_commit`]; `None` for heap slabs.
    pub fn checkpoint_state(&self) -> Option<(u64, u64)> {
        match &self.slab {
            Slab::Map { file, .. } => {
                let hdr = file.header();
                Some((hdr.boundary, hdr.batches))
            }
            Slab::Heap { .. } => None,
        }
    }

    /// Flush a mapped slab to its file (durability at a boundary);
    /// no-op for heap slabs.
    pub fn msync(&self) -> io::Result<()> {
        match &self.slab {
            Slab::Map { file, .. } => file.msync(),
            Slab::Heap { .. } => Ok(()),
        }
    }

    /// Surrender the backing checkpoint, consuming the store — test
    /// support for exercising [`Self::from_checkpoint`] on anonymous
    /// slabs that have no path to reopen.
    pub fn into_checkpoint(self) -> Option<CheckpointFile> {
        match self.slab {
            Slab::Map { file, .. } => Some(file),
            Slab::Heap { .. } => None,
        }
    }

    /// The configured significant-digit count.
    pub fn sig_digits(&self) -> u32 {
        self.sig_digits
    }

    /// The quantized form of `v` under this store's precision — what
    /// [`DenseFreqStore::insert`] actually stores for `v`.
    pub fn quantize(&self, v: u64) -> u64 {
        self.value_of(self.index_of(v))
    }

    #[inline]
    fn index_of(&self, v: u64) -> usize {
        if v < self.base {
            return v as usize;
        }
        let e = (v.ilog10() + 1 - self.sig_digits) as usize;
        let s = v / POW10[e];
        self.base as usize + (e - 1) * self.span + (s - self.base / 10) as usize
    }

    /// Decode an index back to its key. Only called for indices that
    /// some key encoded to (occupied slots or `index_of` output), so
    /// the multiplication cannot overflow.
    #[inline]
    fn value_of(&self, idx: usize) -> u64 {
        let b = self.base as usize;
        if idx < b {
            return idx as u64;
        }
        let r = idx - b;
        let e = r / self.span + 1;
        let s = r % self.span + b / 10;
        s as u64 * POW10[e]
    }

    /// Grow `counts`/`blocks` to cover `idx` (in `BLOCK` multiples).
    /// Mapped slabs are pre-sized to the full domain, so only the heap
    /// mode ever grows.
    #[inline]
    fn ensure(&mut self, idx: usize) {
        debug_assert!(idx < self.max_slots);
        match &mut self.slab {
            Slab::Heap { counts, blocks } => {
                if idx < counts.len() {
                    return;
                }
                let len =
                    ((idx + 1).div_ceil(BLOCK) * BLOCK).min(self.max_slots.next_multiple_of(BLOCK));
                counts.resize(len, 0);
                blocks.resize(len.div_ceil(BLOCK), 0);
            }
            Slab::Map { counts_cap, .. } => debug_assert!(idx < *counts_cap),
        }
    }

    /// Add one occurrence of every element of `values` — the batched
    /// ingestion primitive. Unlike the tree's `insert_batch`, no sort
    /// and no scratch copy are needed: direct indexing makes each
    /// element O(1), and encoding quantizes raw input on the fly.
    pub fn insert_slice(&mut self, values: &[u64]) {
        for &v in values {
            self.insert(v, 1);
        }
    }

    /// Bulk-add strictly-ascending `(key, frequency)` pairs — the
    /// summary-fold fast path behind distributed merging. Equivalent in
    /// final state to [`FreqStore::extend_counts`] over the same pairs.
    ///
    /// Sortedness buys three things over per-pair `insert`:
    ///
    /// * the array growth check runs **once**, against the last key;
    /// * block sums and the total are accumulated in registers and
    ///   flushed per block run / at the end, not per pair;
    /// * the significand division is replaced by a per-decade
    ///   floating-point reciprocal multiply with an exact ±1
    ///   correction (the estimate's absolute error is ≤ `10^d·3·2⁻⁵³`,
    ///   far below one, so a single compare-and-adjust restores the
    ///   exact floor — property-tested against `extend_counts` across
    ///   the whole domain).
    ///
    /// Zero frequencies are skipped, matching `insert`.
    ///
    /// # Panics
    /// Debug-asserts ascending key order; release builds with unsorted
    /// input would produce a valid store for the wrong multiset, so
    /// callers must pass summary-ordered pairs (e.g.
    /// `QloveSummary::counts`, sorted by construction).
    pub fn extend_sorted_counts(&mut self, pairs: &[(u64, u64)]) {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "pairs must be strictly ascending"
        );
        let Some(&(last_key, _)) = pairs.last() else {
            return;
        };
        self.ensure(self.index_of(last_key));
        let (base, span) = (self.base, self.span);
        let (counts, blocks) = self.slab.parts_mut();
        let mut total_added = 0u64;
        let mut unique_added = 0usize;
        // Current decade: e = 0 covers keys below `base` (direct
        // indices); decade e ≥ 1 covers [base/10·unit, base·unit).
        let mut e = 0usize;
        let mut unit = 1u64;
        let mut recip = 1.0f64;
        // Exclusive key bound of the decade, in u128: the top decade's
        // bound (`base·10^(20−d)` ≈ 10^20) exceeds u64, and a saturated
        // u64 bound would never exceed a `u64::MAX` key, running `e`
        // past POW10.
        let mut hi = base as u128;
        let mut decade_idx = 0usize; // index of the decade's first slot, minus lowest significand
        let mut block = usize::MAX;
        let mut block_acc = 0u64;
        for &(key, freq) in pairs {
            if freq == 0 {
                continue;
            }
            while key as u128 >= hi {
                e += 1;
                unit = POW10[e];
                hi = unit as u128 * base as u128;
                recip = 1.0 / unit as f64;
                decade_idx = base as usize + (e - 1) * span - (base / 10) as usize;
            }
            let idx = if e == 0 {
                key as usize
            } else {
                // s = ⌊key / unit⌋ via reciprocal multiply; the f64
                // estimate is within one of the true significand, and
                // the u128 compare repairs it exactly.
                let mut s = (key as f64 * recip) as u64;
                let p = s as u128 * unit as u128;
                if p > key as u128 {
                    s -= 1;
                } else if p + unit as u128 <= key as u128 {
                    s += 1;
                }
                decade_idx + s as usize
            };
            let slot = &mut counts[idx];
            unique_added += usize::from(*slot == 0);
            *slot += freq;
            total_added += freq;
            let bi = idx / BLOCK;
            if bi != block {
                if block != usize::MAX {
                    blocks[block] += block_acc;
                }
                block = bi;
                block_acc = 0;
            }
            block_acc += freq;
        }
        if block != usize::MAX {
            blocks[block] += block_acc;
        }
        self.total += total_added;
        self.unique += unique_added;
    }

    /// Multiset union via slice-add: grow to cover `other`, count the
    /// slots it newly populates, then add its count and block arrays
    /// element-wise (both loops branch-free and auto-vectorizable).
    ///
    /// # Panics
    /// Panics when the stores disagree on quantization precision —
    /// their indices would mean different keys.
    pub fn merge_from(&mut self, other: &DenseFreqStore) {
        assert_eq!(
            self.sig_digits, other.sig_digits,
            "cannot merge dense stores of different precision"
        );
        let other_counts = other.slab.counts();
        let other_blocks = other.slab.blocks();
        let n = other_counts.len();
        if n == 0 {
            return;
        }
        // A mapped `other` is BLOCK-rounded above the domain bound;
        // clamping still grows to the same rounded length.
        self.ensure((n - 1).min(self.max_slots - 1));
        let (counts, blocks) = self.slab.parts_mut();
        let mut unique_added = 0usize;
        for (a, &b) in counts[..n].iter_mut().zip(other_counts) {
            unique_added += usize::from(*a == 0 && b != 0);
            *a += b;
        }
        for (a, &b) in blocks.iter_mut().zip(other_blocks) {
            *a += b;
        }
        self.unique += unique_added;
        self.total += other.total;
    }

    /// Walk every invariant (block sums, total, unique count) — test
    /// support, O(slots).
    pub fn validate(&self) -> Result<(), String> {
        let counts = self.slab.counts();
        let blocks = self.slab.blocks();
        let mut total = 0u64;
        let mut unique = 0usize;
        for (b, chunk) in counts.chunks(BLOCK).enumerate() {
            let sum: u64 = chunk.iter().sum();
            if sum != blocks[b] {
                return Err(format!("block {b}: stored {} vs walked {sum}", blocks[b]));
            }
            total += sum;
            unique += chunk.iter().filter(|&&c| c != 0).count();
        }
        if total != self.total {
            return Err(format!("total: cached {} vs walked {total}", self.total));
        }
        if unique != self.unique {
            return Err(format!("unique: cached {} vs walked {unique}", self.unique));
        }
        Ok(())
    }
}

impl FreqStore for DenseFreqStore {
    fn insert(&mut self, key: u64, freq: u64) {
        if freq == 0 {
            return;
        }
        let idx = self.index_of(key);
        self.ensure(idx);
        let (counts, blocks) = self.slab.parts_mut();
        let newly_occupied = counts[idx] == 0;
        counts[idx] += freq;
        blocks[idx / BLOCK] += freq;
        self.unique += usize::from(newly_occupied);
        self.total += freq;
    }

    fn insert_batch(&mut self, batch: &mut [u64]) {
        self.insert_slice(batch);
    }

    fn remove(&mut self, key: u64, freq: u64) -> Result<(), RemoveError> {
        if freq == 0 {
            return Ok(());
        }
        let idx = self.index_of(key);
        let stored_key = self.value_of(idx);
        let (counts, blocks) = self.slab.parts_mut();
        // Exact-match semantics: a key this store would quantize away
        // (`quantize(key) != key`) is by construction never stored.
        if idx >= counts.len() || counts[idx] == 0 || stored_key != key {
            return Err(RemoveError::KeyNotFound);
        }
        let available = counts[idx];
        if freq > available {
            return Err(RemoveError::InsufficientCount { available });
        }
        counts[idx] -= freq;
        blocks[idx / BLOCK] -= freq;
        let emptied = counts[idx] == 0;
        self.total -= freq;
        self.unique -= usize::from(emptied);
        Ok(())
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn unique_len(&self) -> usize {
        self.unique
    }

    fn clear(&mut self) {
        // Zero only occupied blocks (the block sums are an occupancy
        // map), so the boundary reset costs O(live data), not O(domain).
        let (counts, blocks) = self.slab.parts_mut();
        for (b, sum) in blocks.iter_mut().enumerate() {
            if *sum != 0 {
                counts[b * BLOCK..(b + 1) * BLOCK].fill(0);
                *sum = 0;
            }
        }
        self.total = 0;
        self.unique = 0;
    }

    fn count_of(&self, key: u64) -> u64 {
        let idx = self.index_of(key);
        let counts = self.slab.counts();
        if idx < counts.len() && self.value_of(idx) == key {
            counts[idx]
        } else {
            0
        }
    }

    fn select(&self, r: u64) -> Option<u64> {
        if r == 0 || r > self.total {
            return None;
        }
        let counts = self.slab.counts();
        let mut acc = 0u64;
        for (b, &bsum) in self.slab.blocks().iter().enumerate() {
            if acc + bsum < r {
                acc += bsum;
                continue;
            }
            for (off, &c) in counts[b * BLOCK..(b + 1) * BLOCK].iter().enumerate() {
                acc += c;
                if acc >= r {
                    return Some(self.value_of(b * BLOCK + off));
                }
            }
        }
        unreachable!("1 ≤ r ≤ total implies some slot reaches r")
    }

    fn rank_of(&self, key: u64) -> u64 {
        let counts = self.slab.counts();
        let blocks = self.slab.blocks();
        // Everything in slots ≤ index_of(key) is ≤ quantize(key) ≤ key;
        // the next occupied slot decodes strictly above key (the next
        // quantized value is quantize(key) + its unit > key).
        let end = (self.index_of(key) + 1).min(counts.len());
        let full = end / BLOCK;
        blocks[..full].iter().sum::<u64>() + counts[full * BLOCK..end].iter().sum::<u64>()
    }

    fn quantile(&self, phi: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let r = (phi * self.total as f64).ceil() as u64;
        self.select(r.clamp(1, self.total))
    }

    fn quantiles_into(&self, phis: &[f64], out: &mut Vec<u64>) -> bool {
        out.clear();
        if self.total == 0 || phis.is_empty() {
            return phis.is_empty();
        }
        // Identical rank plan to `FreqTree::quantiles_into` — sorted
        // clamped ranks, answers in caller order — so the two backends
        // return bit-identical vectors.
        let mut order: Vec<usize> = (0..phis.len()).collect();
        order.sort_by(|&a, &b| phis[a].partial_cmp(&phis[b]).expect("NaN quantile"));
        let ranks: Vec<u64> = order
            .iter()
            .map(|&i| ((phis[i] * self.total as f64).ceil() as u64).clamp(1, self.total))
            .collect();
        out.resize(phis.len(), 0);
        let counts = self.slab.counts();
        let mut next = 0usize;
        let mut running = 0u64;
        'outer: for (b, &bsum) in self.slab.blocks().iter().enumerate() {
            if bsum == 0 || running + bsum < ranks[next] {
                running += bsum;
                continue;
            }
            for (off, &c) in counts[b * BLOCK..(b + 1) * BLOCK].iter().enumerate() {
                if c == 0 {
                    continue;
                }
                running += c;
                while running >= ranks[next] {
                    out[order[next]] = self.value_of(b * BLOCK + off);
                    next += 1;
                    if next == ranks.len() {
                        break 'outer;
                    }
                }
            }
        }
        debug_assert_eq!(next, ranks.len(), "every clamped rank is reachable");
        true
    }

    fn top_k_into(&self, k: usize, out: &mut Vec<u64>) {
        out.clear();
        if k == 0 {
            return;
        }
        let counts = self.slab.counts();
        let blocks = self.slab.blocks();
        for b in (0..blocks.len()).rev() {
            if blocks[b] == 0 {
                continue;
            }
            for idx in (b * BLOCK..(b + 1) * BLOCK).rev() {
                let mut c = counts[idx];
                if c == 0 {
                    continue;
                }
                let v = self.value_of(idx);
                while c > 0 && out.len() < k {
                    out.push(v);
                    c -= 1;
                }
                if out.len() == k {
                    return;
                }
            }
        }
    }

    fn min_key(&self) -> Option<u64> {
        let counts = self.slab.counts();
        let b = self.slab.blocks().iter().position(|&s| s != 0)?;
        (b * BLOCK..(b + 1) * BLOCK)
            .find(|&i| counts[i] != 0)
            .map(|i| self.value_of(i))
    }

    fn max_key(&self) -> Option<u64> {
        let counts = self.slab.counts();
        let b = self.slab.blocks().iter().rposition(|&s| s != 0)?;
        (b * BLOCK..(b + 1) * BLOCK)
            .rev()
            .find(|&i| counts[i] != 0)
            .map(|i| self.value_of(i))
    }

    fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        let counts = self.slab.counts();
        for (b, &bsum) in self.slab.blocks().iter().enumerate() {
            if bsum == 0 {
                continue;
            }
            for (off, &c) in counts[b * BLOCK..(b + 1) * BLOCK].iter().enumerate() {
                if c != 0 {
                    f(self.value_of(b * BLOCK + off), c);
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        match &self.slab {
            Slab::Heap { counts, blocks } => {
                (counts.capacity() + blocks.capacity()) * std::mem::size_of::<u64>()
            }
            // A mapped slab is the full fixed domain plus its header.
            Slab::Map { file, .. } => {
                (file.data_words() + qlove_shm::ckpt::CKPT_HEADER_WORDS)
                    * std::mem::size_of::<u64>()
            }
        }
    }
}

fn bad_ckpt(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("dense checkpoint: {msg}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_basics() {
        let s = DenseFreqStore::new(3);
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.unique_len(), 0);
        assert_eq!(s.select(1), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min_key(), None);
        assert_eq!(s.max_key(), None);
        s.validate().unwrap();
    }

    #[test]
    fn encoding_is_reversible_and_monotone_on_quantized_keys() {
        let s = DenseFreqStore::new(3);
        // Walk the entire quantized domain in value order: indices must
        // be strictly increasing and decode back exactly.
        let mut prev_idx = None;
        let mut keys: Vec<u64> = (0..1000u64).collect();
        for e in 1..=17u32 {
            for sig in 100u64..1000 {
                let (v, overflow) = sig.overflowing_mul(POW10[e as usize]);
                if overflow || v < sig {
                    continue;
                }
                keys.push(v);
            }
        }
        keys.sort_unstable();
        keys.dedup();
        for &v in &keys {
            let idx = s.index_of(v);
            assert_eq!(s.value_of(idx), v, "decode(encode({v}))");
            assert!(idx < s.max_slots, "{v} exceeds the domain bound");
            if let Some(p) = prev_idx {
                assert!(idx > p, "encoding not monotone at {v}");
            }
            prev_idx = Some(idx);
        }
    }

    #[test]
    fn encode_quantizes_raw_values() {
        let s = DenseFreqStore::new(3);
        assert_eq!(s.quantize(74_265), 74_200);
        assert_eq!(s.quantize(1_247), 1_240);
        assert_eq!(s.quantize(999), 999);
        assert_eq!(s.quantize(0), 0);
        assert_eq!(s.quantize(u64::MAX), 18_400_000_000_000_000_000);
        let mut st = DenseFreqStore::new(3);
        st.insert(74_265, 1);
        assert_eq!(st.count_of(74_200), 1);
        assert_eq!(st.count_of(74_265), 0, "unquantized key is not stored");
        st.validate().unwrap();
    }

    #[test]
    fn extreme_values_stay_in_domain() {
        let mut s = DenseFreqStore::new(3);
        s.insert(u64::MAX, 2);
        s.insert(0, 1);
        s.insert(1, 1);
        assert_eq!(s.max_key(), Some(18_400_000_000_000_000_000));
        assert_eq!(s.min_key(), Some(0));
        assert_eq!(s.total(), 4);
        assert_eq!(s.select(4), Some(18_400_000_000_000_000_000));
        assert_eq!(s.rank_of(u64::MAX), 4);
        s.validate().unwrap();
    }

    #[test]
    fn select_and_rank_respect_multiplicity() {
        let mut s = DenseFreqStore::new(3);
        s.insert(10, 3);
        s.insert(20, 1);
        s.insert(5, 2);
        // Multiset: 5,5,10,10,10,20
        assert_eq!(s.select(1), Some(5));
        assert_eq!(s.select(3), Some(10));
        assert_eq!(s.select(6), Some(20));
        assert_eq!(s.select(7), None);
        assert_eq!(s.rank_of(4), 0);
        assert_eq!(s.rank_of(10), 5);
        assert_eq!(s.rank_of(15), 5);
        assert_eq!(s.rank_of(99), 6);
        s.validate().unwrap();
    }

    #[test]
    fn insert_slice_equals_per_element() {
        let data: Vec<u64> = (0..5000u64).map(|i| (i * 7919) % 97_000).collect();
        let mut per = DenseFreqStore::new(3);
        for &v in &data {
            per.insert(v, 1);
        }
        let mut batched = DenseFreqStore::new(3);
        batched.insert_slice(&data);
        batched.validate().unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        per.counts_into(&mut a);
        batched.counts_into(&mut b);
        assert_eq!(a, b);
        assert_eq!(per.total(), batched.total());
    }

    #[test]
    fn extend_sorted_counts_matches_extend_counts_across_the_domain() {
        // Sweep every decade boundary, the direct region, the top
        // decade (where u64 arithmetic is near overflow), unquantized
        // keys, and random dense runs — the fast fold must agree with
        // per-pair inserts bit for bit.
        for d in [1u32, 3, 6] {
            let probe = DenseFreqStore::new(d);
            let mut keys: Vec<u64> = vec![0, 1, u64::MAX];
            for e in 0..20u32 {
                for delta in [0u64, 1, 7] {
                    keys.push(10u64.pow(e).saturating_add(delta));
                    keys.push(10u64.pow(e).saturating_sub(delta.min(10u64.pow(e))));
                }
            }
            keys.extend((0..4_000u64).map(|i| (i * 2654435761) % 10_000_000));
            // extend_sorted_counts wants strictly-ascending *stored*
            // keys, so sort/dedup the quantized forms.
            let mut quantized: Vec<u64> = keys.iter().map(|&k| probe.quantize(k)).collect();
            quantized.sort_unstable();
            quantized.dedup();
            let pairs: Vec<(u64, u64)> = quantized
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, 1 + (i as u64 % 5)))
                .collect();
            let mut fast = DenseFreqStore::new(d);
            fast.extend_sorted_counts(&pairs);
            fast.validate().unwrap();
            let mut slow = DenseFreqStore::new(d);
            slow.extend_counts(pairs.iter().copied());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            fast.counts_into(&mut a);
            slow.counts_into(&mut b);
            assert_eq!(a, b, "d = {d}");
            assert_eq!(fast.total(), slow.total());
            assert_eq!(fast.unique_len(), slow.unique_len());
            // Folding a second round on top of existing state also
            // agrees (unique accounting with occupied slots).
            fast.extend_sorted_counts(&pairs);
            slow.extend_counts(pairs.iter().copied());
            fast.validate().unwrap();
            assert_eq!(fast.total(), slow.total());
            assert_eq!(fast.unique_len(), slow.unique_len());
        }
    }

    #[test]
    fn extend_sorted_counts_survives_the_top_decade() {
        // Regression: a u64::MAX key once ran the decade-advance loop
        // past POW10 (the saturated u64 bound could never exceed the
        // key). The top decade must behave exactly like per-key insert.
        for d in 1..=6u32 {
            let probe = DenseFreqStore::new(d);
            let mut keys = vec![
                probe.quantize(u64::MAX / 97),
                probe.quantize(u64::MAX - 1),
                probe.quantize(u64::MAX),
            ];
            keys.sort_unstable();
            keys.dedup();
            let pairs: Vec<(u64, u64)> = keys.into_iter().map(|k| (k, 2)).collect();
            let mut fast = DenseFreqStore::new(d);
            fast.extend_sorted_counts(&pairs);
            fast.validate().unwrap();
            let mut slow = DenseFreqStore::new(d);
            slow.extend_counts(pairs.iter().copied());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            fast.counts_into(&mut a);
            slow.counts_into(&mut b);
            assert_eq!(a, b, "d = {d}");
        }
        // And through the enum fold, as a coordinator would hit it.
        let mut store = crate::FreqStoreImpl::dense(3);
        store.merge_sorted_counts(&[(7, 1), (18_400_000_000_000_000_000, 3)]);
        assert_eq!(FreqStore::total(&store), 4);
    }

    #[test]
    fn extend_sorted_counts_empty_and_zero_freq() {
        let mut s = DenseFreqStore::new(3);
        s.extend_sorted_counts(&[]);
        assert!(s.is_empty());
        s.extend_sorted_counts(&[(5, 0), (10, 2)]);
        assert_eq!(s.count_of(5), 0);
        assert_eq!(s.count_of(10), 2);
        s.validate().unwrap();
    }

    #[test]
    fn merge_from_is_multiset_union() {
        let mut a = DenseFreqStore::new(3);
        a.extend_counts([(1u64, 2), (555_000, 1), (9, 3)]);
        let mut b = DenseFreqStore::new(3);
        b.extend_counts([(0u64, 1), (555_000, 4), (12_300_000, 2)]);
        a.merge_from(&b);
        a.validate().unwrap();
        let mut pairs = Vec::new();
        a.counts_into(&mut pairs);
        assert_eq!(
            pairs,
            vec![(0, 1), (1, 2), (9, 3), (555_000, 5), (12_300_000, 2)]
        );
        assert_eq!(a.total(), 13);
        assert_eq!(a.unique_len(), 5);
        // Source untouched; empty merges are no-ops.
        assert_eq!(b.total(), 7);
        a.merge_from(&DenseFreqStore::new(3));
        assert_eq!(a.total(), 13);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_mismatched_precision() {
        let mut a = DenseFreqStore::new(3);
        let mut b = DenseFreqStore::new(4);
        b.insert(1, 1);
        a.merge_from(&b);
    }

    #[test]
    fn clear_is_proportional_to_occupancy_and_keeps_memory() {
        let mut s = DenseFreqStore::new(3);
        for v in 0..10_000u64 {
            s.insert(v * 13, 1);
        }
        let bytes = s.memory_bytes();
        s.clear();
        s.validate().unwrap();
        assert!(s.is_empty());
        assert_eq!(s.memory_bytes(), bytes);
        s.insert(5, 1);
        assert_eq!(s.quantile(0.5), Some(5));
    }

    #[test]
    fn zero_freq_operations_are_noops() {
        let mut s = DenseFreqStore::new(2);
        s.insert(10, 0);
        assert!(s.is_empty());
        s.remove(10, 0).unwrap();
        s.validate().unwrap();
    }

    #[test]
    fn works_at_every_supported_precision() {
        for d in 1..=6u32 {
            let mut s = DenseFreqStore::new(d);
            let data: Vec<u64> = (0..2_000u64).map(|i| (i * 104729) % 1_000_000).collect();
            for &v in &data {
                s.insert(v, 1);
            }
            s.validate().unwrap();
            assert_eq!(s.total(), 2_000);
            let q = s.quantile(0.5).unwrap();
            assert_eq!(s.quantize(q), q, "quantile output is a stored key");
        }
    }

    #[test]
    #[should_panic(expected = "1–6 significant digits")]
    fn rejects_unsupported_precision() {
        DenseFreqStore::new(7);
    }

    #[test]
    fn quantiles_into_matches_single_quantile() {
        let mut s = DenseFreqStore::new(3);
        for v in [5u64, 9, 9, 1, 14, 2, 2, 2, 30, 7] {
            s.insert(v, 1);
        }
        let phis = [0.999, 0.5, 0.9, 0.1];
        let mut buf = vec![77u64; 2];
        assert!(s.quantiles_into(&phis, &mut buf));
        for (i, &phi) in phis.iter().enumerate() {
            assert_eq!(Some(buf[i]), s.quantile(phi), "phi {phi}");
        }
        let empty = DenseFreqStore::new(3);
        assert!(!empty.quantiles_into(&[0.5], &mut buf));
        assert!(buf.is_empty());
        assert!(empty.quantiles_into(&[], &mut buf));
    }

    /// Drive identical operations through a heap store and a mapped
    /// (anonymous, Miri-runnable) store: every observable must agree.
    #[test]
    fn mapped_store_matches_heap_store() {
        let mut heap = DenseFreqStore::new(3);
        let mut mapped = DenseFreqStore::new_mapped_anon(3).unwrap();
        assert!(mapped.is_mapped());
        assert!(!heap.is_mapped());
        let keys: Vec<u64> = (0..3_000u64)
            .map(|i| (i * 2654435761) % 10_000_000)
            .collect();
        for s in [&mut heap, &mut mapped] {
            s.insert_slice(&keys);
            s.extend_sorted_counts(&[(5, 2), (1_000_000, 1), (18_400_000_000_000_000_000, 3)]);
            s.remove(s.quantize(keys[7]), 1).unwrap();
        }
        heap.validate().unwrap();
        mapped.validate().unwrap();
        assert_eq!(heap.total(), mapped.total());
        assert_eq!(heap.unique_len(), mapped.unique_len());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        heap.counts_into(&mut a);
        mapped.counts_into(&mut b);
        assert_eq!(a, b);
        for phi in [0.0, 0.1, 0.5, 0.9, 0.999] {
            assert_eq!(heap.quantile(phi), mapped.quantile(phi), "phi {phi}");
        }
        assert_eq!(heap.min_key(), mapped.min_key());
        assert_eq!(heap.max_key(), mapped.max_key());
        // merge_from across slab modes, both directions.
        let mut h2 = heap.clone();
        h2.merge_from(&mapped);
        let mut m2 = DenseFreqStore::new_mapped_anon(3).unwrap();
        m2.merge_from(&heap);
        m2.merge_from(&heap);
        m2.validate().unwrap();
        assert_eq!(h2.total(), m2.total());
        let (mut c, mut d) = (Vec::new(), Vec::new());
        h2.counts_into(&mut c);
        m2.counts_into(&mut d);
        assert_eq!(c, d);
        // A clone of a mapped store is an independent heap snapshot.
        let snap = mapped.clone();
        assert!(!snap.is_mapped());
        assert_eq!(snap.total(), mapped.total());
        // Boundary reset works in place.
        mapped.clear();
        mapped.validate().unwrap();
        assert!(mapped.is_empty());
        mapped.insert(42, 1);
        assert_eq!(mapped.quantile(0.5), Some(42));
    }

    #[test]
    fn checkpoint_roundtrip_restores_exact_state() {
        let mut store = DenseFreqStore::new_mapped_anon(3).unwrap();
        store.checkpoint_begin();
        store.insert_slice(&[10, 10, 74_265, 999_999, 1]);
        store.checkpoint_commit(5, 2);
        assert_eq!(store.checkpoint_state(), Some((5, 2)));
        store.msync().unwrap();
        let mut expect = Vec::new();
        store.counts_into(&mut expect);
        let total = store.total();

        let ck = store.into_checkpoint().unwrap();
        let restored = DenseFreqStore::from_checkpoint(3, ck).unwrap();
        assert_eq!(restored.checkpoint_state(), Some((5, 2)));
        assert_eq!(restored.total(), total);
        let mut got = Vec::new();
        restored.counts_into(&mut got);
        assert_eq!(got, expect);
        restored.validate().unwrap();
    }

    #[test]
    fn torn_checkpoint_is_rejected_not_trusted() {
        let mut store = DenseFreqStore::new_mapped_anon(3).unwrap();
        store.insert(7, 1);
        store.checkpoint_commit(1, 0);
        // Die mid-burst: begin without commit leaves the seq word odd.
        store.checkpoint_begin();
        store.insert(8, 1);
        let ck = store.into_checkpoint().unwrap();
        let err = DenseFreqStore::from_checkpoint(3, ck).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        fn tamper(f: impl FnOnce(&mut CheckpointFile)) -> io::Result<DenseFreqStore> {
            let mut store = DenseFreqStore::new_mapped_anon(3).unwrap();
            store.insert(74_200, 3);
            store.checkpoint_commit(1, 0);
            let mut ck = store.into_checkpoint().unwrap();
            f(&mut ck);
            DenseFreqStore::from_checkpoint(3, ck)
        }
        assert!(tamper(|_| {}).is_ok());
        assert!(tamper(|ck| ck.header_mut().magic = 1).is_err());
        assert!(tamper(|ck| ck.header_mut().version = 99).is_err());
        assert!(tamper(|ck| ck.header_mut().sig_digits = 4).is_err());
        assert!(tamper(|ck| ck.header_mut().total = 999).is_err());
        assert!(tamper(|ck| ck.header_mut().unique = u64::MAX).is_err());
        assert!(tamper(|ck| ck.header_mut().len = 1).is_err());
        // Slab corruption that leaves the header plausible: the
        // invariant walk must catch a count/block-sum mismatch.
        assert!(tamper(|ck| ck.data_mut()[0] = 5).is_err());
        // Wrong-precision configuration against a valid file.
        let mut store = DenseFreqStore::new_mapped_anon(2).unwrap();
        store.checkpoint_commit(0, 0);
        let ck = store.into_checkpoint().unwrap();
        assert!(DenseFreqStore::from_checkpoint(3, ck).is_err());
    }

    #[cfg(all(unix, not(miri)))]
    #[test]
    fn mapped_file_survives_drop_and_reopen() {
        let path = std::env::temp_dir().join(format!("qlove-dense-ckpt-{}", std::process::id()));
        let mut expect = Vec::new();
        {
            let mut store = DenseFreqStore::new_mapped(3, &path).unwrap();
            assert_eq!(store.checkpoint_path(), Some(path.as_path()));
            store.checkpoint_begin();
            store.insert_slice(&[3, 14, 15, 926, 53_500, 53_589]);
            store.checkpoint_commit(9, 4);
            store.msync().unwrap();
            store.counts_into(&mut expect);
        }
        {
            let store = DenseFreqStore::open_mapped(3, &path).unwrap();
            assert_eq!(store.checkpoint_state(), Some((9, 4)));
            let mut got = Vec::new();
            store.counts_into(&mut got);
            assert_eq!(got, expect);
        }
        // Reopening with the wrong precision must fail cleanly.
        assert!(DenseFreqStore::open_mapped(4, &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn top_k_descending_with_multiplicity() {
        let mut s = DenseFreqStore::new(3);
        s.insert(1, 1);
        s.insert(50, 2);
        s.insert(9, 1);
        let mut buf = vec![99u64; 8];
        s.top_k_into(3, &mut buf);
        assert_eq!(buf, vec![50, 50, 9]);
        s.top_k_into(10, &mut buf);
        assert_eq!(buf, vec![50, 50, 9, 1]);
        s.top_k_into(0, &mut buf);
        assert!(buf.is_empty());
    }
}
