//! # qlove-freqstore — pluggable Level-1 frequency stores
//!
//! QLOVE's Level-1 state is a frequency multiset of `u64` telemetry
//! values: accumulate `{value → count}`, answer order statistics at the
//! sub-window boundary, union with other multisets under distributed
//! merge. The seed implementation is the arena red-black tree
//! ([`qlove_rbtree::FreqTree`]) — the right structure for *unbounded*
//! key domains. But the paper's 3-significant-digit quantization (§3.1)
//! collapses the domain to a small bounded set of `d.dd × 10^e` values,
//! and for that shape a tree descent per operation is pure overhead.
//!
//! This crate abstracts the multiset contract as the [`FreqStore`]
//! trait and adds a second implementation exploiting the quantized
//! shape:
//!
//! * [`DenseFreqStore`] — a flat `Vec<u64>` of frequencies directly
//!   indexed by a reversible `(significand, exponent)` encoding of
//!   quantized keys, with incrementally maintained per-block sums.
//!   Insert is O(1) array arithmetic, quantile evaluation is a prefix
//!   scan that skips empty blocks, and multiset union is a vectorized
//!   slice-add instead of one tree descent per unique key.
//! * [`FreqStoreImpl`] — runtime dispatch between the two, so the
//!   operator can pick a backend from its configuration without
//!   becoming generic (it is boxed as a `dyn QuantilePolicy` by the
//!   harness).
//!
//! Both backends implement the identical multiset semantics — same rank
//! convention, same iteration order, same `remove` errors — so swapping
//! backends changes throughput and memory, never answers. That bit-for-
//! bit equivalence is what `tests/proptest_backend.rs` locks down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;

pub use dense::DenseFreqStore;
pub use qlove_rbtree::{FreqTree, RemoveError};

/// The Level-1 frequency-multiset contract: everything QLOVE (and the
/// Exact baseline) needs from sub-window state, as implemented by both
/// the red-black [`FreqTree`] and the flat [`DenseFreqStore`].
///
/// Semantics are multiset semantics throughout: `insert` adds `freq`
/// occurrences, iteration yields `(key, frequency)` pairs in strictly
/// ascending key order, and all rank queries follow the paper's
/// 1-indexed `⌈φ·total⌉` convention.
pub trait FreqStore {
    /// Add `freq` occurrences of `key`. `freq == 0` is a no-op.
    fn insert(&mut self, key: u64, freq: u64);

    /// Add many `(key, frequency)` pairs; zero frequencies are skipped,
    /// duplicate keys accumulate.
    fn extend_counts<I: IntoIterator<Item = (u64, u64)>>(&mut self, runs: I) {
        for (key, freq) in runs {
            self.insert(key, freq);
        }
    }

    /// Bulk-insert one occurrence of every element of `batch`. The
    /// slice is mutable because implementations may sort it in place
    /// (the tree collapses it to runs; the dense store does not need
    /// to). Equivalent to `for &k in batch { insert(k, 1) }`.
    fn insert_batch(&mut self, batch: &mut [u64]);

    /// Remove `freq` occurrences of `key` (exact-match on the stored
    /// key). `freq == 0` is a no-op.
    fn remove(&mut self, key: u64, freq: u64) -> Result<(), RemoveError>;

    /// Total frequency over all keys.
    fn total(&self) -> u64;

    /// Number of distinct keys currently stored.
    fn unique_len(&self) -> usize;

    /// `true` when no elements are stored.
    fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Remove all elements but keep allocations for reuse (the
    /// tumbling-window reset at every sub-window boundary).
    fn clear(&mut self);

    /// Frequency of `key`, 0 if absent.
    fn count_of(&self, key: u64) -> u64;

    /// Value at 1-indexed rank `r` in the multiset (`1 ≤ r ≤ total`);
    /// `None` out of range.
    fn select(&self, r: u64) -> Option<u64>;

    /// Number of stored elements `≤ key`.
    fn rank_of(&self, key: u64) -> u64;

    /// Exact φ-quantile under the paper's `⌈φ·total⌉` convention;
    /// `None` on an empty store.
    fn quantile(&self, phi: f64) -> Option<u64>;

    /// Exact φ-quantiles for several fractions in one pass, into a
    /// caller-owned buffer (cleared first). `phis` need not be sorted;
    /// results land in the caller's order. Returns `false` — leaving
    /// `out` empty — exactly when the store is empty and `phis` is not.
    fn quantiles_into(&self, phis: &[f64], out: &mut Vec<u64>) -> bool;

    /// The `k` largest stored *elements* (with multiplicity),
    /// descending, into a caller-owned buffer (cleared first).
    fn top_k_into(&self, k: usize, out: &mut Vec<u64>);

    /// Smallest stored key, `None` when empty.
    fn min_key(&self) -> Option<u64>;

    /// Largest stored key, `None` when empty.
    fn max_key(&self) -> Option<u64>;

    /// Visit every `(key, frequency)` pair in ascending key order.
    fn for_each(&self, f: impl FnMut(u64, u64));

    /// Materialize the sorted `(key, frequency)` pairs into a
    /// caller-owned buffer (cleared first) — the summary-extraction
    /// primitive, shaped for buffer pooling.
    fn counts_into(&self, out: &mut Vec<(u64, u64)>) {
        out.clear();
        self.for_each(|k, c| out.push((k, c)));
    }

    /// Approximate heap footprint in bytes.
    fn memory_bytes(&self) -> usize;
}

impl FreqStore for FreqTree<u64> {
    fn insert(&mut self, key: u64, freq: u64) {
        FreqTree::insert(self, key, freq);
    }

    fn extend_counts<I: IntoIterator<Item = (u64, u64)>>(&mut self, runs: I) {
        FreqTree::extend_counts(self, runs);
    }

    fn insert_batch(&mut self, batch: &mut [u64]) {
        FreqTree::insert_batch(self, batch);
    }

    fn remove(&mut self, key: u64, freq: u64) -> Result<(), RemoveError> {
        FreqTree::remove(self, key, freq)
    }

    fn total(&self) -> u64 {
        FreqTree::total(self)
    }

    fn unique_len(&self) -> usize {
        FreqTree::unique_len(self)
    }

    fn is_empty(&self) -> bool {
        FreqTree::is_empty(self)
    }

    fn clear(&mut self) {
        FreqTree::clear(self);
    }

    fn count_of(&self, key: u64) -> u64 {
        FreqTree::count_of(self, key)
    }

    fn select(&self, r: u64) -> Option<u64> {
        FreqTree::select(self, r)
    }

    fn rank_of(&self, key: u64) -> u64 {
        FreqTree::rank_of(self, key)
    }

    fn quantile(&self, phi: f64) -> Option<u64> {
        FreqTree::quantile(self, phi)
    }

    fn quantiles_into(&self, phis: &[f64], out: &mut Vec<u64>) -> bool {
        FreqTree::quantiles_into(self, phis, out)
    }

    fn top_k_into(&self, k: usize, out: &mut Vec<u64>) {
        FreqTree::top_k_into(self, k, out);
    }

    fn min_key(&self) -> Option<u64> {
        FreqTree::min_key(self)
    }

    fn max_key(&self) -> Option<u64> {
        FreqTree::max_key(self)
    }

    fn for_each(&self, mut f: impl FnMut(u64, u64)) {
        for (k, c) in self.iter() {
            f(k, c);
        }
    }

    fn memory_bytes(&self) -> usize {
        FreqTree::memory_bytes(self)
    }
}

/// Runtime backend dispatch: one Level-1 store that is either a
/// red-black [`FreqTree`] (unbounded domains) or a [`DenseFreqStore`]
/// (quantized domains), selected when the operator is constructed.
///
/// Every [`FreqStore`] method matches once and delegates; the match is
/// hoisted out of inner loops by the per-backend bulk operations
/// ([`FreqStoreImpl::merge_from`], [`DenseFreqStore::insert_slice`]).
#[derive(Debug, Clone)]
pub enum FreqStoreImpl {
    /// Arena red-black tree — `O(log u)` operations, unbounded domain.
    Tree(FreqTree<u64>),
    /// Flat direct-indexed array — `O(1)` insert, bounded quantized
    /// domain.
    Dense(DenseFreqStore),
}

impl FreqStoreImpl {
    /// Tree backend with arena capacity for `unique_capacity` keys.
    pub fn tree(unique_capacity: usize) -> Self {
        FreqStoreImpl::Tree(FreqTree::with_capacity(unique_capacity))
    }

    /// Dense backend for keys quantized to `sig_digits` significant
    /// decimal digits.
    pub fn dense(sig_digits: u32) -> Self {
        FreqStoreImpl::Dense(DenseFreqStore::new(sig_digits))
    }

    /// Dense backend whose slab lives in a freshly created checkpoint
    /// file at `path` — the crash-safe worker store (see
    /// [`DenseFreqStore::new_mapped`]).
    #[cfg(all(unix, not(miri)))]
    pub fn dense_mapped(sig_digits: u32, path: &std::path::Path) -> std::io::Result<Self> {
        Ok(FreqStoreImpl::Dense(DenseFreqStore::new_mapped(
            sig_digits, path,
        )?))
    }

    /// Dense backend remapped from an existing checkpoint file — the
    /// recovery path (see [`DenseFreqStore::open_mapped`]). Rejects
    /// torn or corrupt checkpoints with `InvalidData`.
    #[cfg(all(unix, not(miri)))]
    pub fn dense_open_mapped(sig_digits: u32, path: &std::path::Path) -> std::io::Result<Self> {
        Ok(FreqStoreImpl::Dense(DenseFreqStore::open_mapped(
            sig_digits, path,
        )?))
    }

    /// The dense backend, when that is what this store dispatches to —
    /// the checkpoint API ([`DenseFreqStore::checkpoint_begin`] and
    /// friends) lives on the concrete type.
    pub fn as_dense(&self) -> Option<&DenseFreqStore> {
        match self {
            FreqStoreImpl::Dense(d) => Some(d),
            FreqStoreImpl::Tree(_) => None,
        }
    }

    /// Mutable access to the dense backend, `None` for trees.
    pub fn as_dense_mut(&mut self) -> Option<&mut DenseFreqStore> {
        match self {
            FreqStoreImpl::Dense(d) => Some(d),
            FreqStoreImpl::Tree(_) => None,
        }
    }

    /// Multiset union: fold every `(key, frequency)` pair of `other`
    /// into this store — the distributed sub-window merge primitive.
    ///
    /// Same-backend unions take the native path (one descent per unique
    /// key for trees, a vectorized slice-add for dense stores); mixed
    /// backends fall back to per-pair inserts, which is still exact.
    pub fn merge_from(&mut self, other: &FreqStoreImpl) {
        match (self, other) {
            (FreqStoreImpl::Tree(a), FreqStoreImpl::Tree(b)) => a.merge_from(b),
            (FreqStoreImpl::Dense(a), FreqStoreImpl::Dense(b)) => a.merge_from(b),
            (a, b) => b.for_each(|k, c| a.insert(k, c)),
        }
    }

    /// Fold strictly-ascending `(key, frequency)` pairs — the shape a
    /// shipped sub-window summary arrives in — through the backend's
    /// best bulk path: [`DenseFreqStore::extend_sorted_counts`] for the
    /// dense store (no per-pair growth check, no hardware divide),
    /// plain [`FreqStore::extend_counts`] descents for the tree (which
    /// gains nothing from sortedness beyond cache locality).
    pub fn merge_sorted_counts(&mut self, pairs: &[(u64, u64)]) {
        match self {
            FreqStoreImpl::Tree(t) => t.extend_counts(pairs.iter().copied()),
            FreqStoreImpl::Dense(d) => d.extend_sorted_counts(pairs),
        }
    }
}

macro_rules! delegate {
    ($self:expr, $s:ident => $e:expr) => {
        match $self {
            FreqStoreImpl::Tree($s) => $e,
            FreqStoreImpl::Dense($s) => $e,
        }
    };
}

impl FreqStore for FreqStoreImpl {
    fn insert(&mut self, key: u64, freq: u64) {
        delegate!(self, s => s.insert(key, freq))
    }

    fn extend_counts<I: IntoIterator<Item = (u64, u64)>>(&mut self, runs: I) {
        delegate!(self, s => s.extend_counts(runs))
    }

    fn insert_batch(&mut self, batch: &mut [u64]) {
        delegate!(self, s => s.insert_batch(batch))
    }

    fn remove(&mut self, key: u64, freq: u64) -> Result<(), RemoveError> {
        delegate!(self, s => s.remove(key, freq))
    }

    fn total(&self) -> u64 {
        delegate!(self, s => s.total())
    }

    fn unique_len(&self) -> usize {
        delegate!(self, s => s.unique_len())
    }

    fn is_empty(&self) -> bool {
        delegate!(self, s => s.is_empty())
    }

    fn clear(&mut self) {
        delegate!(self, s => s.clear())
    }

    fn count_of(&self, key: u64) -> u64 {
        delegate!(self, s => s.count_of(key))
    }

    fn select(&self, r: u64) -> Option<u64> {
        delegate!(self, s => s.select(r))
    }

    fn rank_of(&self, key: u64) -> u64 {
        delegate!(self, s => s.rank_of(key))
    }

    fn quantile(&self, phi: f64) -> Option<u64> {
        delegate!(self, s => s.quantile(phi))
    }

    fn quantiles_into(&self, phis: &[f64], out: &mut Vec<u64>) -> bool {
        delegate!(self, s => s.quantiles_into(phis, out))
    }

    fn top_k_into(&self, k: usize, out: &mut Vec<u64>) {
        delegate!(self, s => s.top_k_into(k, out))
    }

    fn min_key(&self) -> Option<u64> {
        delegate!(self, s => s.min_key())
    }

    fn max_key(&self) -> Option<u64> {
        delegate!(self, s => s.max_key())
    }

    fn for_each(&self, f: impl FnMut(u64, u64)) {
        delegate!(self, s => s.for_each(f))
    }

    fn counts_into(&self, out: &mut Vec<(u64, u64)>) {
        delegate!(self, s => s.counts_into(out))
    }

    fn memory_bytes(&self) -> usize {
        delegate!(self, s => s.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantize3(v: u64) -> u64 {
        DenseFreqStore::new(3).quantize(v)
    }

    /// Drive the same quantized operation sequence through both
    /// backends and compare every observable.
    #[test]
    fn backends_agree_on_a_mixed_workload() {
        let mut tree = FreqStoreImpl::tree(64);
        let mut dense = FreqStoreImpl::dense(3);
        let keys: Vec<u64> = (0..4_000u64)
            .map(|i| quantize3((i * 2654435761) % 1_000_000))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, 1 + (i as u64 % 3));
            dense.insert(k, 1 + (i as u64 % 3));
        }
        assert_eq!(tree.total(), dense.total());
        assert_eq!(tree.unique_len(), dense.unique_len());
        assert_eq!(tree.min_key(), dense.min_key());
        assert_eq!(tree.max_key(), dense.max_key());
        for phi in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(tree.quantile(phi), dense.quantile(phi), "phi {phi}");
        }
        for r in [1u64, 2, 100, tree.total() / 2, tree.total()] {
            assert_eq!(tree.select(r), dense.select(r), "rank {r}");
        }
        for &k in keys.iter().step_by(97) {
            assert_eq!(tree.count_of(k), dense.count_of(k), "key {k}");
            assert_eq!(tree.rank_of(k), dense.rank_of(k), "key {k}");
            assert_eq!(tree.rank_of(k + 1), dense.rank_of(k + 1));
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.counts_into(&mut a);
        dense.counts_into(&mut b);
        assert_eq!(a, b);
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        tree.top_k_into(57, &mut ta);
        dense.top_k_into(57, &mut tb);
        assert_eq!(ta, tb);
        let phis = [0.999, 0.5, 0.9, 0.1];
        let (mut qa, mut qb) = (Vec::new(), Vec::new());
        assert!(tree.quantiles_into(&phis, &mut qa));
        assert!(dense.quantiles_into(&phis, &mut qb));
        assert_eq!(qa, qb);
    }

    #[test]
    fn backends_agree_on_remove() {
        let mut tree = FreqStoreImpl::tree(8);
        let mut dense = FreqStoreImpl::dense(3);
        for s in [&mut tree, &mut dense] {
            s.insert(500, 3);
            s.insert(1230, 1);
        }
        for s in [&mut tree, &mut dense] {
            assert_eq!(s.remove(999, 1), Err(RemoveError::KeyNotFound));
            assert_eq!(
                s.remove(500, 9),
                Err(RemoveError::InsufficientCount { available: 3 })
            );
            s.remove(500, 2).unwrap();
            s.remove(1230, 1).unwrap();
            assert_eq!(s.total(), 1);
            assert_eq!(s.unique_len(), 1);
        }
    }

    #[test]
    fn cross_backend_merge_falls_back_to_inserts() {
        let mut tree = FreqStoreImpl::tree(8);
        tree.insert(100, 2);
        tree.insert(5550, 1);
        let mut dense = FreqStoreImpl::dense(3);
        dense.insert(100, 1);
        dense.insert(99_900, 4);
        tree.merge_from(&dense);
        let mut pairs = Vec::new();
        tree.counts_into(&mut pairs);
        assert_eq!(pairs, vec![(100, 3), (5550, 1), (99_900, 4)]);
        // And the other direction.
        let mut dense2 = FreqStoreImpl::dense(3);
        dense2.merge_from(&tree);
        let mut pairs2 = Vec::new();
        dense2.counts_into(&mut pairs2);
        assert_eq!(pairs2, pairs);
    }

    #[test]
    fn same_backend_merge_takes_native_path() {
        let mut a = FreqStoreImpl::dense(3);
        let mut b = FreqStoreImpl::dense(3);
        a.insert(10, 1);
        a.insert(1_000_000, 2);
        b.insert(10, 3);
        b.insert(55_500, 1);
        a.merge_from(&b);
        let mut pairs = Vec::new();
        a.counts_into(&mut pairs);
        assert_eq!(pairs, vec![(10, 4), (55_500, 1), (1_000_000, 2)]);
        assert_eq!(a.total(), 7);
        assert_eq!(a.unique_len(), 3);
    }

    #[test]
    fn clear_resets_both_backends() {
        for mut s in [FreqStoreImpl::tree(4), FreqStoreImpl::dense(3)] {
            s.insert(123, 5);
            let bytes = s.memory_bytes();
            s.clear();
            assert!(s.is_empty());
            assert_eq!(s.unique_len(), 0);
            assert_eq!(s.quantile(0.5), None);
            assert_eq!(s.memory_bytes(), bytes, "clear must keep allocations");
            s.insert(7, 1);
            assert_eq!(s.quantile(0.5), Some(7));
        }
    }
}
