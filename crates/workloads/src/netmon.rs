//! NetMon stand-in: datacenter RTT latencies in microseconds.
//!
//! The paper's NetMon trace (Pingmesh-style RTTs between servers of a
//! large datacenter) is proprietary; this generator reproduces every
//! property the paper publishes and that QLOVE's design exploits:
//!
//! 1. **Concentrated body** — "most latencies are small and
//!    concentrated, with more than 90% taking below 1,247 µs" and a
//!    median of 798 µs (§1). Modeled as a log-normal calibrated so that
//!    `median = 798` and `P90 ≈ 1,247` (µ = ln 798, σ = 0.348).
//! 2. **Heavy sparse tail** — "a few latencies are very large and
//!    heavy-tailed, taking up to 74,265 µs". Modeled as a Pareto tail
//!    (α ≈ 1.05) entered with ~0.6% probability, truncated at 74,265.
//! 3. **High value redundancy** — values are integer microseconds and
//!    the body spans only a few thousand distinct values, giving the
//!    duplicate density QLOVE's frequency compression feeds on (§3.1's
//!    quantization pushes it further).

use qlove_stats::norm_inv_cdf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Log-normal location: ln(798) — pins the median at 798 µs.
const MU: f64 = 6.682;
/// Log-normal scale: (ln 1247 − ln 798)/Φ⁻¹(0.9) — pins P90 ≈ 1,247 µs.
const SIGMA: f64 = 0.348;
/// Probability an event comes from the heavy tail instead of the body.
const TAIL_PROB: f64 = 0.006;
/// Pareto scale for the tail (starts just above the body's P99 region).
const TAIL_XM: f64 = 2_000.0;
/// Pareto shape — heavy (infinite variance) like measured RTT tails.
const TAIL_ALPHA: f64 = 1.05;
/// Paper's observed maximum RTT.
const TAIL_CAP: u64 = 74_265;

/// Infinite deterministic stream of NetMon-like RTT samples.
#[derive(Debug, Clone)]
pub struct NetMonGen {
    rng: SmallRng,
}

impl NetMonGen {
    /// Generator seeded for reproducible experiments.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// `n` samples as a vector.
    pub fn generate(seed: u64, n: usize) -> Vec<u64> {
        Self::new(seed).take(n).collect()
    }

    fn sample(&mut self) -> u64 {
        if self.rng.gen::<f64>() < TAIL_PROB {
            // Heavy tail: truncated Pareto.
            let u: f64 = self.rng.gen_range(1e-12..1.0);
            let v = TAIL_XM / u.powf(1.0 / TAIL_ALPHA);
            (v as u64).min(TAIL_CAP)
        } else {
            // Body: log-normal via inverse-CDF (deterministic given rng).
            let u: f64 = self.rng.gen_range(1e-12..1.0 - 1e-12);
            let z = norm_inv_cdf(u);
            (MU + SIGMA * z).exp().round().max(1.0) as u64
        }
    }
}

impl Iterator for NetMonGen {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_stats::quantile_sorted;

    fn sorted_sample(n: usize) -> Vec<u64> {
        let mut v = NetMonGen::generate(42, n);
        v.sort_unstable();
        v
    }

    #[test]
    fn median_matches_paper_anchor() {
        let s = sorted_sample(200_000);
        let med = quantile_sorted(&s, 0.5) as f64;
        assert!((med - 798.0).abs() / 798.0 < 0.03, "median {med}");
    }

    #[test]
    fn p90_matches_paper_anchor() {
        let s = sorted_sample(200_000);
        let p90 = quantile_sorted(&s, 0.9) as f64;
        assert!((p90 - 1247.0).abs() / 1247.0 < 0.05, "p90 {p90}");
    }

    #[test]
    fn tail_is_heavy_and_capped() {
        let s = sorted_sample(500_000);
        let max = *s.last().unwrap();
        let p999 = quantile_sorted(&s, 0.999);
        assert!(max <= TAIL_CAP);
        assert!(max > 30_000, "tail should reach tens of ms, max {max}");
        // Paper's skew: Q0.999 is several times Q0.99.
        let p99 = quantile_sorted(&s, 0.99);
        assert!(p999 > 2 * p99, "p999 {p999} vs p99 {p99}");
    }

    #[test]
    fn values_are_heavily_duplicated() {
        let s = sorted_sample(100_000);
        let unique = {
            let mut u = s.clone();
            u.dedup();
            u.len()
        };
        // Body spans a few thousand distinct integer µs values.
        assert!(unique < 10_000, "unique {unique} too high");
        assert!(unique > 100, "unique {unique} suspiciously low");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(NetMonGen::generate(7, 1000), NetMonGen::generate(7, 1000));
        assert_ne!(NetMonGen::generate(7, 1000), NetMonGen::generate(8, 1000));
    }

    #[test]
    fn rank_to_value_blowup_mirrors_motivating_example() {
        // §1: at 100K elements, moving from rank r to r+2K at φ=0.5 moves
        // the value by ~2%, while at φ=0.99 it explodes. Verify the shape.
        let s = sorted_sample(100_000);
        let v50 = s[49_999] as f64;
        let v52 = s[51_999] as f64;
        assert!((v52 - v50) / v50 < 0.05, "median region must be dense");
        let v99 = s[98_999] as f64;
        let v_max = s[99_999] as f64;
        assert!(v_max / v99 > 5.0, "tail region must be sparse/skewed");
    }
}
