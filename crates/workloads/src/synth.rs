//! The paper's synthetic distributions (§5.2 scalability, §5.4 skew).

use qlove_stats::norm_inv_cdf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// §5.2 Normal dataset: "generated from a normal distribution, with a
/// mean of 1 million and a standard deviation of 50 thousand", clamped
/// at zero and rounded to integers.
#[derive(Debug, Clone)]
pub struct NormalGen {
    rng: SmallRng,
    mean: f64,
    sd: f64,
}

impl NormalGen {
    /// Paper parameters: mean 1,000,000, sd 50,000.
    pub fn paper(seed: u64) -> Self {
        Self::new(seed, 1_000_000.0, 50_000.0)
    }

    /// Custom mean/standard deviation.
    pub fn new(seed: u64, mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            mean,
            sd,
        }
    }

    /// `n` samples as a vector.
    pub fn generate(seed: u64, n: usize) -> Vec<u64> {
        Self::paper(seed).take(n).collect()
    }
}

impl Iterator for NormalGen {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let u: f64 = self.rng.gen_range(1e-12..1.0 - 1e-12);
        Some((self.mean + self.sd * norm_inv_cdf(u)).round().max(0.0) as u64)
    }
}

/// §5.2 Uniform dataset: integers "ranging from 90 to 110" — 21 distinct
/// values, the extreme-redundancy end of the spectrum.
#[derive(Debug, Clone)]
pub struct UniformGen {
    rng: SmallRng,
    lo: u64,
    hi: u64,
}

impl UniformGen {
    /// Paper parameters: range 90..=110.
    pub fn paper(seed: u64) -> Self {
        Self::new(seed, 90, 110)
    }

    /// Custom inclusive range.
    pub fn new(seed: u64, lo: u64, hi: u64) -> Self {
        assert!(hi >= lo, "range must be non-empty");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// `n` samples as a vector.
    pub fn generate(seed: u64, n: usize) -> Vec<u64> {
        Self::paper(seed).take(n).collect()
    }
}

impl Iterator for UniformGen {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.rng.gen_range(self.lo..=self.hi))
    }
}

/// §5.4 Pareto dataset: "integers from a skewed, heavy-tailed Pareto
/// distribution, with Q0.5 of 20, Q0.999 of 10,000".
///
/// Those two anchors pin the parameters exactly: `P(X > x) = (xm/x)^α`
/// with `xm·2^{1/α} = 20` and `xm·1000^{1/α} = 10,000` gives `α = 1`,
/// `xm = 10`. At α = 1 the distribution has no mean — a 10M-sample run
/// reaches maxima around 10⁸–10⁹, matching the paper's "max of 1.1
/// billion".
#[derive(Debug, Clone)]
pub struct ParetoGen {
    rng: SmallRng,
    xm: f64,
    alpha: f64,
}

impl ParetoGen {
    /// Paper parameters: xm = 10, α = 1.
    pub fn paper(seed: u64) -> Self {
        Self::new(seed, 10.0, 1.0)
    }

    /// Custom scale/shape.
    pub fn new(seed: u64, xm: f64, alpha: f64) -> Self {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "Pareto parameters must be positive"
        );
        Self {
            rng: SmallRng::seed_from_u64(seed),
            xm,
            alpha,
        }
    }

    /// `n` samples as a vector.
    pub fn generate(seed: u64, n: usize) -> Vec<u64> {
        Self::paper(seed).take(n).collect()
    }
}

impl Iterator for ParetoGen {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let v = self.xm / u.powf(1.0 / self.alpha);
        // Cap at u64 range; α=1 can in principle overflow on tiny u.
        Some(v.min(u64::MAX as f64 / 2.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_stats::quantile_sorted;

    #[test]
    fn normal_moments_match() {
        let v = NormalGen::generate(5, 200_000);
        let f: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let mean = qlove_stats::mean(&f).unwrap();
        let sd = qlove_stats::stddev(&f).unwrap();
        assert!((mean - 1_000_000.0).abs() < 1_000.0, "mean {mean}");
        assert!((sd - 50_000.0).abs() < 1_000.0, "sd {sd}");
    }

    #[test]
    fn uniform_range_and_coverage() {
        let v = UniformGen::generate(5, 100_000);
        assert!(v.iter().all(|&x| (90..=110).contains(&x)));
        let mut sorted = v;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 21, "all 21 values should appear");
    }

    #[test]
    fn pareto_quantile_anchors() {
        let mut v = ParetoGen::generate(5, 1_000_000);
        v.sort_unstable();
        let q50 = quantile_sorted(&v, 0.5) as f64;
        let q999 = quantile_sorted(&v, 0.999) as f64;
        assert!((q50 - 20.0).abs() <= 1.0, "Q0.5 {q50}");
        assert!((q999 - 10_000.0).abs() / 10_000.0 < 0.10, "Q0.999 {q999}");
        // Heavy max, far beyond Q0.999.
        assert!(*v.last().unwrap() > 1_000_000);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(NormalGen::generate(1, 100), NormalGen::generate(1, 100));
        assert_eq!(UniformGen::generate(1, 100), UniformGen::generate(1, 100));
        assert_eq!(ParetoGen::generate(1, 100), ParetoGen::generate(1, 100));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_rejects_inverted_range() {
        UniformGen::new(0, 10, 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn pareto_rejects_bad_parameters() {
        ParetoGen::new(0, 0.0, 1.0);
    }
}
