//! §5.3's burst injection.
//!
//! > "we inject a burst traffic to NetMon such that it affects Q0.999
//! > and above and appears just once in every evaluation of the sliding
//! > window. That is, in the window size N and the quantile φ, we
//! > increase the values of the top N(1−φ) elements in every (N/P)-th
//! > sub-window of size P by 10x."

/// Multiply the top `N − ⌈φN⌉ + 1` values of every `(N/P)`-th
/// sub-window by `factor` (the paper uses 10×), in place.
///
/// The boost count is the exact rank-from-the-top that the φ-quantile
/// refers to under the paper's ⌈φN⌉ convention — the precise form of
/// "the top N(1−φ) elements" that guarantees the burst sweeps the
/// φ-quantile at any window size (the paper's own counts, e.g. 132 for
/// φ = 0.999 at N = 128K, satisfy the same property).
///
/// Sub-windows are the consecutive chunks of `period` elements;
/// sub-window indices are 1-based, so with `N/P = 8` the 8th, 16th, …
/// sub-windows carry the burst — exactly one burst per full window.
///
/// # Panics
/// Panics when `period == 0`, `window < period`, `window % period != 0`
/// or `φ ∉ (0, 1)`.
pub fn inject_burst(data: &mut [u64], window: usize, period: usize, phi: f64, factor: u64) {
    assert!(period > 0, "period must be positive");
    assert!(
        window >= period && window.is_multiple_of(period),
        "window must be a positive multiple of period"
    );
    assert!(0.0 < phi && phi < 1.0, "phi must lie in (0, 1)");
    let n_sub = window / period;
    // Guarded ceil: 0.999·8000 evaluates to 7992.000000000001 in f64 and
    // must not round up past the true rank.
    let r = (((window as f64) * phi) - 1e-9).ceil().max(1.0) as usize;
    let boost_count = (window - r.min(window) + 1).min(period);

    let len = data.len();
    let mut scratch: Vec<(u64, usize)> = Vec::with_capacity(period);
    for (sub_idx, chunk_start) in (0..len).step_by(period).enumerate() {
        // 1-based sub-window index; burst every (N/P)-th.
        if (sub_idx + 1) % n_sub != 0 {
            continue;
        }
        let chunk = &mut data[chunk_start..(chunk_start + period).min(len)];
        scratch.clear();
        scratch.extend(chunk.iter().copied().zip(0..));
        // Top `boost_count` positions by value.
        scratch.sort_unstable_by_key(|p| std::cmp::Reverse(p.0));
        for &(_, pos) in scratch.iter().take(boost_count) {
            chunk[pos] = chunk[pos].saturating_mul(factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursts_land_on_every_nth_subwindow() {
        // window 40, period 10 → n_sub 4 → sub-windows 4, 8 (1-based)
        // carry the burst.
        let mut data: Vec<u64> = (0..80).map(|i| i % 10 + 1).collect();
        let before = data.clone();
        inject_burst(&mut data, 40, 10, 0.9, 10);
        // boost_count = 40 − ⌈40·0.9⌉ + 1 = 5 per bursty sub-window.
        for sub in 0..8 {
            let changed = (0..10)
                .filter(|&i| data[sub * 10 + i] != before[sub * 10 + i])
                .count();
            if (sub + 1) % 4 == 0 {
                assert_eq!(changed, 5, "sub-window {sub}");
            } else {
                assert_eq!(changed, 0, "sub-window {sub}");
            }
        }
    }

    #[test]
    fn boosts_the_largest_values_by_factor() {
        let mut data: Vec<u64> = vec![1, 2, 3, 100, 4, 5, 6, 200];
        // window 8, period 8 → n_sub 1 → every sub-window bursts.
        inject_burst(&mut data, 8, 8, 0.75, 10);
        // boost_count = 8 − ⌈8·0.75⌉ + 1 = 3 → the three largest
        // (100, 200, and 6 — the rank the Q0.75 answer refers to).
        assert_eq!(data, vec![1, 2, 3, 1000, 4, 5, 60, 2000]);
    }

    #[test]
    fn boost_count_capped_at_period() {
        // N(1−φ) can exceed P for small φ; never boost more than the
        // sub-window holds.
        let mut data: Vec<u64> = (1..=10).collect();
        inject_burst(&mut data, 10, 5, 0.1, 2);
        // boost_count = min(10 − 1 + 1, 5) = 5; 2nd sub-window only.
        assert_eq!(data[..5], [1, 2, 3, 4, 5]);
        assert_eq!(data[5..], [12, 14, 16, 18, 20]);
    }

    #[test]
    fn partial_trailing_chunk_is_handled() {
        let mut data: Vec<u64> = (1..=12).collect();
        // 12 elements, period 5: chunks [0..5), [5..10), [10..12).
        inject_burst(&mut data, 5, 5, 0.8, 10);
        // Every chunk bursts (n_sub = 1); boost_count = 5 − 4 + 1 = 2.
        assert_eq!(&data[..5], &[1, 2, 3, 40, 50]);
        assert_eq!(&data[5..10], &[6, 7, 8, 90, 100]);
        // Trailing partial chunk of 2: both values boosted.
        assert_eq!(&data[10..], &[110, 120]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_misaligned_window() {
        inject_burst(&mut [0; 10], 10, 3, 0.9, 10);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn rejects_degenerate_phi() {
        inject_burst(&mut [0; 10], 10, 5, 1.0, 10);
    }
}
