//! Search stand-in: index-serving-node (ISN) response times in µs.
//!
//! The paper's Search dataset measures Bing ISN query response times.
//! Its published distinguishing property (§5.3, footnote 1): the ISN
//! enforces a response-time SLA (e.g. 200 ms), so queries terminated by
//! the SLA pile up at the cap — "incurring high density in the tail of
//! data distribution", which is why all Search value errors stay below
//! 1% even for Q0.999.
//!
//! Model: a log-normal body of successful queries plus an SLA cap: any
//! latency that would exceed the budget is recorded *at* the budget
//! (plus small jitter from termination bookkeeping), creating the dense
//! tail mass the paper describes.

use qlove_stats::norm_inv_cdf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Median successful-query response ≈ 20 ms.
const MU: f64 = 9.9; // ln(20_000)
/// Wide body so a visible fraction of queries hits the SLA.
const SIGMA: f64 = 0.9;
/// SLA budget: 200 ms in µs (paper's example figure).
const SLA_US: u64 = 200_000;
/// Jitter span of SLA-terminated responses (termination bookkeeping).
const SLA_JITTER: u64 = 500;

/// Infinite deterministic stream of Search-like ISN response times.
#[derive(Debug, Clone)]
pub struct SearchGen {
    rng: SmallRng,
}

impl SearchGen {
    /// Generator seeded for reproducible experiments.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// `n` samples as a vector.
    pub fn generate(seed: u64, n: usize) -> Vec<u64> {
        Self::new(seed).take(n).collect()
    }
}

impl Iterator for SearchGen {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let u: f64 = self.rng.gen_range(1e-12..1.0 - 1e-12);
        let raw = (MU + SIGMA * norm_inv_cdf(u)).exp().round().max(1.0) as u64;
        Some(if raw >= SLA_US {
            // SLA-terminated: recorded at the budget, minus small jitter.
            SLA_US - self.rng.gen_range(0..SLA_JITTER)
        } else {
            raw
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlove_stats::quantile_sorted;

    fn sorted_sample(n: usize) -> Vec<u64> {
        let mut v = SearchGen::generate(11, n);
        v.sort_unstable();
        v
    }

    #[test]
    fn nothing_exceeds_sla() {
        let s = sorted_sample(300_000);
        assert!(*s.last().unwrap() <= SLA_US);
    }

    #[test]
    fn tail_is_dense_at_the_cap() {
        // Q0.999 and Q0.9999 must be within a whisker of each other —
        // the "high density in the tail" that makes Search's high
        // quantiles easy.
        let s = sorted_sample(300_000);
        let a = quantile_sorted(&s, 0.999) as f64;
        let b = quantile_sorted(&s, 0.9999) as f64;
        assert!((b - a) / a < 0.01, "tail not dense: {a} vs {b}");
    }

    #[test]
    fn sla_hits_are_a_visible_minority() {
        let s = sorted_sample(300_000);
        let capped =
            s.iter().filter(|&&v| v >= SLA_US - SLA_JITTER).count() as f64 / s.len() as f64;
        assert!(capped > 0.001, "cap mass too small: {capped}");
        assert!(capped < 0.2, "cap mass too large: {capped}");
    }

    #[test]
    fn median_is_tens_of_ms() {
        let s = sorted_sample(100_000);
        let med = quantile_sorted(&s, 0.5);
        assert!((10_000..40_000).contains(&med), "median {med}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(SearchGen::generate(3, 500), SearchGen::generate(3, 500));
    }
}
