//! Binary snapshot save/load for datasets, plus a back-compat re-export
//! of the QLVS summary codec.
//!
//! Harness runs generate workloads deterministically from seeds, but a
//! snapshot on disk lets (a) a run be replayed bit-identically across
//! machines/versions and (b) externally captured telemetry be fed to the
//! same harness. The dataset format is deliberately trivial: a magic
//! header, a UTF-8 name, and little-endian `u64` values.
//!
//! The varint primitives and the compact sub-window summary codec
//! (`encode_summary`/`decode_summary`) historically lived here; they
//! are now the dependency-free [`qlove_wire`] crate so the socket
//! transport (`qlove_transport`) can share them without depending on
//! the workload generators. The original paths keep working through the
//! re-exports below. Std-only, like everything in this crate.

use std::fs;
use std::io;
use std::path::Path;

pub use qlove_wire::{
    decode_summary, encode_summary, read_uvarint, summary_to_bytes, write_uvarint,
};

/// File magic: "QLVD" + format version 1.
const MAGIC: &[u8; 4] = b"QLVD";
const VERSION: u32 = 1;

/// A named dataset snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"netmon-seed42"`).
    pub name: String,
    /// The telemetry values.
    pub values: Vec<u64>,
}

impl Dataset {
    /// Bundle a name and values.
    pub fn new(name: impl Into<String>, values: Vec<u64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Serialize into the QLVD byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + 4 + 4 + self.name.len() + 8 + self.values.len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.name.as_bytes());
        buf.extend_from_slice(&(self.values.len() as u64).to_le_bytes());
        for &v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Parse the QLVD byte format.
    pub fn from_bytes(mut data: &[u8]) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if data.len() < n {
                return None;
            }
            let (head, rest) = data.split_at(n);
            *data = rest;
            Some(head)
        }
        fn take_u32(data: &mut &[u8]) -> Option<u32> {
            take(data, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        }
        fn take_u64(data: &mut &[u8]) -> Option<u64> {
            take(data, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        }

        let magic = take(&mut data, 4).ok_or_else(|| bad("truncated header"))?;
        if magic != MAGIC {
            return Err(bad("not a QLVD dataset file"));
        }
        let version = take_u32(&mut data).ok_or_else(|| bad("truncated header"))?;
        if version != VERSION {
            return Err(bad("unsupported QLVD version"));
        }
        let name_len = take_u32(&mut data).ok_or_else(|| bad("truncated header"))? as usize;
        let name_bytes = take(&mut data, name_len).ok_or_else(|| bad("truncated name"))?;
        let name =
            String::from_utf8(name_bytes.to_vec()).map_err(|_| bad("dataset name is not UTF-8"))?;
        let count = take_u64(&mut data).ok_or_else(|| bad("truncated value count"))?;
        // Compare in u64 with a checked multiply: a corrupt count must
        // error out, not overflow (debug panic / release wraparound).
        if count.checked_mul(8) != Some(data.len() as u64) {
            return Err(bad("value payload length mismatch"));
        }
        let values = data
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect();
        Ok(Self { name, values })
    }

    /// Write the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Read a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::from_bytes(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let d = Dataset::new("netmon-test", vec![1, 2, 798, 74_265, u64::MAX]);
        let parsed = Dataset::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn roundtrip_empty_values() {
        let d = Dataset::new("empty", vec![]);
        assert_eq!(Dataset::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Dataset::from_bytes(b"NOPE\x01\x00\x00\x00").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let d = Dataset::new("t", vec![1, 2, 3]);
        let bytes = d.to_bytes();
        for cut in [3, 10, bytes.len() - 1] {
            assert!(
                Dataset::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_overflowing_value_count() {
        // A corrupt count near u64::MAX must fail cleanly, not overflow
        // the `count * 8` payload check.
        let d = Dataset::new("t", vec![1, 2, 3]);
        let mut bytes = d.to_bytes();
        let count_at = 4 + 4 + 4 + 1; // magic + version + name len + "t"
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Dataset::from_bytes(&bytes).is_err());
        // Wraparound-exploiting count: (2^61 + len/8) * 8 wraps to len.
        let wrap = (1u64 << 61) + 3;
        bytes[count_at..count_at + 8].copy_from_slice(&wrap.to_le_bytes());
        assert!(Dataset::from_bytes(&bytes).is_err());
    }

    #[test]
    fn summary_codec_reexports_stay_usable() {
        // The codec moved to `qlove_wire`; the historical
        // `qlove_workloads::io` paths must keep compiling and agreeing
        // with the source crate.
        let counts = vec![(5u64, 2u64), (9, 1)];
        let bytes = summary_to_bytes(&counts);
        assert_eq!(bytes, qlove_wire::summary_to_bytes(&counts));
        assert_eq!(decode_summary(&bytes).unwrap(), counts);
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 300);
        let mut slice = buf.as_slice();
        assert_eq!(read_uvarint(&mut slice), Some(300));
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("qlove-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.qlvd");
        let d = Dataset::new("file-test", (0..1000u64).collect());
        d.save(&path).unwrap();
        assert_eq!(Dataset::load(&path).unwrap(), d);
        let _ = fs::remove_file(&path);
    }
}
