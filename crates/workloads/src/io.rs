//! Binary snapshot save/load for datasets, plus the compact on-wire
//! codec for sub-window summaries.
//!
//! Harness runs generate workloads deterministically from seeds, but a
//! snapshot on disk lets (a) a run be replayed bit-identically across
//! machines/versions and (b) externally captured telemetry be fed to the
//! same harness. The dataset format is deliberately trivial: a magic
//! header, a UTF-8 name, and little-endian `u64` values.
//!
//! The summary codec ([`encode_summary`]/[`decode_summary`]) is the
//! checkpoint/shipping format for distributed execution: a shard's
//! partial sub-window state is a sorted `(value, frequency)` multiset,
//! which delta-varint encoding shrinks to a few bytes per unique value
//! on quantized telemetry. Std-only, like everything in this crate.

use std::fs;
use std::io;
use std::path::Path;

/// File magic: "QLVD" + format version 1.
const MAGIC: &[u8; 4] = b"QLVD";
const VERSION: u32 = 1;

/// Summary-frame magic: "QLVS" + a one-byte format version.
const SUMMARY_MAGIC: &[u8; 4] = b"QLVS";
const SUMMARY_VERSION: u8 = 1;

/// A named dataset snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"netmon-seed42"`).
    pub name: String,
    /// The telemetry values.
    pub values: Vec<u64>,
}

impl Dataset {
    /// Bundle a name and values.
    pub fn new(name: impl Into<String>, values: Vec<u64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Serialize into the QLVD byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + 4 + 4 + self.name.len() + 8 + self.values.len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.name.as_bytes());
        buf.extend_from_slice(&(self.values.len() as u64).to_le_bytes());
        for &v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Parse the QLVD byte format.
    pub fn from_bytes(mut data: &[u8]) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if data.len() < n {
                return None;
            }
            let (head, rest) = data.split_at(n);
            *data = rest;
            Some(head)
        }
        fn take_u32(data: &mut &[u8]) -> Option<u32> {
            take(data, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
        }
        fn take_u64(data: &mut &[u8]) -> Option<u64> {
            take(data, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        }

        let magic = take(&mut data, 4).ok_or_else(|| bad("truncated header"))?;
        if magic != MAGIC {
            return Err(bad("not a QLVD dataset file"));
        }
        let version = take_u32(&mut data).ok_or_else(|| bad("truncated header"))?;
        if version != VERSION {
            return Err(bad("unsupported QLVD version"));
        }
        let name_len = take_u32(&mut data).ok_or_else(|| bad("truncated header"))? as usize;
        let name_bytes = take(&mut data, name_len).ok_or_else(|| bad("truncated name"))?;
        let name =
            String::from_utf8(name_bytes.to_vec()).map_err(|_| bad("dataset name is not UTF-8"))?;
        let count = take_u64(&mut data).ok_or_else(|| bad("truncated value count"))?;
        // Compare in u64 with a checked multiply: a corrupt count must
        // error out, not overflow (debug panic / release wraparound).
        if count.checked_mul(8) != Some(data.len() as u64) {
            return Err(bad("value payload length mismatch"));
        }
        let values = data
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .collect();
        Ok(Self { name, values })
    }

    /// Write the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Read a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::from_bytes(&fs::read(path)?)
    }
}

// ---- varint primitives ----------------------------------------------------

/// Append `value` to `buf` as an unsigned LEB128 varint (7 payload bits
/// per byte, high bit = continuation): 1 byte for values < 128, at most
/// 10 bytes for `u64::MAX`.
pub fn write_uvarint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read one LEB128 varint from the front of `data`, advancing the
/// slice. Returns `None` on truncation or a value overflowing `u64`.
pub fn read_uvarint(data: &mut &[u8]) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = data.split_first()?;
        *data = rest;
        let payload = (byte & 0x7f) as u64;
        // The 10th byte carries bit 63 only; anything above overflows.
        if shift == 63 && payload > 1 {
            return None;
        }
        out |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

// ---- summary codec --------------------------------------------------------

/// Encode a sorted `(value, frequency)` summary into `buf` (appended,
/// not cleared).
///
/// Layout: `"QLVS"`, one version byte, varint pair count, then per pair
/// a varint key delta (the first key raw; each subsequent key as
/// `key − previous_key`, necessarily ≥ 1) and a varint frequency
/// (necessarily ≥ 1). Ascending keys make the deltas small, so the
/// quantized domains QLOVE works over compress to 2–4 bytes per unique
/// value instead of the 16 a raw pair costs.
///
/// # Panics
/// Debug-asserts that keys are strictly ascending and frequencies are
/// nonzero — the invariants every in-order tree walk provides.
pub fn encode_summary(counts: &[(u64, u64)], buf: &mut Vec<u8>) {
    buf.extend_from_slice(SUMMARY_MAGIC);
    buf.push(SUMMARY_VERSION);
    write_uvarint(buf, counts.len() as u64);
    let mut prev = 0u64;
    for (i, &(key, freq)) in counts.iter().enumerate() {
        debug_assert!(i == 0 || key > prev, "summary keys must be ascending");
        debug_assert!(freq > 0, "summary frequencies must be nonzero");
        let delta = if i == 0 { key } else { key - prev };
        write_uvarint(buf, delta);
        write_uvarint(buf, freq);
        prev = key;
    }
}

/// [`encode_summary`] into a fresh buffer.
pub fn summary_to_bytes(counts: &[(u64, u64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + counts.len() * 4);
    encode_summary(counts, &mut buf);
    buf
}

/// Decode a summary frame produced by [`encode_summary`] back into
/// strictly-ascending `(value, frequency)` pairs.
///
/// Never panics on malformed input: truncation, a wrong magic/version,
/// a zero frequency, a zero key delta (out-of-order keys), key
/// overflow, or trailing bytes all surface as `InvalidData` errors. The
/// declared pair count does not pre-size allocations beyond a small
/// cap, so a corrupt length cannot trigger an OOM before the payload
/// check fails.
pub fn decode_summary(mut data: &[u8]) -> io::Result<Vec<(u64, u64)>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let Some((magic, rest)) = data.split_first_chunk::<4>() else {
        return Err(bad("truncated summary header"));
    };
    data = rest;
    if magic != SUMMARY_MAGIC {
        return Err(bad("not a QLVS summary frame"));
    }
    let Some((&version, rest)) = data.split_first() else {
        return Err(bad("truncated summary header"));
    };
    data = rest;
    if version != SUMMARY_VERSION {
        return Err(bad("unsupported QLVS version"));
    }
    let count = read_uvarint(&mut data).ok_or_else(|| bad("truncated pair count"))? as usize;
    // Each pair costs ≥ 2 bytes on the wire; reject impossible counts
    // before allocating for them.
    if count > data.len() / 2 {
        return Err(bad("pair count exceeds payload"));
    }
    let mut counts = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let delta = read_uvarint(&mut data).ok_or_else(|| bad("truncated key delta"))?;
        let freq = read_uvarint(&mut data).ok_or_else(|| bad("truncated frequency"))?;
        if i > 0 && delta == 0 {
            return Err(bad("summary keys out of order"));
        }
        if freq == 0 {
            return Err(bad("zero frequency in summary"));
        }
        let key = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| bad("summary key overflows u64"))?
        };
        counts.push((key, freq));
        prev = key;
    }
    if !data.is_empty() {
        return Err(bad("trailing bytes after summary payload"));
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let d = Dataset::new("netmon-test", vec![1, 2, 798, 74_265, u64::MAX]);
        let parsed = Dataset::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn roundtrip_empty_values() {
        let d = Dataset::new("empty", vec![]);
        assert_eq!(Dataset::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Dataset::from_bytes(b"NOPE\x01\x00\x00\x00").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let d = Dataset::new("t", vec![1, 2, 3]);
        let bytes = d.to_bytes();
        for cut in [3, 10, bytes.len() - 1] {
            assert!(
                Dataset::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_overflowing_value_count() {
        // A corrupt count near u64::MAX must fail cleanly, not overflow
        // the `count * 8` payload check.
        let d = Dataset::new("t", vec![1, 2, 3]);
        let mut bytes = d.to_bytes();
        let count_at = 4 + 4 + 4 + 1; // magic + version + name len + "t"
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Dataset::from_bytes(&bytes).is_err());
        // Wraparound-exploiting count: (2^61 + len/8) * 8 wraps to len.
        let wrap = (1u64 << 61) + 3;
        bytes[count_at..count_at + 8].copy_from_slice(&wrap.to_le_bytes());
        assert!(Dataset::from_bytes(&bytes).is_err());
    }

    // ---- varint ----------------------------------------------------------

    #[test]
    fn uvarint_roundtrip_across_magnitudes() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut slice = buf.as_slice();
            assert_eq!(read_uvarint(&mut slice), Some(v), "value {v}");
            assert!(slice.is_empty(), "value {v} left bytes behind");
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_uvarint(&mut empty), None);
        // Dangling continuation bit.
        let mut dangling: &[u8] = &[0x80];
        assert_eq!(read_uvarint(&mut dangling), None);
        // 10 continuation bytes followed by a large 11th: > 64 bits.
        let mut too_long: &[u8] = &[0x80; 11];
        assert_eq!(read_uvarint(&mut too_long), None);
        // Bit 64 set in the 10th byte.
        let mut overflow: &[u8] = &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert_eq!(read_uvarint(&mut overflow), None);
    }

    // ---- summary codec ---------------------------------------------------

    #[test]
    fn summary_roundtrip() {
        let counts = vec![
            (0u64, 1u64),
            (3, 2),
            (798, 1000),
            (74_265, 1),
            (u64::MAX, 7),
        ];
        let bytes = summary_to_bytes(&counts);
        assert_eq!(decode_summary(&bytes).unwrap(), counts);
    }

    #[test]
    fn summary_roundtrip_empty() {
        let bytes = summary_to_bytes(&[]);
        assert_eq!(decode_summary(&bytes).unwrap(), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn summary_is_compact_on_quantized_domains() {
        // Quantized telemetry: dense small keys with fat frequencies.
        let counts: Vec<(u64, u64)> = (0..500u64).map(|i| (700 + i * 3, 20 + i % 9)).collect();
        let bytes = summary_to_bytes(&counts);
        // Raw encoding would cost 16 bytes per pair; delta-varint should
        // land in low single digits.
        assert!(
            bytes.len() < counts.len() * 4,
            "{} bytes for {} pairs",
            bytes.len(),
            counts.len()
        );
    }

    #[test]
    fn summary_rejects_bad_magic_and_version() {
        let mut bytes = summary_to_bytes(&[(1, 1)]);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_summary(&wrong_magic).is_err());
        bytes[4] = 99; // version byte
        assert!(decode_summary(&bytes).is_err());
        assert!(decode_summary(b"QLV").is_err());
    }

    #[test]
    fn summary_rejects_truncation_everywhere() {
        let counts: Vec<(u64, u64)> = (0..40u64).map(|i| (i * 1000, i + 1)).collect();
        let bytes = summary_to_bytes(&counts);
        for cut in 0..bytes.len() {
            assert!(
                decode_summary(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn summary_rejects_semantic_corruption() {
        // Zero frequency.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"QLVS");
        buf.push(1);
        write_uvarint(&mut buf, 1);
        write_uvarint(&mut buf, 5); // key
        write_uvarint(&mut buf, 0); // freq 0
        assert!(decode_summary(&buf).is_err());

        // Zero delta on a non-first pair (duplicate / out-of-order key).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"QLVS");
        buf.push(1);
        write_uvarint(&mut buf, 2);
        write_uvarint(&mut buf, 5);
        write_uvarint(&mut buf, 1);
        write_uvarint(&mut buf, 0); // delta 0
        write_uvarint(&mut buf, 1);
        assert!(decode_summary(&buf).is_err());

        // Key overflow: first key u64::MAX then any positive delta.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"QLVS");
        buf.push(1);
        write_uvarint(&mut buf, 2);
        write_uvarint(&mut buf, u64::MAX);
        write_uvarint(&mut buf, 1);
        write_uvarint(&mut buf, 1); // overflows
        write_uvarint(&mut buf, 1);
        assert!(decode_summary(&buf).is_err());

        // Trailing garbage.
        let mut bytes = summary_to_bytes(&[(1, 1)]);
        bytes.push(0);
        assert!(decode_summary(&bytes).is_err());

        // Absurd pair count with a tiny payload must fail fast, not
        // allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"QLVS");
        buf.push(1);
        write_uvarint(&mut buf, u64::MAX);
        assert!(decode_summary(&buf).is_err());
    }

    #[test]
    fn summary_decode_never_panics_on_noise() {
        // Deterministic pseudo-random byte soup, with and without a
        // valid-looking header.
        let mut state = 0x9E3779B97F4A7C15u64;
        for len in 0..64usize {
            let mut noise = Vec::with_capacity(len + 5);
            noise.extend_from_slice(b"QLVS\x01");
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                noise.push((state >> 56) as u8);
            }
            let _ = decode_summary(&noise); // must return, not panic
            let _ = decode_summary(&noise[5..]);
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("qlove-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.qlvd");
        let d = Dataset::new("file-test", (0..1000u64).collect());
        d.save(&path).unwrap();
        assert_eq!(Dataset::load(&path).unwrap(), d);
        let _ = fs::remove_file(&path);
    }
}
