//! Dataset transforms used by the sensitivity studies (§5.4).

/// §5.4's low-precision derivation: "We discard two low-order digits
/// from the original datasets … resulting in the data precision of 100
/// µs, not 1 µs." Rounds each value down to a multiple of 100.
pub fn drop_low_digits(values: &mut [u64], digits: u32) {
    let unit = 10u64.pow(digits);
    for v in values.iter_mut() {
        *v = (*v / unit) * unit;
    }
}

/// §3.1's significant-digit quantization: "we consider only the three
/// most significant digits of the original value, which ensures the
/// quantized value within less than 1% relative error." Zeroes all
/// lower-order digits (floor), e.g. `74_265 → 74_200` for 3 digits.
pub fn quantize_sig_digits(v: u64, sig_digits: u32) -> u64 {
    debug_assert!(sig_digits > 0, "need at least one significant digit");
    if v == 0 {
        return 0;
    }
    let digits = v.ilog10() + 1;
    if digits <= sig_digits {
        return v;
    }
    let unit = 10u64.pow(digits - sig_digits);
    (v / unit) * unit
}

/// Quantize a whole slice in place.
pub fn quantize_all(values: &mut [u64], sig_digits: u32) {
    for v in values.iter_mut() {
        *v = quantize_sig_digits(*v, sig_digits);
    }
}

/// Fraction of distinct values in a slice — the redundancy metric the
/// paper quotes ("only 0.08% of the elements … are unique").
pub fn unique_fraction(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_low_digits_rounds_to_unit() {
        let mut v = vec![1, 99, 100, 12_345, 74_265];
        drop_low_digits(&mut v, 2);
        assert_eq!(v, vec![0, 0, 100, 12_300, 74_200]);
    }

    #[test]
    fn quantize_keeps_three_sig_digits() {
        assert_eq!(quantize_sig_digits(74_265, 3), 74_200);
        assert_eq!(quantize_sig_digits(1_247, 3), 1_240);
        assert_eq!(quantize_sig_digits(798, 3), 798);
        assert_eq!(quantize_sig_digits(99, 3), 99);
        assert_eq!(quantize_sig_digits(0, 3), 0);
        assert_eq!(quantize_sig_digits(1_000_000, 3), 1_000_000);
        assert_eq!(quantize_sig_digits(1_234_567, 3), 1_230_000);
    }

    #[test]
    fn quantization_error_below_one_percent() {
        // §3.1's claim: 3 significant digits ⇒ < 1% relative error.
        for v in (100u64..1_000_000).step_by(7919) {
            let q = quantize_sig_digits(v, 3);
            let rel = (v - q) as f64 / v as f64;
            assert!(rel < 0.01, "v={v} q={q} rel={rel}");
        }
    }

    #[test]
    fn quantization_increases_redundancy() {
        let mut v: Vec<u64> = (0..50_000u64).map(|i| 1000 + (i * 37) % 9000).collect();
        let before = unique_fraction(&v);
        quantize_all(&mut v, 2);
        let after = unique_fraction(&v);
        assert!(after < before / 10.0, "{before} → {after}");
    }

    #[test]
    fn unique_fraction_edge_cases() {
        assert_eq!(unique_fraction(&[]), 0.0);
        assert_eq!(unique_fraction(&[5]), 1.0);
        assert_eq!(unique_fraction(&[5, 5, 5, 5]), 0.25);
    }
}
