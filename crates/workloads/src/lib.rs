//! # qlove-workloads — telemetry dataset generators
//!
//! The paper evaluates on two proprietary traces and four synthetics.
//! The traces cannot be redistributed, so this crate generates synthetic
//! stand-ins **calibrated to every statistic the paper publishes about
//! them**, plus faithful implementations of the synthetics:
//!
//! | Paper dataset | Here | Calibration anchors |
//! |---|---|---|
//! | NetMon (DC RTTs, µs) | [`netmon::NetMonGen`] | median 798, ~90% < 1,247, Q0.99 ≈ 1,874, long Pareto tail to ~74,265, heavy value redundancy (§1, Fig. 1) |
//! | Search (ISN response times, µs) | [`search::SearchGen`] | 200 ms SLA cap concentrating mass in the tail (§5.3 footnote) |
//! | Normal (1B entries) | [`synth::NormalGen`] | mean 1M, sd 50K (§5.2) |
//! | Uniform | [`synth::UniformGen`] | range 90–110 (§5.2) |
//! | Pareto | [`synth::ParetoGen`] | Q0.5 = 20, Q0.999 = 10,000, max ~1.1B (§5.4) |
//! | AR(1) | [`ar1::Ar1Gen`] | ψ ∈ {0.1…0.9}, marginal N(1M, 50K²) (§5.4) |
//!
//! Plus the experiment-support transforms:
//!
//! * [`burst`] — §5.3's burst injection: boost the top `N(1−φ)` elements
//!   of every `(N/P)`-th sub-window by 10×.
//! * [`transform`] — §5.4's low-precision derivation (drop two low-order
//!   digits) and significant-digit quantization.
//! * [`io`] — compact binary snapshot save/load so harness runs can be
//!   replayed bit-identically.
//!
//! All generators are deterministic given a seed and implement
//! `Iterator<Item = u64>`, so scalability sweeps can stream hundreds of
//! millions of values without materializing them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar1;
pub mod burst;
pub mod io;
pub mod netmon;
pub mod search;
pub mod synth;
pub mod transform;

pub use ar1::Ar1Gen;
pub use netmon::NetMonGen;
pub use search::SearchGen;
pub use synth::{NormalGen, ParetoGen, UniformGen};

/// Collect `n` values from any generator into a `Vec`.
pub fn take_vec<G: Iterator<Item = u64>>(gen: G, n: usize) -> Vec<u64> {
    gen.take(n).collect()
}
