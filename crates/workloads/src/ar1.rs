//! §5.4's non-i.i.d. dataset: an AR(1) autoregressive process.
//!
//! > "we generate a non-i.i.d. dataset from an AR(1) model … with
//! > coefficient ψ ∈ {0.1, …, 0.9}, where ψ represents the correlation
//! > between a data point and its next data point … Data points in the
//! > dataset are identically and normally distributed, with a mean of 1
//! > million and a standard deviation of 50 thousand."
//!
//! The recurrence `x_{t+1} = m + ψ(x_t − m) + ε_t` with innovation
//! variance `σ²(1 − ψ²)` keeps the *marginal* distribution exactly
//! N(m, σ²) for every ψ, so accuracy differences across ψ isolate the
//! effect of dependence — which is what Table 5 measures. ψ = 0
//! degenerates to the i.i.d. Normal generator.

use qlove_stats::norm_inv_cdf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Infinite deterministic AR(1) stream with a N(mean, sd²) marginal.
#[derive(Debug, Clone)]
pub struct Ar1Gen {
    rng: SmallRng,
    mean: f64,
    sd: f64,
    psi: f64,
    innovation_sd: f64,
    state: f64,
}

impl Ar1Gen {
    /// Paper parameters: marginal N(1M, 50K²), correlation `psi`.
    pub fn paper(seed: u64, psi: f64) -> Self {
        Self::new(seed, psi, 1_000_000.0, 50_000.0)
    }

    /// Custom marginal.
    ///
    /// # Panics
    /// Panics unless `0 ≤ psi < 1` (stationarity).
    pub fn new(seed: u64, psi: f64, mean: f64, sd: f64) -> Self {
        assert!((0.0..1.0).contains(&psi), "psi must lie in [0, 1)");
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        let mut rng = SmallRng::seed_from_u64(seed);
        // Start at a stationary draw so there is no warm-up transient.
        let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
        let state = mean + sd * norm_inv_cdf(u);
        Self {
            rng,
            mean,
            sd,
            psi,
            innovation_sd: sd * (1.0 - psi * psi).sqrt(),
            state,
        }
    }

    /// `n` samples as a vector (paper marginal).
    pub fn generate(seed: u64, psi: f64, n: usize) -> Vec<u64> {
        Self::paper(seed, psi).take(n).collect()
    }

    /// Correlation coefficient ψ.
    pub fn psi(&self) -> f64 {
        self.psi
    }

    /// Marginal standard deviation σ.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Iterator for Ar1Gen {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        let out = self.state.round().max(0.0) as u64;
        let u: f64 = self.rng.gen_range(1e-12..1.0 - 1e-12);
        let eps = self.innovation_sd * norm_inv_cdf(u);
        self.state = self.mean + self.psi * (self.state - self.mean) + eps;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lag1_autocorr(v: &[u64]) -> f64 {
        let f: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        let m = qlove_stats::mean(&f).unwrap();
        let var: f64 = f.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
        let cov: f64 = f.windows(2).map(|w| (w[0] - m) * (w[1] - m)).sum::<f64>();
        cov / var
    }

    #[test]
    fn marginal_is_invariant_across_psi() {
        for &psi in &[0.0, 0.2, 0.8] {
            let v = Ar1Gen::generate(9, psi, 200_000);
            let f: Vec<f64> = v.iter().map(|&x| x as f64).collect();
            let mean = qlove_stats::mean(&f).unwrap();
            let sd = qlove_stats::stddev(&f).unwrap();
            assert!(
                (mean - 1_000_000.0).abs() < 3_000.0,
                "psi={psi}: mean {mean}"
            );
            assert!((sd - 50_000.0).abs() < 3_000.0, "psi={psi}: sd {sd}");
        }
    }

    #[test]
    fn autocorrelation_matches_psi() {
        for &psi in &[0.0, 0.2, 0.5, 0.8] {
            let v = Ar1Gen::generate(21, psi, 200_000);
            let rho = lag1_autocorr(&v);
            assert!((rho - psi).abs() < 0.02, "psi={psi}: rho {rho}");
        }
    }

    #[test]
    fn psi_zero_is_iid_like() {
        let v = Ar1Gen::generate(3, 0.0, 100_000);
        assert!(lag1_autocorr(&v).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "psi")]
    fn rejects_non_stationary_psi() {
        Ar1Gen::paper(0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(Ar1Gen::generate(5, 0.4, 100), Ar1Gen::generate(5, 0.4, 100));
    }
}
