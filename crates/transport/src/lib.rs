//! # qlove-transport — the multi-process distributed runtime
//!
//! Runs QLOVE windows across **worker processes** connected by TCP or
//! Unix-domain sockets, answering bit-identically to single-instance
//! runs — the "multi-process shards exchanging QLVS frames over
//! sockets" extension the merge design record called for. Six layers,
//! each usable on its own:
//!
//! * [`proto`] — the framed QLVT wire protocol (v5): length-prefixed,
//!   versioned frames carrying the QLVS summary codec plus control
//!   messages. Every post-handshake frame is **session-scoped** (leads
//!   with a varint session ID), so one connection multiplexes many
//!   independent windows: `Hello`, `OpenSession`/`CloseSession`,
//!   `EventBatch`, `Boundary`, `BoundarySummary`, `Answer`,
//!   `Heartbeat`, `Restore`, `Shutdown`, the v4 shared-memory
//!   plane (`AttachShm`/`ShmSummary`/`ShmAck`), and the v5 telemetry
//!   scrape (`StatsRequest`/`StatsReport`). Strict decoding:
//!   malformed input errors, never panics.
//! * [`worker`] — the worker runtime: a **multi-session server**
//!   holding a slab of independent per-session states — distinct
//!   `QloveConfig`s, backends, and modes in one process — with
//!   round-robin fairness across sessions with pending input and a
//!   per-session backpressure bound so one hot window cannot starve
//!   the rest.
//! * [`coordinator`] — the pipelined coordinator: deals one logical
//!   stream across N single-session worker connections, collects each
//!   boundary's summary group, and merges it through the
//!   double-buffered core shared with the in-process thread executor
//!   (`qlove_stream::coordinate_pipelined`). Under a
//!   [`RecoveryPolicy`], `run_supervised` adds worker supervision:
//!   heartbeat failure detection, checkpoint restore, and exact replay
//!   from a bounded per-shard ring of unacknowledged frames.
//! * [`sessions`] — the transpose of the coordinator: N whole windows
//!   multiplexed over **one** worker connection ([`run_sessions`]),
//!   with per-session replay rings and per-session `Restore` recovery
//!   under supervision ([`run_sessions_supervised`]) — a respawned
//!   process re-hosts every unfinished session, restoring each to its
//!   own acknowledged boundary.
//! * [`reshard`] — **live resharding**: [`run_resharded`] applies a
//!   static schedule of shard splits and merges mid-window — boundary
//!   checkpoints run through the core split/merge helpers, successor
//!   sessions opened and restored on an (optionally fresh) worker,
//!   epochs stamped on every summary so boundary groups can never mix
//!   across a swap — with ingest paused for at most one sub-window
//!   gap, composing with the same per-connection replay-ring
//!   supervision as the other layers.
//! * [`chaos`] — the reusable seed-deterministic fault-injection
//!   harness the recovery tests share: a byte-level proxy that can
//!   cut, delay, or duplicate coordinator→worker frames at exact
//!   positions ([`interpose`]), plus the small PRNG that also drives
//!   deterministic [`RecoveryPolicy`] backoff jitter.
//!
//! [`net`] holds the socket plumbing (endpoints, listeners, duplex
//! connections over TCP/UDS, plus the same-host `shm:` endpoint whose
//! control frames ride a UDS side-channel).
//!
//! ## The zero-copy shared-memory data plane (`shm:`)
//!
//! A `shm:PATH` endpoint keeps the whole QLVT control protocol on a
//! Unix socket but moves the bulky boundary-summary payloads through
//! shared memory. On connect, the coordinator creates a per-connection
//! [`SummaryRing`](qlove_shm::SummaryRing) file (a small slab of
//! seqlock-stamped slots) and announces it with `AttachShm`; at each
//! boundary the worker publishes its `(value, freq)` rows into a free
//! slot and sends a tiny `ShmSummary` descriptor frame instead of the
//! inline `BoundarySummary`. The coordinator folds rows straight out
//! of the mapping, validates the seqlock (a torn or corrupt slot is
//! handled exactly like a worker crash: sever, respawn, replay), and
//! returns the slot with `ShmAck`. Workers additionally keep their
//! dense Level-1 state in an mmap-backed checkpoint file beside the
//! endpoint, so a respawned same-host worker restores by **remapping**
//! the file — skipping the already-absorbed replay prefix — instead of
//! replaying QLVS state through the socket. Everything degrades to the
//! inline path (no ring, full summary frames) whenever attach fails,
//! slots run out, or a summary outgrows a slot; answers stay
//! bit-identical either way.
//!
//! The invariant carried over from the thread executor is
//! non-negotiable: socket-distributed answers — values, provenance,
//! bounds, burst flags — are **bit-identical** to a single-instance
//! run (locked by `tests/transport_differential.rs`, which spawns real
//! worker child processes over both socket families).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod coordinator;
pub mod net;
pub mod proto;
pub mod reshard;
pub mod sessions;
pub mod worker;

#[cfg(all(unix, not(miri)))]
pub use chaos::TornWrite;
pub use chaos::{interpose, ChaosProxy, CutAfter, Fate, FaultInjector, NoFaults, SeededRng};
pub use coordinator::{
    run_over_sockets, run_remote_operator, run_remote_operator_with_policy, run_supervised,
    DistributedRun, FailureEvent, FailureKind, RecoveryPolicy, TransportError, WorkerStats,
    MAX_RING_BOUNDARIES, SHM_RING_CAP, SHM_RING_SLOTS,
};
pub use net::{Conn, Endpoint, Listener};
pub use proto::{Frame, FrameReader, FrameWriter, Role, WorkerMode, PROTOCOL_VERSION};
pub use reshard::{run_resharded, ReshardEvent, ReshardRun};
pub use sessions::{
    run_sessions, run_sessions_supervised, SessionOutcome, SessionSpec, SessionsRun,
};
pub use worker::{
    serve_stream, ServeReport, SessionReport, WorkerServer, MAX_PENDING_BATCHES_PER_SESSION,
};

#[cfg(test)]
mod tests {
    //! In-process loopback sessions: worker threads speaking the real
    //! socket protocol. The cross-*process* differential lives in the
    //! workspace-level `tests/transport_differential.rs`.

    use super::*;
    use qlove_core::{Backend, Qlove, QloveAnswer, QloveConfig};
    use std::io;
    use std::time::Duration;

    fn config() -> QloveConfig {
        QloveConfig::new(&[0.5, 0.99], 4_000, 500)
    }

    fn sequential(cfg: &QloveConfig, data: &[u64]) -> Vec<QloveAnswer> {
        let mut op = Qlove::new(cfg.clone());
        data.iter().filter_map(|&v| op.push_detailed(v)).collect()
    }

    type WorkerJoin = std::thread::JoinHandle<io::Result<ServeReport>>;

    /// Spawn one worker thread on loopback TCP and connect to it. An
    /// unreachable worker is an error, not a panic.
    fn tcp_worker() -> io::Result<(Conn, WorkerJoin)> {
        let server = WorkerServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()))?;
        let endpoint = server.local_endpoint()?;
        let join = std::thread::spawn(move || server.serve_one());
        let conn = Conn::connect_retry(&endpoint, Duration::from_secs(5))?;
        Ok((conn, join))
    }

    /// Spawn `n` worker threads on loopback TCP, returning connected
    /// conns (in shard order) and the join handles.
    fn tcp_workers(n: usize) -> io::Result<(Vec<Conn>, Vec<WorkerJoin>)> {
        let mut conns = Vec::new();
        let mut joins = Vec::new();
        for _ in 0..n {
            let (conn, join) = tcp_worker()?;
            conns.push(conn);
            joins.push(join);
        }
        Ok((conns, joins))
    }

    #[test]
    fn loopback_shard_session_is_bit_identical() {
        let cfg = config();
        let data: Vec<u64> = (0..10_250u64).map(|i| (i * 2654435761) % 9_973).collect();
        let want = sequential(&cfg, &data);
        assert!(!want.is_empty());
        for shards in [1usize, 3] {
            let (conns, joins) = tcp_workers(shards).unwrap();
            let mut coordinator = Qlove::new(cfg.clone());
            let run = run_over_sockets(&cfg, &mut coordinator, conns, &data).unwrap();
            assert_eq!(run.answers, want, "{shards} shards");
            assert_eq!(run.stats.boundaries, data.len().div_ceil(cfg.period));
            // Trailing partial sub-window mirrored, not dropped.
            assert_eq!(coordinator.pending(), data.len() % cfg.period);
            for join in joins {
                let report = join.join().unwrap().unwrap();
                assert_eq!(report.sessions_served(), 1);
                assert_eq!(report.sessions[0].mode, WorkerMode::Shard);
                assert_eq!(report.responses(), run.stats.boundaries as u64);
            }
        }
    }

    #[test]
    fn loopback_remote_operator_is_bit_identical() {
        let cfg = config();
        let data: Vec<u64> = (0..9_111u64).map(|i| (i * 7919) % 4_999).collect();
        let want = sequential(&cfg, &data);
        let (mut conns, joins) = tcp_workers(1).unwrap();
        let answers = run_remote_operator(&cfg, conns.pop().unwrap(), &data).unwrap();
        assert_eq!(answers, want);
        let report = joins.into_iter().next().unwrap().join().unwrap().unwrap();
        assert_eq!(report.sessions_served(), 1);
        assert_eq!(report.sessions[0].mode, WorkerMode::Operator);
        assert_eq!(report.responses(), want.len() as u64);
        assert_eq!(report.events(), data.len() as u64);
    }

    #[cfg(unix)]
    #[test]
    fn loopback_unix_socketpair_session() {
        use std::os::unix::net::UnixStream;
        let cfg = config();
        let data: Vec<u64> = (0..6_000u64).map(|i| (i * 31) % 1_009).collect();
        let want = sequential(&cfg, &data);
        let shards = 2;
        let mut conns = Vec::new();
        let mut joins = Vec::new();
        for _ in 0..shards {
            let (ours, theirs) = UnixStream::pair().unwrap();
            conns.push(Conn::Unix(ours));
            joins.push(std::thread::spawn(move || serve_stream(Conn::Unix(theirs))));
        }
        let mut coordinator = Qlove::new(cfg.clone());
        let run = run_over_sockets(&cfg, &mut coordinator, conns, &data).unwrap();
        assert_eq!(run.answers, want);
        for join in joins {
            join.join().unwrap().unwrap();
        }
    }

    /// Specs exercising every corner in one multiplexed run: distinct
    /// configs, mixed tree/dense backends, mixed shard/operator modes,
    /// varied stream lengths (empty streams and trailing partials
    /// included).
    fn mixed_specs(n: usize) -> Vec<SessionSpec> {
        (0..n)
            .map(|s| {
                let period = 250 + 50 * (s % 2);
                let window = period * (6 + s % 3);
                let backend = if s % 2 == 0 {
                    Backend::Tree
                } else {
                    Backend::Dense
                };
                let mode = if s % 4 == 3 {
                    WorkerMode::Operator
                } else {
                    WorkerMode::Shard
                };
                let len = if s == 0 { 0 } else { 1_500 + s * 37 };
                let values: Vec<u64> = (0..len as u64)
                    .map(|i| (i * 2654435761 + s as u64 * 97) % 9_973)
                    .collect();
                SessionSpec {
                    config: QloveConfig::new(&[0.5, 0.9, 0.999], window, period).backend(backend),
                    mode,
                    values,
                }
            })
            .collect()
    }

    #[test]
    fn multi_session_loopback_is_bit_identical() {
        // One worker thread, many interleaved sessions: every session's
        // answers must match its own sequential single-instance run.
        let specs = mixed_specs(12);
        let (conn, join) = tcp_worker().unwrap();
        let outcomes = match run_sessions(conn, &specs) {
            Ok(o) => o,
            Err(e) => panic!("client: {e}; worker: {:?}", join.join()),
        };
        assert_eq!(outcomes.len(), specs.len());
        for (s, (spec, outcome)) in specs.iter().zip(&outcomes).enumerate() {
            let want = sequential(&spec.config, &spec.values);
            assert_eq!(outcome.answers, want, "session {s}");
            assert_eq!(outcome.mode, spec.mode);
            if spec.mode == WorkerMode::Shard {
                assert_eq!(
                    outcome.boundaries,
                    spec.values.len().div_ceil(spec.config.period) as u64,
                    "session {s}"
                );
                assert_eq!(
                    outcome.pending,
                    spec.values.len() % spec.config.period,
                    "session {s}"
                );
            }
        }
        let report = join.join().unwrap().unwrap();
        assert_eq!(report.sessions_served(), specs.len());
        let total_events: u64 = specs.iter().map(|s| s.values.len() as u64).sum();
        assert_eq!(report.events(), total_events);
    }

    /// Regression: one bench-scale session through the unsupervised
    /// multiplexer. The dealer stuffs batches far faster than the
    /// worker drains them, so the socket write blocks mid-round; the
    /// collector must keep reading summaries regardless (its acks are
    /// lock-free when nothing is retained), or dealer, worker, and
    /// collector deadlock in a three-way cycle of full buffers. This
    /// test hangs — it does not merely fail — if that property breaks.
    #[test]
    fn single_large_session_streams_without_deadlock() {
        let cfg = config(); // window 4000, period 500
        let values: Vec<u64> = (0..600_000u64).map(|i| (i * 2654435761) % 99_991).collect();
        let windows = values.len() / cfg.period - (cfg.window / cfg.period - 1);
        let specs = [SessionSpec {
            config: cfg,
            mode: WorkerMode::Shard,
            values,
        }];
        let (conn, join) = tcp_worker().unwrap();
        let outcomes = match run_sessions(conn, &specs) {
            Ok(o) => o,
            Err(e) => panic!("client: {e}; worker: {:?}", join.join()),
        };
        assert_eq!(outcomes[0].answers.len(), windows);
        assert_eq!(outcomes[0].pending, 0);
        let report = join.join().unwrap().unwrap();
        assert_eq!(report.events(), specs[0].values.len() as u64);
    }

    #[test]
    fn supervised_sessions_reject_operator_mode() {
        // Operator state cannot be rebuilt by replay, so supervising a
        // mixed-mode multiplexed run must fail fast -- before any
        // socket traffic.
        let mut specs = mixed_specs(4);
        assert!(specs.iter().any(|s| s.mode == WorkerMode::Operator));
        let (conn, join) = tcp_worker().unwrap();
        let err = run_sessions_supervised(conn, &specs, &test_policy(), || {
            unreachable!("no respawn expected")
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The same specs, forced to shard mode, run fine supervised.
        for spec in &mut specs {
            spec.mode = WorkerMode::Shard;
        }
        drop(join); // first worker never handshook; spawn a fresh one
        let (conn, join) = tcp_worker().unwrap();
        let run = run_sessions_supervised(conn, &specs, &test_policy(), || {
            Err(io::Error::other("worker should not have died"))
        })
        .unwrap();
        assert!(run.failures.is_empty());
        for (spec, outcome) in specs.iter().zip(&run.outcomes) {
            assert_eq!(outcome.answers, sequential(&spec.config, &spec.values));
        }
        join.join().unwrap().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn multi_session_recovery_restores_each_session() -> io::Result<()> {
        // A real worker serves several shard sessions honestly, then
        // drops the connection after shipping the first summary for the
        // last session. The replacement process must re-host every
        // unfinished session -- each restored to its *own* acknowledged
        // boundary -- and every session's answers must stay
        // bit-identical.
        use std::os::unix::net::UnixStream;
        let mut specs = mixed_specs(6);
        for spec in &mut specs {
            spec.mode = WorkerMode::Shard;
        }
        let last = (specs.len() - 1) as u64;
        let (ours, theirs) = UnixStream::pair()?;
        let dying = std::thread::spawn(move || -> io::Result<()> {
            // A protocol-level proxy around a real slab: forward frames
            // into a real `serve_stream` would hide the cut, so instead
            // run the real worker loop inline and sever after the
            // trigger frame. Simplest faithful version: speak the
            // protocol directly with real QloveShards.
            use std::collections::HashMap;
            let conn = Conn::Unix(theirs);
            let read_half = conn.try_clone()?;
            let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
            let mut writer = FrameWriter::new(conn);
            reader.read_frame()?; // coordinator hello
            writer.write_frame(&Frame::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Worker,
            })?;
            writer.flush()?;
            let mut shards: HashMap<u64, qlove_core::QloveShard> = HashMap::new();
            loop {
                match reader.read_frame()? {
                    Frame::OpenSession {
                        session, config, ..
                    } => {
                        shards.insert(session, qlove_core::QloveShard::new(&config));
                    }
                    Frame::EventBatch { session, values } => {
                        shards.get_mut(&session).unwrap().push_batch(&values);
                    }
                    Frame::Boundary { session, boundary } => {
                        let summary = shards.get_mut(&session).unwrap().take_summary();
                        writer.write_frame(&Frame::BoundarySummary {
                            session,
                            boundary,
                            epoch: 0,
                            summary,
                        })?;
                        writer.flush()?;
                        if session == last {
                            return Ok(()); // connection drops here
                        }
                    }
                    Frame::Heartbeat { session } => {
                        writer.write_frame(&Frame::Heartbeat { session })?;
                        writer.flush()?;
                    }
                    _ => continue,
                }
            }
        });

        let mut joins = Vec::new();
        let run = run_sessions_supervised(Conn::Unix(ours), &specs, &test_policy(), || {
            let (conn, join) = tcp_worker()?;
            joins.push(join);
            Ok(conn)
        })?;
        for (s, (spec, outcome)) in specs.iter().zip(&run.outcomes).enumerate() {
            assert_eq!(
                outcome.answers,
                sequential(&spec.config, &spec.values),
                "session {s}"
            );
        }
        // One failure event per session restored on the replacement:
        // all sessions were still open when the connection died.
        assert_eq!(run.failures.len(), specs.len());
        for failure in &run.failures {
            assert!(failure.recovered);
            assert_eq!(failure.kind, FailureKind::Crash);
        }
        // The last session had its boundary-0 summary acknowledged, so
        // it alone restores to boundary 1.
        let restored_last = run
            .failures
            .iter()
            .find(|f| f.shard == last as usize)
            .unwrap();
        assert_eq!(restored_last.boundary, 1);
        dying.join().unwrap().unwrap();
        for join in joins {
            join.join().unwrap()?;
        }
        Ok(())
    }

    #[test]
    fn restored_session_report_counts_only_shipped_responses() -> io::Result<()> {
        // Satellite lock: a worker restored to a nonzero boundary must
        // report only the summaries it shipped *this* incarnation, not
        // the absolute boundary index it reached.
        let cfg = config();
        let (conn, join) = tcp_worker()?;
        let breaker = conn.try_clone()?;
        let read_half = conn.try_clone()?;
        let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
        let mut writer = FrameWriter::new(conn);
        writer.write_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
            role: Role::Coordinator,
        })?;
        writer.flush()?;
        let Frame::Hello { .. } = reader.read_frame()? else {
            panic!("expected hello");
        };
        writer.write_frame(&Frame::OpenSession {
            session: 7,
            config: cfg.clone(),
            mode: WorkerMode::Shard,
        })?;
        // Pretend boundaries 0..=4 happened on a previous incarnation.
        writer.write_frame(&Frame::Restore {
            session: 7,
            boundary: 5,
            checkpoint: qlove_core::QloveSummary::default(),
        })?;
        writer.write_frame(&Frame::EventBatch {
            session: 7,
            values: vec![42; cfg.period],
        })?;
        writer.write_frame(&Frame::Boundary {
            session: 7,
            boundary: 5,
        })?;
        writer.write_frame(&Frame::Shutdown)?;
        writer.flush()?;
        let Frame::BoundarySummary {
            session, boundary, ..
        } = reader.read_frame()?
        else {
            panic!("expected summary");
        };
        assert_eq!((session, boundary), (7, 5));
        let Frame::Shutdown = reader.read_frame()? else {
            panic!("expected shutdown ack");
        };
        let _ = breaker.shutdown();
        let report = join.join().unwrap()?;
        assert_eq!(report.sessions_served(), 1);
        assert_eq!(report.sessions[0].session, 7);
        // One summary shipped this incarnation -- NOT six (the absolute
        // boundary index the session reached).
        assert_eq!(report.sessions[0].responses, 1);
        assert_eq!(report.sessions[0].events, cfg.period as u64);
        Ok(())
    }

    /// Every regular file in `base`'s directory whose name starts with
    /// `base`'s file name — rings, checkpoints, and the side-channel
    /// socket all derive their names from the endpoint base, so an
    /// empty answer here proves nothing leaked.
    #[cfg(all(unix, not(miri)))]
    fn shm_residue(base: &std::path::Path) -> Vec<String> {
        let dir = base.parent().expect("base has a parent directory");
        let prefix = base
            .file_name()
            .expect("base has a file name")
            .to_string_lossy()
            .into_owned();
        std::fs::read_dir(dir)
            .expect("read shm dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with(&prefix))
            .collect()
    }

    #[cfg(all(unix, not(miri)))]
    #[test]
    fn loopback_shm_session_is_bit_identical_and_leaks_nothing() {
        // The shm data plane differential at thread scope: summaries
        // travel through the mapped seqlock ring (control frames on the
        // UDS side-channel), dense Level-1 state lives in mmap-backed
        // checkpoint files, and the answers must still be bit-identical
        // to a sequential run — with every base-derived file gone once
        // the run finishes.
        for backend in [Backend::Tree, Backend::Dense] {
            let cfg = config().backend(backend);
            let data: Vec<u64> = (0..10_250u64).map(|i| (i * 2654435761) % 9_973).collect();
            let want = sequential(&cfg, &data);
            assert!(!want.is_empty());
            for shards in [1usize, 3] {
                let tag = format!("qlove-shm-lib-{}-{backend:?}-{shards}", std::process::id())
                    .to_lowercase();
                let mut conns = Vec::new();
                let mut joins = Vec::new();
                let mut bases = Vec::new();
                for i in 0..shards {
                    let base = std::env::temp_dir().join(format!("{tag}-{i}"));
                    let server = WorkerServer::bind(&Endpoint::Shm(base.clone())).unwrap();
                    let endpoint = server.local_endpoint().unwrap();
                    joins.push(std::thread::spawn(move || server.serve_one()));
                    conns.push(Conn::connect_retry(&endpoint, Duration::from_secs(5)).unwrap());
                    bases.push(base);
                }
                let mut coordinator = Qlove::new(cfg.clone());
                let run = run_over_sockets(&cfg, &mut coordinator, conns, &data).unwrap();
                assert_eq!(run.answers, want, "{backend:?} shards {shards}");
                assert_eq!(coordinator.pending(), data.len() % cfg.period);
                for join in joins {
                    let report = join.join().unwrap().unwrap();
                    assert_eq!(report.responses(), run.stats.boundaries as u64);
                    // The data plane must actually engage — a silent
                    // fall-back to inline summaries would make this
                    // differential vacuous. (Not asserted equal to
                    // responses(): a worker running ahead of the acks
                    // may legitimately ship a few inline.)
                    assert!(
                        report.shm_summaries() > 0,
                        "{backend:?} shards {shards}: ring never used"
                    );
                }
                for base in bases {
                    assert_eq!(
                        shm_residue(&base),
                        Vec::<String>::new(),
                        "{backend:?} shards {shards}: stale shm files"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_stream_session_shuts_down_cleanly() {
        let cfg = config();
        let (conns, joins) = tcp_workers(2).unwrap();
        let mut coordinator = Qlove::new(cfg.clone());
        let run = run_over_sockets(&cfg, &mut coordinator, conns, &[]).unwrap();
        assert!(run.answers.is_empty());
        assert_eq!(run.stats.boundaries, 0);
        assert_eq!(coordinator.pending(), 0);
        for join in joins {
            let report = join.join().unwrap().unwrap();
            assert_eq!(report.responses(), 0);
            assert_eq!(report.events(), 0);
        }
    }

    #[test]
    fn worker_rejects_garbage_instead_of_panicking() -> io::Result<()> {
        use std::io::Write as _;
        let server = WorkerServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()))?;
        let endpoint = server.local_endpoint()?;
        let join = std::thread::spawn(move || server.serve_one());
        let mut conn = Conn::connect_retry(&endpoint, Duration::from_secs(5))?;
        conn.write_all(b"not a frame at all, definitely garbage......")?;
        let _ = conn.shutdown();
        // The worker must return an error (not hang, not panic).
        assert!(join.join().unwrap().is_err());
        Ok(())
    }

    #[test]
    fn coordinator_rejects_protocol_violations() -> io::Result<()> {
        // A "worker" that replies with the wrong role.
        let server = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let endpoint = server.local_endpoint().unwrap();
        let join = std::thread::spawn(move || {
            let conn = server.accept().unwrap();
            let read_half = conn.try_clone().unwrap();
            let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
            let mut writer = FrameWriter::new(conn);
            let _ = reader.read_frame(); // coordinator hello
            writer
                .write_frame(&Frame::Hello {
                    version: PROTOCOL_VERSION,
                    role: Role::Coordinator, // wrong role
                })
                .unwrap();
            writer.flush().unwrap();
        });
        let cfg = config();
        let conn = Conn::connect_retry(&endpoint, Duration::from_secs(5))?;
        let mut coordinator = Qlove::new(cfg.clone());
        let err = run_over_sockets(&cfg, &mut coordinator, vec![conn], &[1, 2, 3]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        join.join().unwrap();
        Ok(())
    }

    #[test]
    fn coordinator_survives_worker_death_mid_stream() -> io::Result<()> {
        // A worker that handshakes, then dies after the first summary:
        // without a recovery policy the coordinator must error out (not
        // hang) and the dealer must be unblocked by the socket
        // shutdown.
        let server = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let endpoint = server.local_endpoint().unwrap();
        let join = std::thread::spawn(move || {
            let conn = server.accept().unwrap();
            let read_half = conn.try_clone().unwrap();
            let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
            let mut writer = FrameWriter::new(conn);
            let _ = reader.read_frame(); // hello
            writer
                .write_frame(&Frame::Hello {
                    version: PROTOCOL_VERSION,
                    role: Role::Worker,
                })
                .unwrap();
            writer.flush().unwrap();
            let _ = reader.read_frame(); // open session
                                         // Ingest until the first boundary, answer it, then vanish.
            loop {
                match reader.read_frame().unwrap() {
                    Frame::Boundary { session, boundary } => {
                        writer
                            .write_frame(&Frame::BoundarySummary {
                                session,
                                boundary,
                                epoch: 0,
                                summary: qlove_core::QloveSummary::from_counts(vec![(1, 500)])
                                    .unwrap(),
                            })
                            .unwrap();
                        writer.flush().unwrap();
                        return; // connection drops here
                    }
                    _ => continue,
                }
            }
        });
        let cfg = config();
        let data: Vec<u64> = vec![1; 20 * cfg.period];
        let conn = Conn::connect_retry(&endpoint, Duration::from_secs(5))?;
        let mut coordinator = Qlove::new(cfg.clone());
        let err = run_over_sockets(&cfg, &mut coordinator, vec![conn], &data);
        assert!(err.is_err());
        join.join().unwrap();
        Ok(())
    }

    /// Recovery policy used by the supervision tests: fast heartbeats,
    /// a couple of restarts, generous overall deadline.
    fn test_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            max_restarts: 2,
            backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(20),
            heartbeat: Some(Duration::from_millis(75)),
            jitter: 0,
        }
    }

    /// Respawn hook: spawn a fresh real worker thread and connect.
    /// Join handles accumulate in `joins` so the test can reap them.
    fn thread_respawn(joins: &mut Vec<WorkerJoin>) -> impl FnMut(usize) -> io::Result<Conn> + '_ {
        move |_shard| {
            let (conn, join) = tcp_worker()?;
            joins.push(join);
            Ok(conn)
        }
    }

    #[cfg(unix)]
    #[test]
    fn supervised_run_recovers_from_worker_crash() -> io::Result<()> {
        // First worker serves shard 0 honestly -- real QloveShard, real
        // summaries -- but drops the connection right after answering
        // boundary 0. The replacement must be restored to boundary 1,
        // replayed the unacknowledged tail, and the merged answers must
        // be bit-identical to a sequential run. (A Unix socketpair
        // keeps this deterministic: buffered frames survive the peer's
        // close and are followed by a clean EOF, where TCP may reset
        // and discard them.)
        use std::os::unix::net::UnixStream;
        let (ours, theirs) = UnixStream::pair()?;
        let cfg = config();
        let worker_cfg = cfg.clone();
        let dying = std::thread::spawn(move || -> io::Result<()> {
            let conn = Conn::Unix(theirs);
            let read_half = conn.try_clone()?;
            let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
            let mut writer = FrameWriter::new(conn);
            reader.read_frame()?; // coordinator hello
            writer.write_frame(&Frame::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Worker,
            })?;
            writer.flush()?;
            reader.read_frame()?; // open session
            let mut shard = qlove_core::QloveShard::new(&worker_cfg);
            loop {
                match reader.read_frame()? {
                    Frame::EventBatch { values, .. } => shard.push_batch(&values),
                    Frame::Boundary { session, boundary } => {
                        writer.write_frame(&Frame::BoundarySummary {
                            session,
                            boundary,
                            epoch: 0,
                            summary: shard.take_summary(),
                        })?;
                        writer.flush()?;
                        return Ok(()); // connection drops after boundary 0
                    }
                    _ => continue,
                }
            }
        });

        let data: Vec<u64> = (0..10_250u64).map(|i| (i * 2654435761) % 9_973).collect();
        let want = sequential(&cfg, &data);
        let mut coordinator = Qlove::new(cfg.clone());
        let mut joins = Vec::new();
        let run = run_supervised(
            &cfg,
            &mut coordinator,
            vec![Conn::Unix(ours)],
            &data,
            &test_policy(),
            thread_respawn(&mut joins),
        )?;
        assert_eq!(run.answers, want);
        assert_eq!(run.failures.len(), 1);
        let failure = run.failures[0];
        assert_eq!(failure.shard, 0);
        assert_eq!(failure.boundary, 1);
        assert_eq!(failure.kind, FailureKind::Crash);
        assert!(failure.recovered);
        assert!(failure.replayed_frames > 0);
        dying.join().unwrap().unwrap();
        for join in joins {
            join.join().unwrap()?;
        }
        Ok(())
    }

    #[test]
    fn supervised_run_recovers_from_stalled_worker() -> io::Result<()> {
        // A worker that handshakes, then silently swallows every frame
        // without ever answering -- alive at the socket level, dead at
        // the protocol level. The heartbeat probe goes unanswered, the
        // stall is declared, and a real replacement finishes the run.
        let server = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))?;
        let endpoint = server.local_endpoint()?;
        let frozen = std::thread::spawn(move || -> io::Result<()> {
            let conn = server.accept()?;
            let read_half = conn.try_clone()?;
            let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
            let mut writer = FrameWriter::new(conn);
            reader.read_frame()?; // coordinator hello
            writer.write_frame(&Frame::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Worker,
            })?;
            writer.flush()?;
            // Swallow frames (open session included) until the
            // coordinator severs the socket during recovery.
            while reader.read_frame().is_ok() {}
            Ok(())
        });

        let cfg = config();
        let data: Vec<u64> = (0..6_000u64).map(|i| (i * 7919) % 4_999).collect();
        let want = sequential(&cfg, &data);
        let conn = Conn::connect_retry(&endpoint, Duration::from_secs(5))?;
        let mut coordinator = Qlove::new(cfg.clone());
        let mut joins = Vec::new();
        let run = run_supervised(
            &cfg,
            &mut coordinator,
            vec![conn],
            &data,
            &test_policy(),
            thread_respawn(&mut joins),
        )?;
        assert_eq!(run.answers, want);
        assert_eq!(run.failures.len(), 1);
        let failure = run.failures[0];
        assert_eq!(failure.kind, FailureKind::Stall);
        assert_eq!(failure.boundary, 0);
        assert!(failure.recovered);
        frozen.join().unwrap().unwrap();
        for join in joins {
            join.join().unwrap()?;
        }
        Ok(())
    }

    #[test]
    fn supervision_gives_up_after_restart_budget() -> io::Result<()> {
        // Every respawn hands back a worker that stalls immediately:
        // after `max_restarts` attempts the run must fail with an error
        // instead of looping, and the failure log must show the budget
        // exhausted without recovery.
        fn stalled_worker() -> io::Result<(Conn, std::thread::JoinHandle<()>)> {
            let server = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into()))?;
            let endpoint = server.local_endpoint()?;
            let join = std::thread::spawn(move || {
                let Ok(conn) = server.accept() else { return };
                let Ok(read_half) = conn.try_clone() else {
                    return;
                };
                let mut reader = FrameReader::new(std::io::BufReader::new(read_half));
                let mut writer = FrameWriter::new(conn);
                let _ = reader.read_frame();
                let _ = writer.write_frame(&Frame::Hello {
                    version: PROTOCOL_VERSION,
                    role: Role::Worker,
                });
                let _ = writer.flush();
                while reader.read_frame().is_ok() {}
            });
            let conn = Conn::connect_retry(&endpoint, Duration::from_secs(5))?;
            Ok((conn, join))
        }

        let cfg = config();
        let data: Vec<u64> = (0..3_000u64).collect();
        let (conn, first) = stalled_worker()?;
        let mut joins = vec![first];
        let policy = RecoveryPolicy {
            max_restarts: 2,
            backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(20),
            heartbeat: Some(Duration::from_millis(50)),
            jitter: 0,
        };
        let mut coordinator = Qlove::new(cfg.clone());
        let result = run_supervised(&cfg, &mut coordinator, vec![conn], &data, &policy, |_s| {
            let (conn, join) = stalled_worker()?;
            joins.push(join);
            Ok(conn)
        });
        assert!(result.is_err());
        for join in joins {
            join.join().unwrap();
        }
        Ok(())
    }
}
