//! Live resharding: elastic shard split/merge **mid-window** on the
//! socket runtime — the shard set changes while the window runs, with
//! answers still bit-identical to a sequential single-instance run.
//!
//! The schedule is static: every [`ReshardSpec`] (a split or merge
//! pinned to a sub-window boundary) is validated upfront into a
//! [`ReshardSchedule`], so the dealer and the collector derive the
//! same epoch timeline — routing table, group membership, and epoch
//! stamp per boundary — with no runtime coordination between them.
//!
//! ## The swap protocol
//!
//! A plan pinned to boundary `B` executes in the dealer, inline,
//! between dealing sub-window `B-1` and sub-window `B` — so ingest
//! pauses for exactly one inter-sub-window gap (`paused_subwindows ==
//! 1` on the reported [`ReshardEvent`], asserted by the differential
//! tests):
//!
//! 1. **Drain by construction**: every affected parent has already
//!    been dealt all its sub-windows `< B`; because a
//!    [`qlove_core::QloveShard`] resets at every boundary, the
//!    parent's *boundary checkpoint* is `boundary index + summary`
//!    with an empty summary — there is nothing left to move.
//! 2. **Retire**: parents get `CloseSession`; a merge's right-hand
//!    connection (which hosts no successor) also gets `Shutdown`.
//! 3. **Restore successors**: each successor slot is opened as a new
//!    session — on the surviving parent connection for the first
//!    successor, on a freshly connected worker for a split's high
//!    half — and `Restore`d at `B` from the parent checkpoint run
//!    through the core split/merge helpers
//!    ([`QloveSummary::split_at`] / [`QloveSummary::merged`]).
//! 4. **Stamp the epoch**: every session live in the new epoch gets a
//!    [`Frame::Reshard`] carrying `(B, epoch)`; workers stamp it on
//!    every subsequent summary, and the collector refuses any summary
//!    whose epoch does not match its boundary's epoch — groups from
//!    before and after the swap can never mix.
//! 5. **Swap the routing table**: the dealer continues under the new
//!    epoch's [`RangeTable`](qlove_stream::parallel::RangeTable).
//!
//! ## Composition with supervision
//!
//! Recovery is per **connection** (a connection can briefly host two
//! sessions: a retiring parent and its successor). Every frame dealt
//! to a connection — including the swap's `CloseSession` /
//! `OpenSession` / `Restore` / `Reshard` control frames — rides one
//! per-connection replay ring, pruned on boundary acknowledgement
//! exactly like the single-session rings in
//! [`run_supervised`](crate::coordinator::run_supervised). A worker
//! killed *during* a reshard is therefore recovered by the ordinary
//! mechanism: respawn, re-open the sessions that predate the ring
//! (tracked as the ring's base state), `Restore` each to its
//! acknowledged boundary, re-stamp its epoch, replay the tail — which
//! replays the in-flight swap itself, in order, at the exact stream
//! positions it originally held.

use crate::coordinator::{
    drive_restarts, failures_view, hello_handshake, is_timeout, join_io, FailureEvent, FailureKind,
    RecoveryPolicy, MAX_RING_BOUNDARIES,
};
use crate::net::Conn;
use crate::proto::{Frame, FrameReader, FrameWriter, WorkerMode};
use qlove_core::{Qlove, QloveAnswer, QloveConfig, QloveSummary};
use qlove_stream::parallel::{ReshardPlan, ReshardSchedule, ReshardSpec, BATCH};
use qlove_stream::{coordinate_pipelined, PipelineStats};
use qlove_telemetry::{EventJournal, EventKind, Stopwatch};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufReader};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

fn protocol(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One executed reshard, with the metrics the acceptance gate and the
/// bench report care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardEvent {
    /// First sub-window dealt under the new shard set.
    pub boundary: u64,
    /// The epoch this swap opened (stamped on all subsequent
    /// summaries).
    pub epoch: u64,
    /// The plan that was applied.
    pub plan: ReshardPlan,
    /// Wall time the dealer spent inside the swap (session retirement,
    /// fresh-worker connect + handshake, successor restore, epoch
    /// stamping) — the whole ingest pause.
    pub pause_us: u64,
    /// Sub-window gaps the swap spanned, measured from the dealer's
    /// value frontier on either side of the swap. The protocol
    /// executes between two sub-windows, so this is 1 — the "no pause
    /// longer than one sub-window" bound, asserted by tests.
    pub paused_subwindows: u64,
    /// Control frames the swap dealt (`CloseSession`, `Shutdown`,
    /// `OpenSession`, `Restore`, `Reshard`).
    pub swap_frames: usize,
    /// Serialized bytes of the successor checkpoints carried by the
    /// swap's `Restore` frames.
    pub checkpoint_bytes: usize,
}

/// Result of a resharded socket-distributed run.
#[derive(Debug)]
pub struct ReshardRun {
    /// The merged window evaluations, bit-identical to a
    /// single-instance run over the undealt stream.
    pub answers: Vec<QloveAnswer>,
    /// Pipeline timing (same meaning as in unresharded runs).
    pub stats: PipelineStats,
    /// Worker failures detected during the run and how recovery went.
    /// `shard` on each event is the **connection index** here. A view
    /// materialized from [`ReshardRun::journal`].
    pub failures: Vec<FailureEvent>,
    /// The reshards actually executed, in boundary order. A view
    /// materialized from [`ReshardRun::journal`].
    pub events: Vec<ReshardEvent>,
    /// The run's structured event journal: reshard, pause, failure,
    /// and recovery records interleaved in causal order on one clock.
    pub journal: EventJournal,
}

/// Materialize the [`ReshardEvent`] view from a run's journal: every
/// [`EventKind::Reshard`] record, with its pause cost filled from the
/// [`EventKind::Pause`] record the swap emitted right after it.
fn reshard_events_view(journal: &EventJournal) -> Vec<ReshardEvent> {
    let mut out: Vec<ReshardEvent> = Vec::new();
    let mut unfilled: Option<usize> = None;
    for event in journal.events() {
        match event.kind {
            EventKind::Reshard {
                boundary,
                epoch,
                split,
                slot,
                pivot,
                swap_frames,
                checkpoint_bytes,
            } => {
                out.push(ReshardEvent {
                    boundary,
                    epoch,
                    plan: if split {
                        ReshardPlan::Split { slot, pivot }
                    } else {
                        ReshardPlan::Merge { left: slot }
                    },
                    pause_us: 0,
                    paused_subwindows: 0,
                    swap_frames,
                    checkpoint_bytes,
                });
                unfilled = Some(out.len() - 1);
            }
            EventKind::Pause {
                boundary,
                pause_us,
                paused_subwindows,
            } => {
                if let Some(i) = unfilled.take() {
                    if out[i].boundary == boundary {
                        out[i].pause_us = pause_us;
                        out[i].paused_subwindows = paused_subwindows as u64;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Static connection plan
// ---------------------------------------------------------------------------

/// Where every slot the schedule will ever create is hosted, derived
/// once from the schedule: the first successor of a plan inherits the
/// first retired parent's connection (split low half, merge result);
/// a split's high half gets a fresh connection; a merge fully retires
/// the right parent's connection.
struct ConnPlan {
    /// Slot id → connection index.
    conn_of: Vec<usize>,
    /// Connection index → boundary at which its first frames are dealt
    /// (0 for the initial fleet).
    opened_at: Vec<u64>,
    /// Connection index → boundary at whose swap it receives
    /// `Shutdown` (merges only); `None` = lives to the end of the run.
    retired_at: Vec<Option<u64>>,
}

impl ConnPlan {
    fn build(schedule: &ReshardSchedule, shards: usize) -> Self {
        let mut plan = ConnPlan {
            conn_of: (0..shards).collect(),
            opened_at: vec![0; shards],
            retired_at: vec![None; shards],
        };
        for epoch in 1..schedule.len() as u64 {
            let b = schedule.from_boundary(epoch);
            let delta = schedule.delta(epoch).expect("epoch > 0 has a delta");
            // Slot ids are dense and created in order, so each created
            // slot extends conn_of by exactly one entry.
            match delta.plan {
                ReshardPlan::Split { .. } => {
                    let parent = delta.retired[0];
                    debug_assert_eq!(delta.created[0].slot, plan.conn_of.len());
                    plan.conn_of.push(plan.conn_of[parent]); // low half stays
                    let fresh = plan.opened_at.len();
                    debug_assert_eq!(delta.created[1].slot, plan.conn_of.len());
                    plan.conn_of.push(fresh); // high half: new worker
                    plan.opened_at.push(b);
                    plan.retired_at.push(None);
                }
                ReshardPlan::Merge { .. } => {
                    let (left, right) = (delta.retired[0], delta.retired[1]);
                    debug_assert_eq!(delta.created[0].slot, plan.conn_of.len());
                    plan.conn_of.push(plan.conn_of[left]); // successor on left's conn
                    plan.retired_at[plan.conn_of[right]] = Some(b);
                }
            }
        }
        plan
    }

    fn conns(&self) -> usize {
        self.opened_at.len()
    }
}

// ---------------------------------------------------------------------------
// Per-connection link: replay ring + base state + write half
// ---------------------------------------------------------------------------

/// A session that existed before the oldest retained ring frame; on
/// recovery it is re-opened and restored *before* the ring is
/// replayed. Maintained by interpreting the session-lifecycle frames
/// as they are pruned out of the ring.
#[derive(Debug, Clone, Copy)]
struct BaseSession {
    slot: u64,
    /// Boundary the session is restored to (boundaries acknowledged).
    acked: u64,
    /// Epoch to re-stamp after the restore (0 = never resharded).
    epoch: u64,
}

struct ConnState {
    retain: bool,
    ring: VecDeque<Frame>,
    ring_boundaries: usize,
    /// Sessions predating the ring, with their restore coordinates.
    base: Vec<BaseSession>,
    /// Sessions ever closed on this connection: their `CloseSession`
    /// acks are expected (possibly more than once, after a replay) and
    /// skipped by the collector.
    closing: HashSet<u64>,
    writer: Option<FrameWriter<Conn>>,
    failed: bool,
}

struct ConnLink {
    state: Mutex<ConnState>,
    cv: Condvar,
}

impl ConnLink {
    fn new(base: Vec<BaseSession>, retain: bool) -> Self {
        Self {
            state: Mutex::new(ConnState {
                retain,
                ring: VecDeque::new(),
                ring_boundaries: 0,
                base,
                closing: HashSet::new(),
                writer: None,
                failed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn install_writer(&self, writer: FrameWriter<Conn>) {
        let mut st = self.state.lock().expect("conn link poisoned");
        st.writer = Some(writer);
    }

    /// Dealer path: ring the frame (under a restartable policy), then
    /// push it down the socket. A failed write parks the link; the
    /// collector notices the dead peer and recovers or ends the run.
    /// Blocks while the ring holds [`MAX_RING_BOUNDARIES`] boundaries.
    fn deal(&self, frame: Frame) -> io::Result<()> {
        let mut st = self.state.lock().expect("conn link poisoned");
        let is_boundary = matches!(frame, Frame::Boundary { .. });
        if is_boundary {
            while st.ring_boundaries >= MAX_RING_BOUNDARIES && !st.failed {
                st = self.cv.wait(st).expect("conn link poisoned");
            }
        }
        if st.failed {
            return Err(io::Error::other("resharded run aborted"));
        }
        if let Frame::CloseSession { session } = frame {
            st.closing.insert(session);
        }
        let flush = is_boundary || matches!(frame, Frame::Shutdown);
        let st = &mut *st;
        let frame = if st.retain {
            st.ring.push_back(frame);
            if is_boundary {
                st.ring_boundaries += 1;
            }
            st.ring.back().expect("frame was just pushed")
        } else {
            &frame
        };
        if let Some(writer) = st.writer.as_mut() {
            let sent =
                writer
                    .write_frame(frame)
                    .and_then(|()| if flush { writer.flush() } else { Ok(()) });
            if sent.is_err() {
                st.writer = None;
            }
        }
        Ok(())
    }

    /// Collector ack: `slot`'s summary for boundary `b` is merged —
    /// prune the ring through that `Boundary` frame, folding every
    /// pruned session-lifecycle frame into the base state, and wake a
    /// dealer waiting on ring space.
    fn ack_through(&self, slot: u64, b: u64) {
        let mut st = self.state.lock().expect("conn link poisoned");
        let st = &mut *st;
        while let Some(frame) = st.ring.pop_front() {
            match frame {
                Frame::OpenSession { session, .. } => st.base.push(BaseSession {
                    slot: session,
                    acked: 0,
                    epoch: 0,
                }),
                Frame::Restore {
                    session, boundary, ..
                } => {
                    if let Some(s) = st.base.iter_mut().find(|s| s.slot == session) {
                        s.acked = boundary;
                    }
                }
                Frame::Reshard { session, epoch, .. } => {
                    if let Some(s) = st.base.iter_mut().find(|s| s.slot == session) {
                        s.epoch = epoch;
                    }
                }
                Frame::CloseSession { session } => st.base.retain(|s| s.slot != session),
                Frame::Boundary { session, boundary } => {
                    st.ring_boundaries -= 1;
                    if let Some(s) = st.base.iter_mut().find(|s| s.slot == session) {
                        s.acked = boundary + 1;
                    }
                    if session == slot && boundary == b {
                        break;
                    }
                }
                _ => {}
            }
        }
        self.cv.notify_all();
    }

    fn is_closing(&self, session: u64) -> bool {
        self.state
            .lock()
            .expect("conn link poisoned")
            .closing
            .contains(&session)
    }

    /// Lowest restore boundary among base sessions (for failure
    /// reporting).
    fn restored_boundary(&self) -> u64 {
        let st = self.state.lock().expect("conn link poisoned");
        st.base.iter().map(|s| s.acked).min().unwrap_or(0)
    }

    /// Ask the worker for a heartbeat echo; fails when the link is
    /// parked — i.e. the worker crashed.
    fn probe(&self) -> io::Result<()> {
        let mut st = self.state.lock().expect("conn link poisoned");
        let st = &mut *st;
        let session = st.base.first().map_or(0, |s| s.slot);
        match st.writer.as_mut() {
            Some(writer) => {
                let sent = writer
                    .write_frame(&Frame::Heartbeat { session })
                    .and_then(|()| writer.flush());
                if sent.is_err() {
                    st.writer = None;
                }
                sent
            }
            None => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection link is down",
            )),
        }
    }

    /// Recovery: on a fresh post-handshake connection, re-open every
    /// base session at its acknowledged boundary (re-stamping its
    /// epoch), then replay the unacknowledged ring tail — which
    /// replays any in-flight swap in order. Returns the frame count
    /// replayed from the ring.
    fn reinstall(&self, mut writer: FrameWriter<Conn>, config: &QloveConfig) -> io::Result<usize> {
        let mut st = self.state.lock().expect("conn link poisoned");
        for s in &st.base {
            writer.write_frame(&Frame::OpenSession {
                session: s.slot,
                config: config.clone(),
                mode: WorkerMode::Shard,
            })?;
            writer.write_frame(&Frame::Restore {
                session: s.slot,
                boundary: s.acked,
                checkpoint: QloveSummary::default(),
            })?;
            if s.epoch > 0 {
                writer.write_frame(&Frame::Reshard {
                    session: s.slot,
                    boundary: s.acked,
                    epoch: s.epoch,
                })?;
            }
        }
        for frame in &st.ring {
            writer.write_frame(frame)?;
        }
        writer.flush()?;
        let replayed = st.ring.len();
        st.writer = Some(writer);
        Ok(replayed)
    }

    fn fail(&self) {
        let mut st = self.state.lock().expect("conn link poisoned");
        st.failed = true;
        st.writer = None;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Registry: dealer hands fresh connections' read halves to the collector
// ---------------------------------------------------------------------------

type ReadHalf = (FrameReader<BufReader<Conn>>, Conn);

struct Registry {
    state: Mutex<RegistryState>,
    cv: Condvar,
}

struct RegistryState {
    /// `Some` = live read half + breaker; `None` = the dealer tried to
    /// bring the connection up and failed (the collector treats that
    /// as a crash and runs ordinary recovery).
    entries: HashMap<usize, Option<ReadHalf>>,
    aborted: bool,
}

impl Registry {
    fn new() -> Self {
        Self {
            state: Mutex::new(RegistryState {
                entries: HashMap::new(),
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn deposit(&self, conn: usize, entry: Option<ReadHalf>) {
        let mut st = self.state.lock().expect("registry poisoned");
        st.entries.insert(conn, entry);
        self.cv.notify_all();
    }

    /// Wait (bounded) for the dealer to deposit connection `conn`.
    fn take(&self, conn: usize, deadline: Duration) -> io::Result<Option<ReadHalf>> {
        let mut st = self.state.lock().expect("registry poisoned");
        let end = Instant::now() + deadline;
        loop {
            if let Some(entry) = st.entries.remove(&conn) {
                return Ok(entry);
            }
            if st.aborted {
                return Err(io::Error::other("resharded run aborted"));
            }
            let now = Instant::now();
            if now >= end {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("connection {conn} was never established by the dealer"),
                ));
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, end - now)
                .expect("registry poisoned");
            st = guard;
        }
    }

    fn abort(&self) {
        let mut st = self.state.lock().expect("registry poisoned");
        st.aborted = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

struct Collector<'a, F> {
    config: &'a QloveConfig,
    policy: &'a RecoveryPolicy,
    links: &'a [ConnLink],
    readers: Vec<Option<FrameReader<BufReader<Conn>>>>,
    breakers: Vec<Option<Conn>>,
    registry: &'a Registry,
    connect: &'a Mutex<F>,
    restarts: Vec<u32>,
    journal: &'a EventJournal,
}

type Verdict = (FailureKind, u64, io::Error);

impl<F: FnMut(usize) -> io::Result<Conn>> Collector<'_, F> {
    /// Make sure `conn`'s read half is installed, fetching it from the
    /// registry for connections born mid-run.
    fn ensure_reader(&mut self, conn: usize) -> Result<(), Verdict> {
        if self.readers[conn].is_some() {
            return Ok(());
        }
        let deadline = self.policy.deadline.max(Duration::from_secs(30));
        match self.registry.take(conn, deadline) {
            Ok(Some((reader, breaker))) => {
                self.readers[conn] = Some(reader);
                self.breakers[conn] = Some(breaker);
                Ok(())
            }
            Ok(None) => Err((
                FailureKind::Crash,
                0,
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("worker connection {conn} never came up"),
                ),
            )),
            Err(e) => Err((FailureKind::Crash, 0, e)),
        }
    }

    /// Read one frame from `conn`, probing through read deadlines
    /// (same verdict protocol as the single-session supervisor).
    fn read_with_probe(&mut self, conn: usize) -> Result<Frame, Verdict> {
        self.ensure_reader(conn)?;
        let mut silent_since: Option<Stopwatch> = None;
        let mut probed = false;
        loop {
            let reader = self.readers[conn].as_mut().expect("reader just ensured");
            match reader.read_frame() {
                Ok(Frame::Heartbeat { .. }) => {
                    silent_since = None;
                    probed = false;
                }
                Ok(frame) => return Ok(frame),
                Err(e) if is_timeout(&e) => {
                    let since = *silent_since.get_or_insert_with(Stopwatch::start);
                    if probed {
                        return Err((FailureKind::Stall, since.elapsed_us(), e));
                    }
                    if self.links[conn].probe().is_err() {
                        return Err((FailureKind::Crash, since.elapsed_us(), e));
                    }
                    probed = true;
                }
                Err(e) => {
                    let detect_us = silent_since.map(|s| s.elapsed_us()).unwrap_or(0);
                    return Err((FailureKind::Crash, detect_us, e));
                }
            }
        }
    }

    /// One restart attempt: respawn, arm, handshake, base restore +
    /// ring replay (which re-executes any in-flight swap), swap the
    /// read half in.
    fn try_restart(&mut self, conn: usize) -> io::Result<usize> {
        let fresh = {
            let mut connect = self.connect.lock().expect("connect hook poisoned");
            connect(conn)?
        };
        self.policy.arm(&fresh)?;
        let breaker = fresh.try_clone()?;
        let (reader, writer) = hello_handshake(fresh)?;
        let replayed = self.links[conn].reinstall(writer, self.config)?;
        self.readers[conn] = Some(reader);
        self.breakers[conn] = Some(breaker);
        Ok(replayed)
    }

    /// Drive recovery of `conn` to completion or declare the run dead.
    /// Both the failure verdict and the terminal recovery record land
    /// in the run's event journal.
    fn recover(&mut self, conn: usize, verdict: Verdict) -> io::Result<()> {
        let (kind, detect_us, cause) = verdict;
        if let Some(b) = &self.breakers[conn] {
            let _ = b.shutdown();
        }
        let stall = kind == FailureKind::Stall;
        self.journal.emit(EventKind::Failure {
            domain: conn,
            boundary: self.links[conn].restored_boundary(),
            stall,
            detect_us,
        });
        let policy = self.policy;
        let (restarts, outcome) = drive_restarts(policy, conn as u64, self.restarts[conn], || {
            let restore = Stopwatch::start();
            let replayed = self.try_restart(conn)?;
            Ok((replayed, restore.elapsed_us()))
        });
        self.restarts[conn] = restarts;
        let (replayed, restore_us, recovered) = match outcome {
            Some((replayed, restore_us)) => (replayed, restore_us, true),
            None => (0, 0, false),
        };
        self.journal.emit(EventKind::Recovery {
            domain: conn,
            boundary: self.links[conn].restored_boundary(),
            stall,
            restarts,
            detect_us,
            restore_us,
            replay_us: 0,
            replayed_frames: replayed,
            recovered,
        });
        if recovered {
            Ok(())
        } else {
            Err(cause)
        }
    }

    /// Read (recovering as needed) until `slot` on `conn` delivers its
    /// summary for boundary `b` stamped with `epoch`, then acknowledge
    /// it. `CloseSession` acks for retired sessions on the same
    /// connection are skipped.
    fn expect_summary(
        &mut self,
        conn: usize,
        slot: u64,
        b: u64,
        epoch: u64,
    ) -> io::Result<QloveSummary> {
        loop {
            match self.read_with_probe(conn) {
                Ok(Frame::BoundarySummary {
                    session,
                    boundary,
                    epoch: got,
                    summary,
                }) if session == slot && boundary == b && got == epoch => {
                    self.links[conn].ack_through(slot, b);
                    return Ok(summary);
                }
                Ok(Frame::CloseSession { session }) if self.links[conn].is_closing(session) => {}
                Ok(other) => {
                    return Err(protocol(format!(
                        "expected summary for slot {slot} boundary {b} epoch {epoch}, \
                         got {other:?}"
                    )))
                }
                Err(verdict) => self.recover(conn, verdict)?,
            }
        }
    }

    /// Read (recovering as needed) until `conn` acknowledges shutdown.
    fn expect_shutdown_ack(&mut self, conn: usize) -> io::Result<()> {
        loop {
            match self.read_with_probe(conn) {
                Ok(Frame::Shutdown) => return Ok(()),
                Ok(Frame::CloseSession { session }) if self.links[conn].is_closing(session) => {}
                Ok(other) => return Err(protocol(format!("expected shutdown ack, got {other:?}"))),
                Err(verdict) => self.recover(conn, verdict)?,
            }
        }
    }

    /// Best-effort drain of a connection fully retired by a merge: its
    /// last needed summary is already merged, so its `CloseSession` and
    /// `Shutdown` acks are read for tidiness but a crash here cannot
    /// affect the answers and is deliberately ignored.
    fn drain_retired(&mut self, conn: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            let Some(reader) = self.readers[conn].as_mut() else {
                break;
            };
            match reader.read_frame() {
                Ok(Frame::Shutdown) => break,
                Ok(Frame::CloseSession { .. }) | Ok(Frame::Heartbeat { .. }) => {}
                Ok(_) | Err(_) => break,
            }
        }
        if let Some(b) = self.breakers[conn].take() {
            let _ = b.shutdown();
        }
        self.readers[conn] = None;
    }

    fn fail_all(&mut self) {
        for b in self.breakers.iter().flatten() {
            let _ = b.shutdown();
        }
        for link in self.links {
            link.fail();
        }
        self.registry.abort();
    }
}

// ---------------------------------------------------------------------------
// Dealer-side swap
// ---------------------------------------------------------------------------

/// Bring a fresh worker connection up: connect, arm deadlines, hello
/// handshake. Returns the read half + breaker for the registry and the
/// write half for the link.
fn open_fresh<F: FnMut(usize) -> io::Result<Conn>>(
    conn: usize,
    connect: &Mutex<F>,
    policy: &RecoveryPolicy,
) -> io::Result<(ReadHalf, FrameWriter<Conn>)> {
    let fresh = {
        let mut connect = connect.lock().expect("connect hook poisoned");
        connect(conn)?
    };
    policy.arm(&fresh)?;
    let breaker = fresh.try_clone()?;
    let (reader, writer) = hello_handshake(fresh)?;
    Ok(((reader, breaker), writer))
}

/// Execute the swap opening `epoch`, between dealing sub-window
/// `boundary - 1` and sub-window `boundary`.
#[allow(clippy::too_many_arguments)]
fn execute_swap<F: FnMut(usize) -> io::Result<Conn>>(
    epoch: u64,
    schedule: &ReshardSchedule,
    plan: &ConnPlan,
    links: &[ConnLink],
    config: &QloveConfig,
    policy: &RecoveryPolicy,
    registry: &Registry,
    connect: &Mutex<F>,
    open_conns: &mut HashSet<usize>,
) -> io::Result<ReshardEvent> {
    let b = schedule.from_boundary(epoch);
    let delta = schedule.delta(epoch).expect("epoch > 0 has a delta");
    let started = Stopwatch::start();
    let mut swap_frames = 0usize;
    let mut checkpoint_bytes = 0usize;

    // The parents' boundary checkpoints, run through the core
    // split/merge helpers. At a sub-window boundary a shard's state
    // has just been shipped, so these are empty here — but the path is
    // the general one: any state a checkpoint *did* carry would be
    // partitioned (split) or unioned (merge) into the successors.
    let parent = QloveSummary::default();
    let checkpoints: Vec<QloveSummary> = match delta.plan {
        ReshardPlan::Split { pivot, .. } => {
            let (lo, hi) = parent.split_at(pivot);
            vec![lo, hi]
        }
        ReshardPlan::Merge { .. } => {
            vec![parent
                .merged(&QloveSummary::default())
                .expect("merging empty checkpoints cannot overflow")]
        }
    };

    // 1. Retire the parents.
    for &p in &delta.retired {
        links[plan.conn_of[p]].deal(Frame::CloseSession { session: p as u64 })?;
        swap_frames += 1;
    }
    // 2. A merge's right-hand connection hosts no successor: shut it
    //    down entirely.
    #[allow(clippy::needless_range_loop)]
    for conn in 0..plan.conns() {
        if plan.retired_at[conn] == Some(b) {
            links[conn].deal(Frame::Shutdown)?;
            swap_frames += 1;
            open_conns.remove(&conn);
        }
    }
    // 3. Open + restore the successors.
    for (ns, checkpoint) in delta.created.iter().zip(checkpoints) {
        let conn = plan.conn_of[ns.slot];
        if plan.opened_at[conn] == b && open_conns.insert(conn) {
            // A fresh worker for this successor. Failure to bring it
            // up is not fatal here: the frames below are retained in
            // the (parked) link's ring, and the collector's ordinary
            // recovery path brings the connection up and replays them.
            match open_fresh(conn, connect, policy) {
                Ok((read_half, writer)) => {
                    links[conn].install_writer(writer);
                    registry.deposit(conn, Some(read_half));
                }
                Err(_) => registry.deposit(conn, None),
            }
        }
        checkpoint_bytes += checkpoint.to_bytes().len();
        links[conn].deal(Frame::OpenSession {
            session: ns.slot as u64,
            config: config.clone(),
            mode: WorkerMode::Shard,
        })?;
        links[conn].deal(Frame::Restore {
            session: ns.slot as u64,
            boundary: b,
            checkpoint,
        })?;
        links[conn].deal(Frame::Reshard {
            session: ns.slot as u64,
            boundary: b,
            epoch,
        })?;
        swap_frames += 3;
    }
    // 4. Stamp the new epoch on every surviving (unaffected) session.
    for &(_, slot) in schedule.table(epoch).bounds() {
        if delta.created.iter().any(|ns| ns.slot == slot) {
            continue;
        }
        links[plan.conn_of[slot]].deal(Frame::Reshard {
            session: slot as u64,
            boundary: b,
            epoch,
        })?;
        swap_frames += 1;
    }
    Ok(ReshardEvent {
        boundary: b,
        epoch,
        plan: delta.plan,
        pause_us: started.elapsed_us(),
        // Filled in by the dealer from its value frontier.
        paused_subwindows: 0,
        swap_frames,
        checkpoint_bytes,
    })
}

// ---------------------------------------------------------------------------
// The run
// ---------------------------------------------------------------------------

/// Answer **one logical window** from worker processes while applying
/// `specs` — live shard splits and merges — mid-window, under
/// supervision.
///
/// `conns` is the initial fleet (one connection per initial shard);
/// `span` steers the initial even key-range partition (values `>=
/// span` land in the top shard; routing never affects answers).
/// `connect(conn_index)` is called both to bring up the fresh worker a
/// split needs and to respawn a crashed worker under `policy` — for
/// process workers, typically spawn + `Conn::connect_retry`.
///
/// Answers — values, provenance, bounds, burst flags, and the
/// coordinator's trailing pending state — are **bit-identical** to a
/// sequential single-instance run and to the in-process reference
/// (`qlove_stream::parallel::run_resharded`), whatever the schedule,
/// and through any worker crash the policy can absorb — including a
/// crash in the middle of a swap, whose control frames are replayed
/// from the connection's ring.
///
/// # Panics
/// Panics when `conns` is empty or `config.period` is 0 (the same
/// contract as `run_supervised`).
#[allow(clippy::too_many_arguments)]
pub fn run_resharded<F>(
    config: &QloveConfig,
    coordinator: &mut Qlove,
    conns: Vec<Conn>,
    values: &[u64],
    span: u64,
    specs: &[ReshardSpec],
    policy: &RecoveryPolicy,
    connect: F,
) -> io::Result<ReshardRun>
where
    F: FnMut(usize) -> io::Result<Conn> + Send,
{
    let shards = conns.len();
    assert!(shards > 0, "need at least one shard");
    let period = config.period;
    assert!(period > 0, "need a positive sub-window period");
    let boundaries = values.len().div_ceil(period);

    let schedule = ReshardSchedule::build(shards, span, specs)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let plan = ConnPlan::build(&schedule, shards);

    // Links for every connection the schedule will ever use; the ones
    // beyond the initial fleet stay dormant (no writer) until their
    // swap brings them up.
    let links: Vec<ConnLink> = (0..plan.conns())
        .map(|conn| {
            let base = if conn < shards {
                vec![BaseSession {
                    slot: conn as u64,
                    acked: 0,
                    epoch: 0,
                }]
            } else {
                Vec::new()
            };
            ConnLink::new(base, policy.enabled())
        })
        .collect();

    // Bring the initial fleet up. The initial `OpenSession`s are *not*
    // ringed — the base state re-opens them on recovery.
    let mut readers: Vec<Option<FrameReader<BufReader<Conn>>>> =
        (0..plan.conns()).map(|_| None).collect();
    let mut breakers: Vec<Option<Conn>> = (0..plan.conns()).map(|_| None).collect();
    for (conn, c) in conns.into_iter().enumerate() {
        policy.arm(&c)?;
        breakers[conn] = Some(c.try_clone()?);
        let (reader, mut writer) = hello_handshake(c)?;
        writer.write_frame(&Frame::OpenSession {
            session: conn as u64,
            config: config.clone(),
            mode: WorkerMode::Shard,
        })?;
        writer.flush()?;
        readers[conn] = Some(reader);
        links[conn].install_writer(writer);
    }

    let registry = Registry::new();
    let connect = Mutex::new(connect);
    // One journal per run: the dealer's reshard/pause records and the
    // collector's failure/recovery records interleave in causal order.
    let journal = EventJournal::new();
    let mut collector = Collector {
        config,
        policy,
        links: &links,
        readers,
        breakers,
        registry: &registry,
        connect: &connect,
        restarts: vec![0; plan.conns()],
        journal: &journal,
    };

    let final_epoch = if boundaries == 0 {
        0
    } else {
        schedule.epoch_at(boundaries as u64 - 1)
    };

    let (answers, stats) = thread::scope(|scope| -> io::Result<_> {
        let links_ref = &links;
        let schedule_ref = &schedule;
        let plan_ref = &plan;
        let registry_ref = &registry;
        let connect_ref = &connect;
        let journal_ref = &journal;
        let dealer = scope.spawn(move || -> io::Result<()> {
            let mut bufs: Vec<Vec<u64>> = vec![Vec::new(); schedule_ref.slot_count()];
            let mut open_conns: HashSet<usize> = (0..shards).collect();
            let mut current_epoch = 0u64;
            for (b, chunk) in values.chunks(period).enumerate() {
                let target = schedule_ref.epoch_at(b as u64);
                while current_epoch < target {
                    current_epoch += 1;
                    let frontier_before = b * period;
                    let mut event = execute_swap(
                        current_epoch,
                        schedule_ref,
                        plan_ref,
                        links_ref,
                        config,
                        policy,
                        registry_ref,
                        connect_ref,
                        &mut open_conns,
                    )?;
                    // No values were dealt inside the swap, so the
                    // pause spans exactly the one inter-sub-window gap
                    // it started in.
                    event.paused_subwindows = ((b * period - frontier_before) / period + 1) as u64;
                    let (split, slot, pivot) = match event.plan {
                        ReshardPlan::Split { slot, pivot } => (true, slot, pivot),
                        ReshardPlan::Merge { left } => (false, left, 0),
                    };
                    journal_ref.emit(EventKind::Reshard {
                        boundary: event.boundary,
                        epoch: event.epoch,
                        split,
                        slot,
                        pivot,
                        swap_frames: event.swap_frames,
                        checkpoint_bytes: event.checkpoint_bytes,
                    });
                    journal_ref.emit(EventKind::Pause {
                        boundary: event.boundary,
                        pause_us: event.pause_us,
                        paused_subwindows: event.paused_subwindows as usize,
                    });
                }
                let table = schedule_ref.table(current_epoch);
                for &v in chunk {
                    let slot = table.route(v);
                    bufs[slot].push(v);
                    if bufs[slot].len() == BATCH {
                        links_ref[plan_ref.conn_of[slot]].deal(Frame::EventBatch {
                            session: slot as u64,
                            values: std::mem::take(&mut bufs[slot]),
                        })?;
                    }
                }
                for &(_, slot) in table.bounds() {
                    if !bufs[slot].is_empty() {
                        links_ref[plan_ref.conn_of[slot]].deal(Frame::EventBatch {
                            session: slot as u64,
                            values: std::mem::take(&mut bufs[slot]),
                        })?;
                    }
                    links_ref[plan_ref.conn_of[slot]].deal(Frame::Boundary {
                        session: slot as u64,
                        boundary: b as u64,
                    })?;
                }
            }
            let mut remaining: Vec<usize> = open_conns.into_iter().collect();
            remaining.sort_unstable();
            for conn in remaining {
                links_ref[conn].deal(Frame::Shutdown)?;
            }
            Ok(())
        });

        // Collector + double-buffered merger: group membership and the
        // expected epoch stamp are functions of the boundary.
        let mut drained_epoch = 0u64;
        let collect = |b: usize, group: &mut Vec<QloveSummary>| -> io::Result<()> {
            let epoch = schedule.epoch_at(b as u64);
            // Connections fully retired by now-reached merges are
            // drained once their last group is merged.
            while drained_epoch < epoch {
                drained_epoch += 1;
                let swap_b = schedule.from_boundary(drained_epoch);
                for conn in 0..plan.conns() {
                    if plan.retired_at[conn] == Some(swap_b) {
                        collector.drain_retired(conn);
                    }
                }
            }
            let mut total = 0u64;
            for &(_, slot) in schedule.table(epoch).bounds() {
                let summary =
                    collector.expect_summary(plan.conn_of[slot], slot as u64, b as u64, epoch)?;
                total += summary.total();
                group.push(summary);
            }
            let expected = (values.len() - b * period).min(period) as u64;
            if total != expected {
                return Err(protocol(format!(
                    "boundary {b}: summaries cover {total} elements, dealt {expected}"
                )));
            }
            Ok(())
        };
        let merged = coordinate_pipelined(coordinator, boundaries, collect);

        let finished = merged.and_then(|ok| {
            // Confirm shutdown on every connection alive at the end
            // (fully-retired ones were drained at their swap).
            for conn in 0..plan.conns() {
                let opened = plan.opened_at[conn] == 0 || plan.opened_at[conn] < boundaries as u64;
                let retired = plan
                    .retired_at
                    .get(conn)
                    .copied()
                    .flatten()
                    .is_some_and(|rb| rb < boundaries as u64);
                if opened && !retired {
                    collector.expect_shutdown_ack(conn)?;
                }
            }
            Ok(ok)
        });
        if finished.is_err() {
            collector.fail_all();
        }
        let dealt = join_io(dealer, "dealer");
        let (answers, stats) = finished?;
        dealt?;
        Ok((answers, stats))
    })?;
    let _ = final_epoch; // membership is derived per boundary above
    Ok(ReshardRun {
        answers,
        stats,
        failures: failures_view(&journal),
        events: reshard_events_view(&journal),
        journal,
    })
}

#[cfg(test)]
#[cfg(unix)]
mod tests {
    use super::*;
    use crate::worker::serve_stream;
    use qlove_core::Backend;
    use qlove_stream::parallel::ReshardPlan;
    use std::os::unix::net::UnixStream;
    use std::sync::Mutex as StdMutex;
    use std::thread::JoinHandle;

    fn config(backend: Backend) -> QloveConfig {
        QloveConfig::new(&[0.5, 0.9], 400, 50).backend(backend)
    }

    fn stream(seed: u64, n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| (i.wrapping_mul(2654435761).wrapping_add(seed * 7919)) % 997)
            .collect()
    }

    fn sequential(cfg: &QloveConfig, data: &[u64]) -> (Vec<QloveAnswer>, Qlove) {
        let mut op = Qlove::new(cfg.clone());
        let answers = data.iter().filter_map(|&v| op.push_detailed(v)).collect();
        (answers, op)
    }

    fn uds_worker(handles: &StdMutex<Vec<JoinHandle<()>>>) -> io::Result<Conn> {
        let (ours, theirs) = UnixStream::pair()?;
        let h = std::thread::spawn(move || {
            let _ = serve_stream(Conn::Unix(theirs));
        });
        handles.lock().unwrap().push(h);
        Ok(Conn::Unix(ours))
    }

    #[test]
    fn conn_plan_follows_the_hosting_convention() {
        let specs = [
            ReshardSpec {
                boundary: 2,
                plan: ReshardPlan::Split {
                    slot: 0,
                    pivot: 250,
                },
            },
            ReshardSpec {
                boundary: 5,
                plan: ReshardPlan::Merge { left: 2 },
            },
        ];
        let schedule = ReshardSchedule::build(2, 1000, &specs).unwrap();
        let plan = ConnPlan::build(&schedule, 2);
        // Split of slot 0 (conn 0): low half (slot 2) stays on conn 0,
        // high half (slot 3) gets fresh conn 2.
        assert_eq!(plan.conn_of, vec![0, 1, 0, 2, 0]);
        assert_eq!(plan.opened_at, vec![0, 0, 2]);
        // Merge of slots 2 and 3: successor (slot 4) on slot 2's conn
        // (conn 0); slot 3's conn (conn 2) fully retired at boundary 5.
        assert_eq!(plan.retired_at, vec![None, None, Some(5)]);
    }

    #[test]
    fn split_and_merge_over_uds_are_bit_identical() {
        let data = stream(3, 430); // 9 boundaries, last one partial
        for backend in [Backend::Tree, Backend::Dense] {
            let cfg = config(backend);
            let (want, single) = sequential(&cfg, &data);
            for specs in [
                vec![ReshardSpec {
                    boundary: 3,
                    plan: ReshardPlan::Split {
                        slot: 1,
                        pivot: 700,
                    },
                }],
                vec![ReshardSpec {
                    boundary: 4,
                    plan: ReshardPlan::Merge { left: 0 },
                }],
                vec![
                    ReshardSpec {
                        boundary: 2,
                        plan: ReshardPlan::Split {
                            slot: 0,
                            pivot: 200,
                        },
                    },
                    ReshardSpec {
                        boundary: 6,
                        plan: ReshardPlan::Merge { left: 2 },
                    },
                ],
            ] {
                let handles = StdMutex::new(Vec::new());
                let conns: Vec<Conn> = (0..2).map(|_| uds_worker(&handles).unwrap()).collect();
                let mut coordinator = Qlove::new(cfg.clone());
                let run = run_resharded(
                    &cfg,
                    &mut coordinator,
                    conns,
                    &data,
                    997,
                    &specs,
                    &RecoveryPolicy::disabled(),
                    |_conn| uds_worker(&handles),
                )
                .expect("resharded run");
                assert_eq!(run.answers, want, "{backend:?} {specs:?}");
                assert_eq!(coordinator.pending(), single.pending());
                assert!(run.failures.is_empty());
                assert_eq!(run.events.len(), specs.len());
                for (event, spec) in run.events.iter().zip(&specs) {
                    assert_eq!(event.boundary, spec.boundary);
                    assert_eq!(event.plan, spec.plan);
                    assert_eq!(
                        event.paused_subwindows, 1,
                        "ingest pause must be bounded by one sub-window"
                    );
                    assert!(event.swap_frames > 0);
                }
                for h in handles.into_inner().unwrap() {
                    h.join().expect("worker thread panicked");
                }
            }
        }
    }

    #[test]
    fn empty_schedule_degenerates_to_a_plain_supervised_run() {
        let cfg = config(Backend::Dense);
        let data = stream(7, 430);
        let (want, _) = sequential(&cfg, &data);
        let handles = StdMutex::new(Vec::new());
        let conns: Vec<Conn> = (0..3).map(|_| uds_worker(&handles).unwrap()).collect();
        let mut coordinator = Qlove::new(cfg.clone());
        let run = run_resharded(
            &cfg,
            &mut coordinator,
            conns,
            &data,
            997,
            &[],
            &RecoveryPolicy::disabled(),
            |_conn| uds_worker(&handles),
        )
        .unwrap();
        assert_eq!(run.answers, want);
        assert!(run.events.is_empty());
        for h in handles.into_inner().unwrap() {
            h.join().expect("worker thread panicked");
        }
    }

    #[test]
    fn rejects_an_invalid_schedule() {
        let cfg = config(Backend::Tree);
        let handles = StdMutex::new(Vec::new());
        let conns: Vec<Conn> = (0..2).map(|_| uds_worker(&handles).unwrap()).collect();
        let mut coordinator = Qlove::new(cfg.clone());
        let err = run_resharded(
            &cfg,
            &mut coordinator,
            conns,
            &[1, 2, 3],
            997,
            &[ReshardSpec {
                boundary: 0,
                plan: ReshardPlan::Merge { left: 0 },
            }],
            &RecoveryPolicy::disabled(),
            |_conn| uds_worker(&handles),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Workers never handshook past hello; dropping the conns ends
        // their threads.
        for h in handles.into_inner().unwrap() {
            h.join().expect("worker thread panicked");
        }
    }
}
