//! The framed QLVT wire protocol: length-prefixed, versioned frames
//! carrying the QLVS summary codec plus the control messages a
//! distributed session needs.
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────┬──────────┬──────────────────────┐
//! │ length u32 │ type  u8 │ payload (length B)   │  little-endian
//! └────────────┴──────────┴──────────────────────┘
//! ```
//!
//! | type | frame             | payload                                              |
//! |------|-------------------|------------------------------------------------------|
//! | 1    | `Hello`           | magic `"QLVT"`, version u8, role u8                  |
//! | 2    | `OpenSession`     | varint session id, config + mode (varints/f64 bits)  |
//! | 3    | `EventBatch`      | varint session id, varint count, then value varints  |
//! | 4    | `Boundary`        | varint session id, varint boundary index             |
//! | 5    | `BoundarySummary` | varint session, boundary, epoch, then one QLVS frame |
//! | 6    | `Answer`          | varint session id, varint eval index, `QloveAnswer`  |
//! | 7    | `Shutdown`        | empty                                                |
//! | 8    | `Heartbeat`       | varint session id                                    |
//! | 9    | `Restore`         | varint session id, varint boundary, QLVS checkpoint  |
//! | 10   | `CloseSession`    | varint session id                                    |
//! | 11   | `Reshard`         | varint session id, varint boundary, varint epoch     |
//!
//! Since protocol v2 a single connection multiplexes many independent
//! sessions: every post-handshake frame except `Shutdown` leads with a
//! varint session ID, sessions are opened with `OpenSession` (each with
//! its own config, backend, and mode) and retired with a `CloseSession`
//! exchange, while `Hello` and `Shutdown` stay connection-level.
//!
//! ## Decode contract
//!
//! Mirrors the QLVS fuzz contract from `qlove_wire`: malformed input of
//! any shape — truncated frames, unknown types, corrupt counts,
//! non-canonical payloads, trailing bytes — surfaces as an
//! `InvalidData`/`UnexpectedEof` error, **never** a panic. Declared
//! lengths are capped ([`MAX_FRAME_LEN`]) and counts are checked
//! against the bytes actually present before any allocation, so a
//! hostile peer cannot trigger an OOM. Decoded configs are fully
//! validated here (the checks `QloveConfig::validate` would assert) so
//! a worker can construct an operator from a wire config without
//! risking a panic on malicious input.

use qlove_core::{AnswerSource, Backend, FewKConfig, QloveAnswer, QloveConfig, QloveSummary};
use qlove_stats::error_bound::CltBound;
use qlove_wire::{read_uvarint, write_uvarint};
use std::io::{self, Read, Write};

/// Connection magic carried by every [`Frame::Hello`].
pub const PROTOCOL_MAGIC: &[u8; 4] = b"QLVT";
/// Current protocol version. v2 made every post-handshake frame
/// session-scoped (multi-session connections); v3 added live
/// resharding (the `Reshard` frame and the epoch stamp on
/// `BoundarySummary`); v4 added the shared-memory data plane
/// (`AttachShm`/`ShmSummary`/`ShmAck`); v5 added on-demand worker
/// stats scraping (`StatsRequest`/`StatsReport`). Older peers are
/// rejected at the hello exchange.
pub const PROTOCOL_VERSION: u8 = 5;
/// Hard cap on the ring path carried by [`Frame::AttachShm`] — one
/// filesystem path, so `PATH_MAX`-ish is plenty and a corrupt length
/// cannot force a large allocation.
pub const MAX_SHM_PATH_LEN: usize = 4096;
/// Hard cap on a frame's declared payload length. An `EventBatch` of
/// the executor's batch size costs at most ~41 KB; 16 MiB leaves room
/// for huge unquantized summaries while bounding what a corrupt length
/// can make the reader allocate.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Which side of a session a peer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Deals events, collects summaries, merges.
    Coordinator,
    /// Ingests dealt events, ships summaries (or answers).
    Worker,
}

/// What a worker process runs behind the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerMode {
    /// A `QloveShard`: Level-1 accumulation only; ships a
    /// [`Frame::BoundarySummary`] for every [`Frame::Boundary`].
    Shard,
    /// A full `Qlove` operator: self-schedules boundaries and streams
    /// every evaluation back as a [`Frame::Answer`].
    Operator,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session opener, sent by both sides: protocol magic + version +
    /// the sender's role.
    Hello {
        /// Protocol version the sender speaks.
        version: u8,
        /// The sender's role.
        role: Role,
    },
    /// Coordinator → worker: open an independent session on this
    /// connection, with its own configuration, backend, and mode. A
    /// connection can hold any number of concurrent sessions; opening a
    /// session ID that is already open is a protocol error.
    OpenSession {
        /// Connection-unique session ID carried by every frame of this
        /// session.
        session: u64,
        /// Full operator configuration (shard and coordinator must
        /// agree on quantization, backend, and the window schedule).
        config: QloveConfig,
        /// What to run behind the socket for this session.
        mode: WorkerMode,
    },
    /// Coordinator → worker: a batch of dealt telemetry values for one
    /// session. Batches never straddle a sub-window boundary in shard
    /// mode.
    EventBatch {
        /// Which session these values belong to.
        session: u64,
        /// The dealt values.
        values: Vec<u64>,
    },
    /// Coordinator → worker (shard mode): the session's logical stream
    /// reached sub-window boundary `boundary`; snapshot and ship the
    /// partial sub-window now.
    Boundary {
        /// Which session reached the boundary.
        session: u64,
        /// 0-based boundary index, for sequence checking.
        boundary: u64,
    },
    /// Worker → coordinator (shard mode): the partial sub-window
    /// accumulated since the previous boundary, as a QLVS multiset.
    BoundarySummary {
        /// Which session this summary belongs to.
        session: u64,
        /// Which boundary this summary closes (must match the
        /// triggering [`Frame::Boundary`]).
        boundary: u64,
        /// The reshard epoch the session was stamped with by the last
        /// [`Frame::Reshard`] (0 until one arrives — i.e. always 0
        /// outside resharded runs). The collector refuses to assemble
        /// a boundary group from mixed epochs, so summaries from
        /// before and after an elastic swap can never blend.
        epoch: u64,
        /// The shard's partial sub-window.
        summary: QloveSummary,
    },
    /// Worker → coordinator (operator mode): one window evaluation.
    Answer {
        /// Which session produced the evaluation.
        session: u64,
        /// 0-based evaluation index, for sequence checking.
        boundary: u64,
        /// The evaluation, bit-identical to a local run.
        answer: QloveAnswer,
    },
    /// Connection end. The coordinator sends it when every stream is
    /// exhausted; the worker drains all remaining sessions,
    /// acknowledges with its own `Shutdown`, and returns. Sessions
    /// still open are finalized implicitly.
    Shutdown,
    /// Liveness probe, either direction. A worker that receives one
    /// echoes a `Heartbeat` with the same session ID immediately — the
    /// coordinator's failure detector counts any frame as progress, so
    /// an echo arriving within the probe deadline proves the worker's
    /// event loop is alive even when no summaries are due. Because it
    /// probes the shared event loop, the echo does not require the
    /// session to exist (recovery may probe before reopening).
    Heartbeat {
        /// Session the prober is waiting on (informational; echoed
        /// verbatim).
        session: u64,
    },
    /// Coordinator → worker (shard mode): resume a recovered session.
    /// Legal only as the first frame of a session after its
    /// `OpenSession`: the worker sets that session's boundary counter
    /// to `boundary` (the next boundary it should expect) and merges
    /// `checkpoint` into its fresh store as mid-sub-window state. The
    /// coordinator then replays the unacknowledged tail of dealt
    /// frames, which rebuilds the rest of the session's state exactly
    /// (multiset accumulation is order-insensitive), so recovered
    /// answers stay bit-identical. Only the failed session is restored;
    /// other sessions on a shared connection are untouched.
    ///
    /// With boundary-grained acknowledgement the checkpoint at the last
    /// acked boundary is the empty multiset (shard state resets at
    /// every `take_summary`); the field exists — and the worker honors
    /// arbitrary checkpoints — so finer-grained checkpointing (e.g.
    /// live resharding) can restore mid-sub-window state over the same
    /// frame.
    Restore {
        /// Which session to restore.
        session: u64,
        /// Next boundary index the recovered session should expect.
        boundary: u64,
        /// Mid-sub-window state to merge into the fresh shard, as QLVS.
        checkpoint: QloveSummary,
    },
    /// Session end, both directions. The coordinator sends one when a
    /// session's stream is exhausted; the worker drains that session's
    /// pending input, ships any responses still due, acknowledges with
    /// its own `CloseSession`, and frees the slot — while every other
    /// session on the connection keeps running.
    CloseSession {
        /// Which session to retire.
        session: u64,
    },
    /// Coordinator → worker (shard mode): an elastic reshard of the
    /// dealt key space takes effect for this session at sub-window
    /// `boundary` — stamp every summary from that boundary on with
    /// `epoch`. Sent to *every* surviving session when the dealer swaps
    /// its routing table (and replayed from the ring or re-synthesized
    /// during recovery), so a boundary group's members always agree on
    /// the epoch and the collector can tell pre- from post-swap groups
    /// apart. The plan itself (which ranges split or merged) stays
    /// coordinator-local: workers only ever see sessions and epochs.
    Reshard {
        /// Which session the epoch applies to.
        session: u64,
        /// First boundary whose summary carries the new epoch; must be
        /// the session's next expected boundary (sequence check).
        boundary: u64,
        /// The new reshard epoch (monotonically increasing per run).
        epoch: u64,
    },
    /// Coordinator → worker (`shm:` connections only): a summary ring
    /// is mapped at `path`; publish boundary summaries through it
    /// instead of inline [`Frame::BoundarySummary`] payloads.
    /// Connection-scoped — one ring serves every session on the
    /// connection. A worker that cannot open the ring simply keeps
    /// sending inline summaries; the coordinator accepts both.
    AttachShm {
        /// Filesystem path of the ring file created by the
        /// coordinator (UTF-8, at most [`MAX_SHM_PATH_LEN`] bytes).
        path: String,
        /// Number of slots in the ring.
        slots: u64,
        /// Per-slot row capacity.
        cap: u64,
    },
    /// Worker → coordinator: the summary for `boundary` was published
    /// into ring slot `slot`; fold it straight out of the map. Replaces
    /// the inline [`Frame::BoundarySummary`] when a ring is attached.
    ShmSummary {
        /// Which session this summary belongs to.
        session: u64,
        /// Which boundary this summary closes.
        boundary: u64,
        /// The session's reshard epoch (same contract as
        /// [`Frame::BoundarySummary::epoch`]).
        epoch: u64,
        /// Ring slot holding the rows.
        slot: u64,
    },
    /// Coordinator → worker: the rows in `slot` have been folded; the
    /// slot may be reused for a later boundary.
    ShmAck {
        /// Which session the acknowledged summary belonged to.
        session: u64,
        /// The freed ring slot.
        slot: u64,
    },
    /// Coordinator → worker (v5): report the named session's ingest
    /// counters now. Like [`Frame::Heartbeat`], the worker answers
    /// regardless of whether the session exists (all-zero counters for
    /// an unknown session), so a scrape can never deadlock against a
    /// session that already closed.
    StatsRequest {
        /// Session to report on.
        session: u64,
    },
    /// Worker → coordinator (v5): point-in-time ingest counters for
    /// one session, answering a [`Frame::StatsRequest`]. Purely
    /// observational — the coordinator folds these into its metrics
    /// registry; they never influence routing or merging.
    StatsReport {
        /// Session the counters describe.
        session: u64,
        /// `EventBatch` frames ingested so far.
        batches: u64,
        /// Telemetry values ingested so far.
        events: u64,
        /// Boundaries snapshot (shard mode) or self-scheduled
        /// (operator mode) so far.
        boundaries: u64,
        /// Responses (summaries or answers) shipped so far.
        responses: u64,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::OpenSession { .. } => 2,
            Frame::EventBatch { .. } => 3,
            Frame::Boundary { .. } => 4,
            Frame::BoundarySummary { .. } => 5,
            Frame::Answer { .. } => 6,
            Frame::Shutdown => 7,
            Frame::Heartbeat { .. } => 8,
            Frame::Restore { .. } => 9,
            Frame::CloseSession { .. } => 10,
            Frame::Reshard { .. } => 11,
            Frame::AttachShm { .. } => 12,
            Frame::ShmSummary { .. } => 13,
            Frame::ShmAck { .. } => 14,
            Frame::StatsRequest { .. } => 15,
            Frame::StatsReport { .. } => 16,
        }
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---- payload primitives ---------------------------------------------------

fn write_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_f64(data: &mut &[u8]) -> io::Result<f64> {
    let Some((bytes, rest)) = data.split_first_chunk::<8>() else {
        return Err(bad("truncated f64"));
    };
    *data = rest;
    Ok(f64::from_le_bytes(*bytes))
}

fn read_varint(data: &mut &[u8], what: &str) -> io::Result<u64> {
    read_uvarint(data).ok_or_else(|| bad(format!("truncated {what}")))
}

/// Read a count that prefixes per-item payload of at least
/// `min_item_bytes` bytes: rejects counts the remaining payload cannot
/// possibly hold, before any allocation.
fn read_count(data: &mut &[u8], min_item_bytes: usize, what: &str) -> io::Result<usize> {
    let count = read_varint(data, what)?;
    if count > (data.len() / min_item_bytes.max(1)) as u64 {
        return Err(bad(format!("{what} exceeds payload")));
    }
    // The bound above already caps `count` by the payload length, but a
    // checked conversion keeps the no-narrowing contract explicit (and
    // airtight if the bound ever changes) on 16/32-bit targets.
    usize::try_from(count).map_err(|_| bad(format!("{what} overflows usize")))
}

// ---- config codec ---------------------------------------------------------

fn encode_config(buf: &mut Vec<u8>, config: &QloveConfig, mode: WorkerMode) {
    buf.push(match mode {
        WorkerMode::Shard => 0,
        WorkerMode::Operator => 1,
    });
    write_uvarint(buf, config.window as u64);
    write_uvarint(buf, config.period as u64);
    // Option<u32> as a biased varint: 0 = None, d+1 = Some(d).
    write_uvarint(buf, config.sig_digits.map_or(0, |d| u64::from(d) + 1));
    buf.push(match config.backend {
        Backend::Auto => 0,
        Backend::Tree => 1,
        Backend::Dense => 2,
    });
    match &config.fewk {
        None => buf.push(0),
        Some(f) => {
            buf.push(1);
            write_f64(buf, f.topk_fraction);
            write_f64(buf, f.samplek_fraction);
            write_f64(buf, f.ts);
            write_f64(buf, f.burst_alpha);
            write_f64(buf, f.min_phi);
        }
    }
    write_uvarint(buf, config.phis.len() as u64);
    for &phi in &config.phis {
        write_f64(buf, phi);
    }
}

/// Decode and validate a wire config. Performs every check
/// `QloveConfig::validate` asserts, as *errors*: the returned config is
/// guaranteed to construct an operator without panicking.
fn decode_config(data: &mut &[u8]) -> io::Result<(QloveConfig, WorkerMode)> {
    let mode = match data.split_first() {
        Some((&0, rest)) => {
            *data = rest;
            WorkerMode::Shard
        }
        Some((&1, rest)) => {
            *data = rest;
            WorkerMode::Operator
        }
        Some((&m, _)) => return Err(bad(format!("unknown worker mode {m}"))),
        None => return Err(bad("truncated config")),
    };
    let raw_window = read_varint(data, "config window")?;
    let raw_period = read_varint(data, "config period")?;
    if raw_period == 0 || raw_window < raw_period || raw_window % raw_period != 0 {
        return Err(bad("config window must be a positive multiple of period"));
    }
    let window = usize::try_from(raw_window).map_err(|_| bad("config window overflows usize"))?;
    let period = usize::try_from(raw_period).map_err(|_| bad("config period overflows usize"))?;
    let sig_digits = match read_varint(data, "config sig_digits")? {
        0 => None,
        biased => match u32::try_from(biased - 1) {
            Ok(d) if d > 0 => Some(d),
            _ => return Err(bad("config sig_digits out of range")),
        },
    };
    let backend = match data.split_first() {
        Some((&0, rest)) => {
            *data = rest;
            Backend::Auto
        }
        Some((&1, rest)) => {
            *data = rest;
            Backend::Tree
        }
        Some((&2, rest)) => {
            *data = rest;
            Backend::Dense
        }
        Some((&b, _)) => return Err(bad(format!("unknown backend {b}"))),
        None => return Err(bad("truncated config")),
    };
    if backend == Backend::Dense {
        match sig_digits {
            Some(d) if d <= qlove_freqstore::DenseFreqStore::MAX_SIG_DIGITS => {}
            _ => return Err(bad("dense backend requires narrow quantization")),
        }
    }
    let fewk = match data.split_first() {
        Some((&0, rest)) => {
            *data = rest;
            None
        }
        Some((&1, rest)) => {
            *data = rest;
            let topk_fraction = read_f64(data)?;
            let samplek_fraction = read_f64(data)?;
            let ts = read_f64(data)?;
            let burst_alpha = read_f64(data)?;
            let min_phi = read_f64(data)?;
            // NaN fails every range check below (each comparison is
            // written positively, so an incomparable value reads as
            // out-of-range), which means a corrupt bit pattern cannot
            // smuggle a panic into validate().
            let in_range = (0.0..=1.0).contains(&topk_fraction)
                && (0.0..=1.0).contains(&samplek_fraction)
                && ts >= 0.0
                && burst_alpha > 0.0
                && burst_alpha < 1.0
                && (0.5..=1.0).contains(&min_phi);
            if !in_range {
                return Err(bad("config few-k parameters out of range"));
            }
            Some(FewKConfig {
                topk_fraction,
                samplek_fraction,
                ts,
                burst_alpha,
                min_phi,
            })
        }
        Some((&f, _)) => return Err(bad(format!("unknown few-k tag {f}"))),
        None => return Err(bad("truncated config")),
    };
    let phi_count = read_count(data, 8, "config phi count")?;
    if phi_count == 0 {
        return Err(bad("config needs at least one quantile"));
    }
    let mut phis = Vec::with_capacity(phi_count);
    for _ in 0..phi_count {
        let phi = read_f64(data)?;
        if !(0.0..=1.0).contains(&phi) {
            return Err(bad("config quantile fraction out of [0, 1]"));
        }
        phis.push(phi);
    }
    let config = QloveConfig {
        phis,
        window,
        period,
        sig_digits,
        fewk,
        backend,
    };
    Ok((config, mode))
}

// ---- answer codec ---------------------------------------------------------

fn encode_answer(buf: &mut Vec<u8>, answer: &QloveAnswer) {
    debug_assert_eq!(answer.values.len(), answer.sources.len());
    debug_assert_eq!(answer.values.len(), answer.bounds.len());
    write_uvarint(buf, answer.values.len() as u64);
    for &v in &answer.values {
        write_uvarint(buf, v);
    }
    for source in &answer.sources {
        buf.push(match source {
            AnswerSource::Level2 => 0,
            AnswerSource::TopK => 1,
            AnswerSource::SampleK => 2,
        });
    }
    for bound in &answer.bounds {
        match bound {
            None => buf.push(0),
            Some(b) => {
                buf.push(1);
                write_f64(buf, b.half_width);
                write_f64(buf, b.confidence);
            }
        }
    }
    buf.push(u8::from(answer.bursty));
}

fn decode_answer(data: &mut &[u8]) -> io::Result<QloveAnswer> {
    let l = read_count(data, 1, "answer quantile count")?;
    let mut values = Vec::with_capacity(l);
    for _ in 0..l {
        values.push(read_varint(data, "answer value")?);
    }
    let mut sources = Vec::with_capacity(l);
    for _ in 0..l {
        sources.push(match data.split_first() {
            Some((&0, rest)) => {
                *data = rest;
                AnswerSource::Level2
            }
            Some((&1, rest)) => {
                *data = rest;
                AnswerSource::TopK
            }
            Some((&2, rest)) => {
                *data = rest;
                AnswerSource::SampleK
            }
            Some((&s, _)) => return Err(bad(format!("unknown answer source {s}"))),
            None => return Err(bad("truncated answer sources")),
        });
    }
    let mut bounds = Vec::with_capacity(l);
    for _ in 0..l {
        bounds.push(match data.split_first() {
            Some((&0, rest)) => {
                *data = rest;
                None
            }
            Some((&1, rest)) => {
                *data = rest;
                let half_width = read_f64(data)?;
                let confidence = read_f64(data)?;
                Some(CltBound {
                    half_width,
                    confidence,
                })
            }
            Some((&t, _)) => return Err(bad(format!("unknown bound tag {t}"))),
            None => return Err(bad("truncated answer bounds")),
        });
    }
    let bursty = match data.split_first() {
        Some((&0, rest)) => {
            *data = rest;
            false
        }
        Some((&1, rest)) => {
            *data = rest;
            true
        }
        Some((&b, _)) => return Err(bad(format!("bad bursty flag {b}"))),
        None => return Err(bad("truncated answer flag")),
    };
    Ok(QloveAnswer {
        values,
        sources,
        bounds,
        bursty,
    })
}

// ---- frame codec ----------------------------------------------------------

/// Encode `frame`'s payload into `buf` (appended, not cleared). The
/// length/type header is the [`FrameWriter`]'s job.
fn encode_payload(buf: &mut Vec<u8>, frame: &Frame) {
    match frame {
        Frame::Hello { version, role } => {
            buf.extend_from_slice(PROTOCOL_MAGIC);
            buf.push(*version);
            buf.push(match role {
                Role::Coordinator => 0,
                Role::Worker => 1,
            });
        }
        Frame::OpenSession {
            session,
            config,
            mode,
        } => {
            write_uvarint(buf, *session);
            encode_config(buf, config, *mode);
        }
        Frame::EventBatch { session, values } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, values.len() as u64);
            for &v in values {
                write_uvarint(buf, v);
            }
        }
        Frame::Boundary { session, boundary } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *boundary);
        }
        Frame::BoundarySummary {
            session,
            boundary,
            epoch,
            summary,
        } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *boundary);
            write_uvarint(buf, *epoch);
            qlove_wire::encode_summary(summary.counts(), buf);
        }
        Frame::Answer {
            session,
            boundary,
            answer,
        } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *boundary);
            encode_answer(buf, answer);
        }
        Frame::Shutdown => {}
        Frame::Heartbeat { session } => write_uvarint(buf, *session),
        Frame::Restore {
            session,
            boundary,
            checkpoint,
        } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *boundary);
            qlove_wire::encode_summary(checkpoint.counts(), buf);
        }
        Frame::CloseSession { session } => write_uvarint(buf, *session),
        Frame::Reshard {
            session,
            boundary,
            epoch,
        } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *boundary);
            write_uvarint(buf, *epoch);
        }
        Frame::AttachShm { path, slots, cap } => {
            write_uvarint(buf, path.len() as u64);
            buf.extend_from_slice(path.as_bytes());
            write_uvarint(buf, *slots);
            write_uvarint(buf, *cap);
        }
        Frame::ShmSummary {
            session,
            boundary,
            epoch,
            slot,
        } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *boundary);
            write_uvarint(buf, *epoch);
            write_uvarint(buf, *slot);
        }
        Frame::ShmAck { session, slot } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *slot);
        }
        Frame::StatsRequest { session } => write_uvarint(buf, *session),
        Frame::StatsReport {
            session,
            batches,
            events,
            boundaries,
            responses,
        } => {
            write_uvarint(buf, *session);
            write_uvarint(buf, *batches);
            write_uvarint(buf, *events);
            write_uvarint(buf, *boundaries);
            write_uvarint(buf, *responses);
        }
    }
}

/// Decode one frame from its type byte and payload. Every malformed
/// input returns an error; nothing panics. Exposed so fuzz tests (and
/// alternative readers) can drive the decoder directly.
pub fn decode_frame(frame_type: u8, mut payload: &[u8]) -> io::Result<Frame> {
    let data = &mut payload;
    let frame = match frame_type {
        1 => {
            let Some((magic, rest)) = data.split_first_chunk::<4>() else {
                return Err(bad("truncated hello"));
            };
            *data = rest;
            if magic != PROTOCOL_MAGIC {
                return Err(bad("not a QLVT hello"));
            }
            let (version, role) = match *data {
                [version, role_byte] => (
                    *version,
                    match role_byte {
                        0 => Role::Coordinator,
                        1 => Role::Worker,
                        other => return Err(bad(format!("unknown role {other}"))),
                    },
                ),
                _ => return Err(bad("malformed hello")),
            };
            *data = &[];
            Frame::Hello { version, role }
        }
        2 => {
            let session = read_varint(data, "session id")?;
            let (config, mode) = decode_config(data)?;
            Frame::OpenSession {
                session,
                config,
                mode,
            }
        }
        3 => {
            let session = read_varint(data, "session id")?;
            let count = read_count(data, 1, "event batch count")?;
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(read_varint(data, "event value")?);
            }
            Frame::EventBatch { session, values }
        }
        4 => Frame::Boundary {
            session: read_varint(data, "session id")?,
            boundary: read_varint(data, "boundary index")?,
        },
        5 => {
            let session = read_varint(data, "session id")?;
            let boundary = read_varint(data, "boundary index")?;
            let epoch = read_varint(data, "reshard epoch")?;
            let summary = QloveSummary::from_bytes(data)?;
            *data = &[];
            Frame::BoundarySummary {
                session,
                boundary,
                epoch,
                summary,
            }
        }
        6 => {
            let session = read_varint(data, "session id")?;
            let boundary = read_varint(data, "answer index")?;
            let answer = decode_answer(data)?;
            Frame::Answer {
                session,
                boundary,
                answer,
            }
        }
        7 => Frame::Shutdown,
        8 => Frame::Heartbeat {
            session: read_varint(data, "session id")?,
        },
        9 => {
            let session = read_varint(data, "session id")?;
            let boundary = read_varint(data, "restore boundary index")?;
            let checkpoint = QloveSummary::from_bytes(data)?;
            *data = &[];
            Frame::Restore {
                session,
                boundary,
                checkpoint,
            }
        }
        10 => Frame::CloseSession {
            session: read_varint(data, "session id")?,
        },
        11 => Frame::Reshard {
            session: read_varint(data, "session id")?,
            boundary: read_varint(data, "reshard boundary index")?,
            epoch: read_varint(data, "reshard epoch")?,
        },
        12 => {
            let len = read_varint(data, "shm path length")? as usize;
            if len > MAX_SHM_PATH_LEN {
                return Err(bad(format!("shm path length {len} exceeds cap")));
            }
            if data.len() < len {
                return Err(bad("truncated shm path"));
            }
            let (path_bytes, rest) = data.split_at(len);
            *data = rest;
            let path = std::str::from_utf8(path_bytes)
                .map_err(|_| bad("shm path is not UTF-8"))?
                .to_owned();
            Frame::AttachShm {
                path,
                slots: read_varint(data, "shm slot count")?,
                cap: read_varint(data, "shm slot capacity")?,
            }
        }
        13 => Frame::ShmSummary {
            session: read_varint(data, "session id")?,
            boundary: read_varint(data, "boundary index")?,
            epoch: read_varint(data, "reshard epoch")?,
            slot: read_varint(data, "ring slot")?,
        },
        14 => Frame::ShmAck {
            session: read_varint(data, "session id")?,
            slot: read_varint(data, "ring slot")?,
        },
        15 => Frame::StatsRequest {
            session: read_varint(data, "session id")?,
        },
        16 => Frame::StatsReport {
            session: read_varint(data, "session id")?,
            batches: read_varint(data, "stats batch count")?,
            events: read_varint(data, "stats event count")?,
            boundaries: read_varint(data, "stats boundary count")?,
            responses: read_varint(data, "stats response count")?,
        },
        other => return Err(bad(format!("unknown frame type {other}"))),
    };
    if !data.is_empty() {
        return Err(bad("trailing bytes after frame payload"));
    }
    Ok(frame)
}

/// Writes frames to a byte sink, one `write_all` per frame (header and
/// payload are assembled in a reusable buffer first, so a frame is a
/// single syscall on a socket).
#[derive(Debug)]
pub struct FrameWriter<W> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(1024),
        }
    }

    /// Encode and send one frame. A frame whose payload exceeds
    /// [`MAX_FRAME_LEN`] (e.g. a summary of an unquantized
    /// multi-million-unique sub-window) errors **at the sender**
    /// instead of being shipped for the peer to reject — and can never
    /// wrap the u32 length prefix and desynchronize the stream.
    pub fn write_frame(&mut self, frame: &Frame) -> io::Result<()> {
        self.buf.clear();
        self.buf.extend_from_slice(&[0u8; 5]);
        encode_payload(&mut self.buf, frame);
        let payload_len = self.buf.len() - 5;
        if payload_len > MAX_FRAME_LEN {
            return Err(bad(format!(
                "refusing to send oversized frame ({payload_len} B > {MAX_FRAME_LEN} B cap)"
            )));
        }
        self.buf[..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        self.buf[4] = frame.type_byte();
        self.inner.write_all(&self.buf)
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reads frames from a byte source with strict validation.
///
/// The reader is **resumable across read timeouts**: when the source
/// returns `WouldBlock`/`TimedOut` (a socket with a read deadline set),
/// partial header/payload progress is kept and the next call continues
/// exactly where the timed-out one stopped — the coordinator's
/// heartbeat probing depends on being able to time out mid-frame
/// without desynchronizing the stream.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Partial-frame progress, kept across timed-out reads.
    header: [u8; 5],
    header_filled: usize,
    payload_filled: usize,
    last_frame_len: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a source. Sources doing small reads (sockets) should be
    /// wrapped in a `BufReader` first.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            header: [0u8; 5],
            header_filled: 0,
            payload_filled: 0,
            last_frame_len: 0,
        }
    }

    /// Wire size (5-byte header + payload) of the most recently
    /// *returned* frame. Lets telemetry charge e.g. summary bytes per
    /// shard without re-encoding the frame it just decoded; 0 before
    /// the first frame.
    pub fn last_frame_len(&self) -> usize {
        self.last_frame_len
    }

    /// Read the next frame. EOF — even a clean one between frames —
    /// is an `UnexpectedEof` error; use [`FrameReader::try_read_frame`]
    /// where a peer is allowed to close the connection.
    pub fn read_frame(&mut self) -> io::Result<Frame> {
        self.try_read_frame()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-session"))
    }

    /// Read the next frame, or `None` if the source is cleanly at EOF
    /// (closed exactly on a frame boundary). EOF *inside* a frame is
    /// still an error. A `WouldBlock`/`TimedOut` error from the source
    /// is returned as-is and leaves the reader resumable (see the type
    /// docs); every other error abandons the stream.
    pub fn try_read_frame(&mut self) -> io::Result<Option<Frame>> {
        while self.header_filled < self.header.len() {
            match self.inner.read(&mut self.header[self.header_filled..]) {
                Ok(0) if self.header_filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated frame header",
                    ))
                }
                Ok(n) => self.header_filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let len = u32::from_le_bytes(self.header[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(bad(format!("frame length {len} exceeds cap")));
        }
        // On first entry for this frame `payload_filled` is 0 and this
        // sizes the buffer; on re-entry after a timeout the length is
        // unchanged, the resize is a no-op, and filling resumes.
        self.buf.resize(len, 0);
        while self.payload_filled < len {
            match self.inner.read(&mut self.buf[self.payload_filled..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "truncated frame payload",
                    ))
                }
                Ok(n) => self.payload_filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.header_filled = 0;
        self.payload_filled = 0;
        self.last_frame_len = len + 5;
        decode_frame(self.header[4], &self.buf).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut bytes = Vec::new();
        FrameWriter::new(&mut bytes).write_frame(frame).unwrap();
        let mut reader = FrameReader::new(bytes.as_slice());
        let got = reader.read_frame().unwrap();
        assert!(reader.try_read_frame().unwrap().is_none(), "leftover bytes");
        got
    }

    fn sample_config() -> QloveConfig {
        QloveConfig::new(&[0.5, 0.99, 0.999], 8_000, 1_000)
    }

    fn sample_answer() -> QloveAnswer {
        QloveAnswer {
            values: vec![42, 0, u64::MAX],
            sources: vec![
                AnswerSource::Level2,
                AnswerSource::TopK,
                AnswerSource::SampleK,
            ],
            bounds: vec![
                None,
                Some(CltBound {
                    half_width: 1.25e-3,
                    confidence: 0.95,
                }),
                Some(CltBound {
                    half_width: f64::MIN_POSITIVE,
                    confidence: 0.9999999,
                }),
            ],
            bursty: true,
        }
    }

    #[test]
    fn all_frames_roundtrip() {
        let summary = QloveSummary::from_counts(vec![(3, 2), (70, 1), (u64::MAX, 9)]).unwrap();
        let frames = [
            Frame::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Coordinator,
            },
            Frame::Hello {
                version: PROTOCOL_VERSION,
                role: Role::Worker,
            },
            Frame::OpenSession {
                session: 0,
                config: sample_config(),
                mode: WorkerMode::Shard,
            },
            Frame::OpenSession {
                session: u64::MAX,
                config: QloveConfig::without_fewk(&[0.5], 100, 10)
                    .quantize(None)
                    .backend(Backend::Tree),
                mode: WorkerMode::Operator,
            },
            Frame::EventBatch {
                session: 0,
                values: vec![],
            },
            Frame::EventBatch {
                session: 1_000,
                values: vec![0, 1, 127, 128, 1_000_000, u64::MAX],
            },
            Frame::Boundary {
                session: 0,
                boundary: 0,
            },
            Frame::Boundary {
                session: u64::MAX,
                boundary: u64::MAX,
            },
            Frame::BoundarySummary {
                session: 7,
                boundary: 17,
                epoch: 0,
                summary: QloveSummary::from_counts(vec![]).unwrap(),
            },
            Frame::BoundarySummary {
                session: 0,
                boundary: 18,
                epoch: u64::MAX,
                summary,
            },
            Frame::Answer {
                session: 63,
                boundary: 3,
                answer: sample_answer(),
            },
            Frame::Shutdown,
            Frame::Heartbeat { session: 0 },
            Frame::Heartbeat { session: u64::MAX },
            Frame::Restore {
                session: 0,
                boundary: 0,
                checkpoint: QloveSummary::from_counts(vec![]).unwrap(),
            },
            Frame::Restore {
                session: 129,
                boundary: u64::MAX,
                checkpoint: QloveSummary::from_counts(vec![(3, 2), (9, 1), (u64::MAX, 4)]).unwrap(),
            },
            Frame::CloseSession { session: 0 },
            Frame::CloseSession { session: u64::MAX },
            Frame::Reshard {
                session: 0,
                boundary: 0,
                epoch: 1,
            },
            Frame::Reshard {
                session: u64::MAX,
                boundary: u64::MAX,
                epoch: u64::MAX,
            },
            Frame::AttachShm {
                path: String::new(),
                slots: 0,
                cap: 0,
            },
            Frame::AttachShm {
                path: "/tmp/qlove.ring.1".to_owned(),
                slots: 64,
                cap: u64::MAX,
            },
            Frame::ShmSummary {
                session: 0,
                boundary: 0,
                epoch: 0,
                slot: 0,
            },
            Frame::ShmSummary {
                session: u64::MAX,
                boundary: u64::MAX,
                epoch: u64::MAX,
                slot: u64::MAX,
            },
            Frame::ShmAck {
                session: 0,
                slot: 63,
            },
            Frame::ShmAck {
                session: u64::MAX,
                slot: u64::MAX,
            },
            Frame::StatsRequest { session: 0 },
            Frame::StatsRequest { session: u64::MAX },
            Frame::StatsReport {
                session: 0,
                batches: 0,
                events: 0,
                boundaries: 0,
                responses: 0,
            },
            Frame::StatsReport {
                session: u64::MAX,
                batches: u64::MAX,
                events: u64::MAX,
                boundaries: u64::MAX,
                responses: u64::MAX,
            },
        ];
        for frame in &frames {
            assert_eq!(&roundtrip(frame), frame, "{frame:?}");
        }
    }

    #[test]
    fn answer_roundtrip_is_bitwise_on_bounds() {
        // f64 payloads travel as raw bits: equality must be exact, not
        // approximate, for the bit-identity invariant to survive the
        // wire.
        let answer = sample_answer();
        let Frame::Answer { answer: got, .. } = roundtrip(&Frame::Answer {
            session: 5,
            boundary: 0,
            answer: answer.clone(),
        }) else {
            panic!("wrong frame kind")
        };
        for (a, b) in answer.bounds.iter().zip(&got.bounds) {
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.half_width.to_bits(), y.half_width.to_bits());
                    assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
                }
                _ => panic!("bound presence diverged"),
            }
        }
    }

    #[test]
    fn decoded_config_always_survives_validate() {
        // The decoder promises: whatever it returns, validate() cannot
        // panic. Spot-check the interesting configs.
        for (config, mode) in [
            (sample_config(), WorkerMode::Shard),
            (
                QloveConfig::new(&[0.999], 40, 10).backend(Backend::Dense),
                WorkerMode::Operator,
            ),
            (
                QloveConfig::without_fewk(&[0.0, 1.0], 7, 7).quantize(Some(9)),
                WorkerMode::Shard,
            ),
        ] {
            let Frame::OpenSession {
                config: got,
                mode: got_mode,
                ..
            } = roundtrip(&Frame::OpenSession {
                session: 2,
                config: config.clone(),
                mode,
            })
            else {
                panic!("wrong frame kind")
            };
            got.validate();
            assert_eq!(got, config);
            assert_eq!(got_mode, mode);
        }
    }

    /// Build an `OpenSession` payload (session 0) around a raw config
    /// encoding, for hand-corruption.
    fn open_payload(config: &QloveConfig, mode: WorkerMode) -> Vec<u8> {
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0); // session id
        encode_config(&mut payload, config, mode);
        payload
    }

    #[test]
    fn rejects_malformed_configs() {
        // Hand-built config payloads that parse structurally but fail
        // the semantic checks validate() would panic on. Offset 1 skips
        // the session varint (one byte for session 0).
        let check = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut payload = open_payload(&sample_config(), WorkerMode::Shard);
            mutate(&mut payload);
            assert!(decode_frame(2, &payload).is_err());
        };
        // Unknown mode byte.
        check(&|p| p[1] = 9);
        // Window not a multiple of period: rewrite the two varints.
        let mut payload = vec![0u8, 0u8]; // session 0, shard mode
        write_uvarint(&mut payload, 1000);
        write_uvarint(&mut payload, 300);
        assert!(decode_frame(2, &payload).is_err());
        // Dense backend without quantization.
        let cfg = QloveConfig::new(&[0.5], 100, 10); // auto backend, sig 3
        let mut bad_cfg = cfg.clone();
        bad_cfg.sig_digits = None;
        bad_cfg.backend = Backend::Dense;
        assert!(decode_frame(2, &open_payload(&bad_cfg, WorkerMode::Shard)).is_err());
        // NaN few-k fraction.
        let mut bad_cfg = cfg.clone();
        bad_cfg.fewk = Some(FewKConfig {
            topk_fraction: f64::NAN,
            ..FewKConfig::auto(100, 10, false)
        });
        assert!(decode_frame(2, &open_payload(&bad_cfg, WorkerMode::Shard)).is_err());
        // Out-of-range phi.
        let mut bad_cfg = cfg;
        bad_cfg.phis = vec![1.5];
        assert!(decode_frame(2, &open_payload(&bad_cfg, WorkerMode::Shard)).is_err());
        // Empty phis.
        let mut payload = open_payload(&QloveConfig::new(&[0.5], 100, 10), WorkerMode::Shard);
        // Truncate the phi list: drop the final f64 and shrink count.
        payload.truncate(payload.len() - 8);
        *payload.last_mut().unwrap() = 0; // phi count 0 (last varint byte)
        assert!(decode_frame(2, &payload).is_err());
    }

    /// Satellite of the no-narrowing contract: varint values straddling
    /// the `u32`/`usize` boundaries must surface as `InvalidData`, not
    /// wrap on a cast (a 32-bit worker decoding `window = 2^32 + 100`
    /// as `100` would silently compute wrong answers).
    #[test]
    fn rejects_boundary_value_payloads() {
        let err_kind = |payload: &[u8], ty: u8| {
            let err = decode_frame(ty, payload).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "type {ty}");
        };
        // Config with window/period just past u64 representability of
        // a valid pair: u64::MAX window with period 1 passes the
        // multiple-of check, so it must die on the usize conversion
        // (64-bit: never; the shape check still rejects the others) or
        // the later validation. Exercise the extremes explicitly.
        for (window, period) in [
            (u64::MAX, 1u64),
            (u64::MAX - 1, 2),
            (1u64 << 63, 1u64 << 62),
            (u64::from(u32::MAX) + 1, 1),
        ] {
            let mut payload = vec![0u8, 0u8]; // session 0, shard mode
            write_uvarint(&mut payload, window);
            write_uvarint(&mut payload, period);
            write_uvarint(&mut payload, 0); // sig_digits: none
            payload.push(0); // backend auto
            payload.push(0); // no few-k
            write_uvarint(&mut payload, 1); // one phi
            payload.extend_from_slice(&0.5f64.to_le_bytes());
            // On 64-bit hosts these configs parse numerically but are
            // absurd; they must decode to an error or a config that
            // survives validate() — never a wrapped cast. All listed
            // windows exceed what a phi payload this small could ever
            // legitimately accompany, but the decoder has no way to
            // know that; what it must guarantee is no narrowing.
            match decode_frame(2, &payload) {
                Ok(Frame::OpenSession { config, .. }) => {
                    assert_eq!(config.window as u64, window, "no silent narrowing");
                    config.validate();
                }
                Ok(other) => panic!("unexpected frame {other:?}"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            }
        }
        // sig_digits biased varint at u32::MAX + 2 → d = u32::MAX + 1:
        // must be rejected by the checked u32 conversion.
        let mut payload = vec![0u8, 0u8];
        write_uvarint(&mut payload, 100);
        write_uvarint(&mut payload, 10);
        write_uvarint(&mut payload, u64::from(u32::MAX) + 2);
        err_kind(&payload, 2);
        // Same at u64::MAX (biased): d = u64::MAX - 1 overflows u32.
        let mut payload = vec![0u8, 0u8];
        write_uvarint(&mut payload, 100);
        write_uvarint(&mut payload, 10);
        write_uvarint(&mut payload, u64::MAX);
        err_kind(&payload, 2);
        // Event batch counts at the integer extremes: all exceed the
        // bytes present and must be rejected before allocation.
        for count in [
            u64::from(u32::MAX),
            u64::from(u32::MAX) + 1,
            usize::MAX as u64,
            u64::MAX,
        ] {
            let mut payload = Vec::new();
            write_uvarint(&mut payload, 0); // session
            write_uvarint(&mut payload, count);
            err_kind(&payload, 3);
        }
        // Answer quantile count at the extremes, through frame 6.
        for count in [u64::from(u32::MAX) + 1, u64::MAX] {
            let mut payload = Vec::new();
            write_uvarint(&mut payload, 0); // session
            write_uvarint(&mut payload, 0); // eval index
            write_uvarint(&mut payload, count);
            err_kind(&payload, 6);
        }
    }

    #[test]
    fn rejects_structural_corruption() {
        // Unknown frame type (15/16 became the stats scrape in v5; 17
        // is the first unassigned type).
        assert!(decode_frame(0, &[]).is_err());
        assert!(decode_frame(17, &[]).is_err());
        assert!(decode_frame(255, &[1, 2, 3]).is_err());
        // Bad hello: wrong magic, wrong length, unknown role.
        assert!(decode_frame(1, b"NOPE\x01\x00").is_err());
        assert!(decode_frame(1, b"QLVT\x01").is_err());
        assert!(decode_frame(1, b"QLVT\x01\x09").is_err());
        assert!(decode_frame(1, b"QLVT\x01\x00\x00").is_err());
        // Event batch whose count exceeds the payload.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0); // session
        write_uvarint(&mut payload, u64::MAX);
        assert!(decode_frame(3, &payload).is_err());
        // Event batch with no session id at all.
        assert!(decode_frame(3, &[]).is_err());
        // Trailing garbage after a valid session + boundary index.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0);
        write_uvarint(&mut payload, 4);
        payload.push(0);
        assert!(decode_frame(4, &payload).is_err());
        // Boundary missing its boundary index (session only).
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 4);
        assert!(decode_frame(4, &payload).is_err());
        // Summary frame with corrupt QLVS payload.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0); // session
        write_uvarint(&mut payload, 0); // boundary
        payload.extend_from_slice(b"QLVX");
        assert!(decode_frame(5, &payload).is_err());
        // Answer with an unknown source byte.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0); // session
        write_uvarint(&mut payload, 0); // eval index
        write_uvarint(&mut payload, 1); // l = 1
        write_uvarint(&mut payload, 10); // value
        payload.push(7); // bad source
        payload.push(0); // bound tag
        payload.push(0); // bursty
        assert!(decode_frame(6, &payload).is_err());
        // Shutdown with a payload.
        assert!(decode_frame(7, &[0]).is_err());
        // Heartbeat: missing session id, truncated varint, trailing
        // bytes after a valid session id.
        assert!(decode_frame(8, &[]).is_err());
        assert!(decode_frame(8, &[0x80]).is_err());
        assert!(decode_frame(8, &[0]).is_ok());
        assert!(decode_frame(8, &[0, 0]).is_err());
        // CloseSession: same shape contract as heartbeat.
        assert!(decode_frame(10, &[]).is_err());
        assert!(decode_frame(10, &[0x80]).is_err());
        assert!(decode_frame(10, &[7]).is_ok());
        assert!(decode_frame(10, &[7, 7]).is_err());
        // Restore: truncated varints, corrupt QLVS checkpoint, and
        // trailing bytes after a valid checkpoint.
        assert!(decode_frame(9, &[]).is_err());
        assert!(decode_frame(9, &[0x80]).is_err());
        assert!(decode_frame(9, &[0, 0x80]).is_err());
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0); // session
        write_uvarint(&mut payload, 3); // boundary
        payload.extend_from_slice(b"QLVX");
        assert!(decode_frame(9, &payload).is_err());
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0);
        write_uvarint(&mut payload, 3);
        qlove_wire::encode_summary(&[(1, 2)], &mut payload);
        assert!(decode_frame(9, &payload).is_ok());
        payload.push(0);
        assert!(decode_frame(9, &payload).is_err());
        // A restore checkpoint claiming far more pairs than the payload
        // holds must be rejected before any allocation (the QLVS
        // decoder's count-vs-bytes check, reached through frame 9).
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 0); // session
        write_uvarint(&mut payload, 0); // boundary
        let mut qlvs = Vec::new();
        qlove_wire::encode_summary(&[(1, 1)], &mut qlvs);
        // Blow up the declared pair count (varint right after the QLVS
        // magic + version header) while keeping the payload tiny.
        let header = 5;
        qlvs.truncate(header);
        write_uvarint(&mut qlvs, u64::MAX);
        payload.extend_from_slice(&qlvs);
        assert!(decode_frame(9, &payload).is_err());
    }

    /// The v4 shm frames face the same hostile-input contract as every
    /// other frame: a corrupt path length must be rejected before any
    /// allocation, and truncation or trailing bytes surface as errors.
    #[test]
    fn rejects_corrupt_shm_frames() {
        // AttachShm: declared path length beyond the cap must die
        // before allocation, even when the payload is tiny.
        for len in [
            MAX_SHM_PATH_LEN as u64 + 1,
            u64::from(u32::MAX),
            usize::MAX as u64,
            u64::MAX,
        ] {
            let mut payload = Vec::new();
            write_uvarint(&mut payload, len);
            assert!(decode_frame(12, &payload).is_err(), "path len {len}");
        }
        // Path length exceeding the bytes actually present.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 10);
        payload.extend_from_slice(b"short");
        assert!(decode_frame(12, &payload).is_err());
        // Non-UTF-8 path bytes.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 2);
        payload.extend_from_slice(&[0xff, 0xfe]);
        write_uvarint(&mut payload, 4);
        write_uvarint(&mut payload, 8);
        assert!(decode_frame(12, &payload).is_err());
        // Truncated after the path (missing slots/cap varints).
        let mut payload = Vec::new();
        write_uvarint(&mut payload, 2);
        payload.extend_from_slice(b"/x");
        assert!(decode_frame(12, &payload).is_err());
        // A maximal-length path is accepted; one byte more is not.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, MAX_SHM_PATH_LEN as u64);
        payload.extend_from_slice(&vec![b'a'; MAX_SHM_PATH_LEN]);
        write_uvarint(&mut payload, 1);
        write_uvarint(&mut payload, 1);
        assert!(decode_frame(12, &payload).is_ok());
        // ShmSummary/ShmAck: truncated varints and trailing bytes.
        assert!(decode_frame(13, &[]).is_err());
        assert!(decode_frame(13, &[0, 0, 0, 0x80]).is_err());
        assert!(decode_frame(13, &[0, 0, 0, 0]).is_ok());
        assert!(decode_frame(13, &[0, 0, 0, 0, 0]).is_err());
        assert!(decode_frame(14, &[]).is_err());
        assert!(decode_frame(14, &[0x80]).is_err());
        assert!(decode_frame(14, &[0, 0]).is_ok());
        assert!(decode_frame(14, &[0, 0, 0]).is_err());
    }

    /// The v5 stats frames face the same hostile-input contract:
    /// truncation, torn varints, and trailing bytes all surface as
    /// `InvalidData` — never a panic.
    #[test]
    fn rejects_corrupt_stats_frames() {
        // StatsRequest: same shape contract as Heartbeat.
        assert!(decode_frame(15, &[]).is_err());
        assert!(decode_frame(15, &[0x80]).is_err());
        assert!(decode_frame(15, &[3]).is_ok());
        assert!(decode_frame(15, &[3, 0]).is_err());
        // StatsReport: each of the five varints truncated in turn.
        for varints in 0..5usize {
            let mut payload = Vec::new();
            for _ in 0..varints {
                write_uvarint(&mut payload, 7);
            }
            assert!(decode_frame(16, &payload).is_err(), "{varints} varints");
            payload.push(0x80); // torn continuation byte
            assert!(decode_frame(16, &payload).is_err());
        }
        // Exactly five varints is a frame; a sixth byte is trailing.
        let mut payload = Vec::new();
        for v in [0u64, 1, u64::MAX, 3, 4] {
            write_uvarint(&mut payload, v);
        }
        assert!(decode_frame(16, &payload).is_ok());
        payload.push(0);
        assert!(decode_frame(16, &payload).is_err());
    }

    #[test]
    fn reader_rejects_truncation_everywhere() {
        // Any cut that is not exactly a frame boundary must error; a
        // cut on a boundary yields the preceding frames then clean EOF.
        let frames = [
            Frame::OpenSession {
                session: 3,
                config: sample_config(),
                mode: WorkerMode::Shard,
            },
            Frame::Restore {
                session: 3,
                boundary: 7,
                checkpoint: QloveSummary::from_counts(vec![(1, 2), (300, 1)]).unwrap(),
            },
            Frame::EventBatch {
                session: 3,
                values: vec![1, 2, 3],
            },
            Frame::CloseSession { session: 3 },
            Frame::Heartbeat { session: 0 },
        ];
        let mut bytes = Vec::new();
        let mut clean_cuts = vec![0usize];
        {
            let mut writer = FrameWriter::new(&mut bytes);
            for frame in &frames {
                writer.write_frame(frame).unwrap();
            }
        }
        for frame in &frames {
            let mut only = Vec::new();
            FrameWriter::new(&mut only).write_frame(frame).unwrap();
            clean_cuts.push(clean_cuts.last().unwrap() + only.len());
        }
        for cut in 1..bytes.len() {
            let mut reader = FrameReader::new(&bytes[..cut]);
            let mut result = Ok(());
            loop {
                match reader.try_read_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            if clean_cuts.contains(&cut) {
                assert!(result.is_ok(), "cut on frame boundary is clean EOF");
            } else {
                assert!(result.is_err(), "cut at {cut} should fail");
            }
        }
    }

    /// A source that interleaves `WouldBlock` timeouts between every
    /// delivered byte — the worst case a socket read deadline can
    /// produce. The reader must resume mid-frame and still decode the
    /// stream exactly.
    #[test]
    fn reader_resumes_across_read_timeouts() {
        struct Choppy<'a> {
            data: &'a [u8],
            pos: usize,
            deliver_next: bool,
        }
        impl io::Read for Choppy<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                if !self.deliver_next {
                    self.deliver_next = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "deadline"));
                }
                self.deliver_next = false;
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let frames = [
            Frame::Heartbeat { session: 9 },
            Frame::BoundarySummary {
                session: 9,
                boundary: 5,
                epoch: 0,
                summary: QloveSummary::from_counts(vec![(2, 9), (40, 1)]).unwrap(),
            },
            Frame::Shutdown,
        ];
        let mut bytes = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut bytes);
            for frame in &frames {
                writer.write_frame(frame).unwrap();
            }
        }
        let mut reader = FrameReader::new(Choppy {
            data: &bytes,
            pos: 0,
            deliver_next: false,
        });
        let mut got = Vec::new();
        loop {
            match reader.try_read_frame() {
                Ok(Some(frame)) => got.push(frame),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn reader_rejects_oversized_declared_length() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        bytes.push(3);
        let err = FrameReader::new(bytes.as_slice()).read_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decode_never_panics_on_noise() {
        // The QLVS fuzz loop, extended to the framed decoder: byte soup
        // through every frame type, and through the stream reader with
        // a plausible header.
        let mut state = 0xA24BAED4963EE407u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        };
        for len in 0..96usize {
            let noise: Vec<u8> = (0..len).map(|_| next()).collect();
            for frame_type in 0..=18u8 {
                let _ = decode_frame(frame_type, &noise); // must return
            }
            // Streamed: random header + noise payload.
            let mut stream = Vec::with_capacity(len + 5);
            stream.extend_from_slice(&(len as u32).to_le_bytes());
            stream.push(next() % 17);
            stream.extend_from_slice(&noise);
            let mut reader = FrameReader::new(stream.as_slice());
            while let Ok(Some(_)) = reader.try_read_frame() {}
        }
    }
}
