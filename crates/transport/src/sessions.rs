//! The multiplexed client: drive many independent sessions — distinct
//! configs, backends, and modes — over **one** worker connection.
//!
//! Where [`crate::run_supervised`] answers one logical window by
//! dealing it across many worker processes (one session per
//! connection), this module is the transpose: one worker process hosts
//! many whole windows, each an independent [`SessionSpec`] with its own
//! stream. The dealer thread interleaves the sessions' frames
//! round-robin (one unit — a batch, boundary, or close — per session
//! per round) so no stream monopolizes the socket, and the collector
//! demultiplexes responses by the session ID every frame carries.
//!
//! ## Per-session recovery
//!
//! [`run_sessions_supervised`] retains every dealt frame in a
//! per-session replay ring, pruned at each acknowledged boundary. When
//! the worker process dies (crash or stall, detected exactly as in the
//! supervised coordinator), the replacement connection re-opens **only
//! the sessions that had not finished**, restores each to *its own*
//! acknowledged boundary with a session-scoped [`Frame::Restore`], and
//! replays each session's ring — sessions whose `CloseSession` was
//! already acknowledged are not reopened, and the recovered answers
//! stay bit-identical per session. Because recovery is replay-based it
//! requires every session to be in shard mode: a remote full operator's
//! state cannot be rebuilt (see [`crate::run_remote_operator`]), so a
//! supervised mixed-mode run is rejected up front.

use crate::coordinator::{
    drive_restarts, failures_view, hello_handshake, is_timeout, join_io, FailureEvent, FailureKind,
    RecoveryPolicy, WorkerStats, MAX_RING_BOUNDARIES,
};
use crate::net::Conn;
use crate::proto::{Frame, FrameReader, FrameWriter, WorkerMode};
use qlove_core::{Qlove, QloveAnswer, QloveConfig, QloveSummary};
use qlove_stream::parallel::BATCH;
use qlove_telemetry::{EventJournal, EventKind, Stopwatch};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::sync::{Condvar, Mutex};
use std::thread;

/// One session to run on the shared connection.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The session's operator configuration (window schedule, backend,
    /// quantization — fully independent of its neighbors).
    pub config: QloveConfig,
    /// Shard (coordinator-side merge, recoverable) or operator (remote
    /// full window, answers streamed back).
    pub mode: WorkerMode,
    /// The session's whole input stream.
    pub values: Vec<u64>,
}

/// What one session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The mode the session ran in.
    pub mode: WorkerMode,
    /// The session's window evaluations, bit-identical to a sequential
    /// single-instance run over the same values.
    pub answers: Vec<QloveAnswer>,
    /// Elements of a trailing partial sub-window left pending in the
    /// client-side merge operator (shard mode; always 0 for operator
    /// mode, where the remote operator holds the pending state).
    pub pending: usize,
    /// Boundary summaries merged (shard mode; 0 for operator mode).
    pub boundaries: u64,
}

/// Result of a supervised multi-session run.
#[derive(Debug)]
pub struct SessionsRun {
    /// Per-session outcomes, in `specs` order.
    pub outcomes: Vec<SessionOutcome>,
    /// Worker failures and the per-session recoveries they triggered:
    /// one [`FailureEvent`] per session restored (its `shard` field
    /// carries the session index). A view materialized from
    /// [`SessionsRun::journal`].
    pub failures: Vec<FailureEvent>,
    /// The run's structured event journal.
    pub journal: EventJournal,
    /// Worker-side counters scraped over the wire just before each
    /// session closed, in `specs` order (all-zero when the worker died
    /// before answering a session's scrape).
    pub worker_stats: Vec<WorkerStats>,
}

fn protocol(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Replay state for one session on the shared connection.
struct MuxSession {
    /// Dealt frames not yet covered by a boundary acknowledgement (or
    /// the close acknowledgement, which clears the ring outright).
    ring: VecDeque<Frame>,
    /// `Boundary` frames currently in the ring — this session's dealer
    /// run-ahead budget.
    ring_boundaries: usize,
    /// Boundaries acknowledged so far (== the boundary a restored
    /// session resumes from).
    acked: u64,
    /// The worker acknowledged this session's `CloseSession`: it is
    /// finished and recovery must not reopen it.
    closed: bool,
}

/// Everything the dealer and collector share about the connection.
struct MuxState {
    sessions: Vec<MuxSession>,
    /// Live write half; `None` while the worker is down (frames keep
    /// ringing and recovery replays them).
    writer: Option<FrameWriter<Conn>>,
    /// The dealer finished and sent (or tried to send) the final
    /// `Shutdown`; recovery must re-send it on the replacement
    /// connection.
    shutdown_sent: bool,
    failed: bool,
}

struct MuxLink {
    /// Retain dealt frames for replay (supervised runs). Immutable, and
    /// deliberately *outside* the mutex: when `false` the collector's
    /// acknowledgements are lock-free no-ops, so the collector can
    /// never stop reading behind a dealer that is blocked in a socket
    /// write while holding the state lock. (Dealer blocked writing →
    /// collector blocked on the lock → collector stops reading → the
    /// worker fills its outbound buffer and stops reading its inbound →
    /// the dealer's write never completes: a three-party deadlock this
    /// layout makes impossible in the unsupervised path.)
    retain: bool,
    state: Mutex<MuxState>,
    cv: Condvar,
}

impl MuxLink {
    fn new(writer: FrameWriter<Conn>, sessions: usize, retain: bool) -> Self {
        Self {
            retain,
            state: Mutex::new(MuxState {
                sessions: (0..sessions)
                    .map(|_| MuxSession {
                        ring: VecDeque::new(),
                        ring_boundaries: 0,
                        acked: 0,
                        closed: false,
                    })
                    .collect(),
                writer: Some(writer),
                shutdown_sent: false,
                failed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Collector ack: session `s` boundary `b` merged — prune its ring
    /// through the matching `Boundary` frame and wake the dealer.
    fn ack(&self, s: usize, b: u64) {
        if !self.retain {
            // Nothing rung, and an unsupervised dealer never parks on
            // ring backpressure, so there is no one to wake. Skipping
            // the lock keeps the collector reading even while the
            // dealer is mid-write holding it (see `retain` above).
            return;
        }
        let mut st = self.state.lock().expect("mux link poisoned");
        let sess = &mut st.sessions[s];
        sess.acked = b + 1;
        while let Some(frame) = sess.ring.pop_front() {
            if matches!(frame, Frame::Boundary { boundary, .. } if boundary == b) {
                sess.ring_boundaries -= 1;
                break;
            }
        }
        self.cv.notify_all();
    }

    /// Collector: the worker acknowledged session `s`'s close — its
    /// effects are fully durable, drop the replay state for good.
    fn close_acked(&self, s: usize) {
        if !self.retain {
            return; // no ring to drop; `closed` only matters to recovery
        }
        let mut st = self.state.lock().expect("mux link poisoned");
        let sess = &mut st.sessions[s];
        sess.closed = true;
        sess.ring.clear();
        sess.ring_boundaries = 0;
        self.cv.notify_all();
    }

    /// Terminal: wake and stop everyone.
    fn fail(&self) {
        let mut st = self.state.lock().expect("mux link poisoned");
        st.failed = true;
        st.writer = None;
        self.cv.notify_all();
    }
}

/// Ring `frame` for session `s` (when retaining) and push it down the
/// socket; a failed write parks the writer for the collector to
/// notice. Caller holds the state lock.
fn push_frame(st: &mut MuxState, retain: bool, s: usize, frame: Frame) {
    let is_boundary = matches!(frame, Frame::Boundary { .. });
    let flush = is_boundary || matches!(frame, Frame::CloseSession { .. });
    let frame = if retain {
        let sess = &mut st.sessions[s];
        sess.ring.push_back(frame);
        if is_boundary {
            sess.ring_boundaries += 1;
        }
        sess.ring.back().expect("frame was just pushed")
    } else {
        &frame
    };
    if let Some(writer) = st.writer.as_mut() {
        let sent = writer
            .write_frame(frame)
            .and_then(|()| if flush { writer.flush() } else { Ok(()) });
        if sent.is_err() {
            st.writer = None;
        }
    }
}

/// The dealer's per-session position: what to send next. Units come
/// out as batches (never straddling a sub-window boundary in shard
/// mode), then the sub-window's `Boundary`, then — once the stream is
/// exhausted — a single `CloseSession`.
struct DealCursor<'a> {
    session: u64,
    values: &'a [u64],
    period: usize,
    mode: WorkerMode,
    pos: usize,
    sent_boundaries: u64,
    stats_sent: bool,
    close_sent: bool,
}

impl<'a> DealCursor<'a> {
    fn new(session: u64, spec: &'a SessionSpec) -> Self {
        Self {
            session,
            values: &spec.values,
            period: spec.config.period,
            mode: spec.mode,
            pos: 0,
            sent_boundaries: 0,
            stats_sent: false,
            close_sent: false,
        }
    }

    fn done(&self) -> bool {
        self.close_sent
    }

    /// Sub-windows fully dealt so far (the trailing partial counts once
    /// the stream is exhausted — it is shipped and merged, not
    /// dropped).
    fn dealt_windows(&self) -> u64 {
        if self.mode != WorkerMode::Shard {
            return 0;
        }
        if self.pos == self.values.len() {
            self.values.len().div_ceil(self.period) as u64
        } else {
            (self.pos / self.period) as u64
        }
    }

    /// Whether the next unit is a `Boundary` — the only unit subject to
    /// ring backpressure.
    fn boundary_due(&self) -> bool {
        self.sent_boundaries < self.dealt_windows()
    }

    /// Produce the next unit. Must not be called when [`Self::done`].
    fn next_unit(&mut self) -> Frame {
        if self.boundary_due() {
            let boundary = self.sent_boundaries;
            self.sent_boundaries += 1;
            return Frame::Boundary {
                session: self.session,
                boundary,
            };
        }
        let len = self.values.len();
        if self.pos < len {
            let end = match self.mode {
                WorkerMode::Shard => {
                    let window_end = (self.pos / self.period + 1) * self.period;
                    len.min(window_end).min(self.pos + BATCH)
                }
                WorkerMode::Operator => len.min(self.pos + BATCH),
            };
            let values = self.values[self.pos..end].to_vec();
            self.pos = end;
            return Frame::EventBatch {
                session: self.session,
                values,
            };
        }
        // Scrape the session's worker-side counters while it is still
        // live — a closed session is gone from the worker's slab and
        // would only answer zeros. The request rides the replay ring
        // like any other dealt frame, so a recovering worker re-answers
        // it and the collector keeps the latest report.
        if !self.stats_sent {
            self.stats_sent = true;
            return Frame::StatsRequest {
                session: self.session,
            };
        }
        self.close_sent = true;
        Frame::CloseSession {
            session: self.session,
        }
    }
}

/// Deal every session's stream, round-robin (one unit per live session
/// per round), then send the connection `Shutdown`. A session whose
/// ring is at its boundary bound is skipped for the round; when every
/// live session is blocked the dealer waits for a collector ack.
fn deal_all(link: &MuxLink, specs: &[SessionSpec]) -> io::Result<()> {
    let mut cursors: Vec<DealCursor> = specs
        .iter()
        .enumerate()
        .map(|(s, spec)| DealCursor::new(s as u64, spec))
        .collect();
    loop {
        let mut st = link.state.lock().expect("mux link poisoned");
        if st.failed {
            return Err(io::Error::other("multi-session run aborted"));
        }
        let mut progressed = false;
        let mut all_done = true;
        for (s, cursor) in cursors.iter_mut().enumerate() {
            if cursor.done() {
                continue;
            }
            all_done = false;
            if cursor.boundary_due()
                && link.retain
                && st.sessions[s].ring_boundaries >= MAX_RING_BOUNDARIES
            {
                continue; // backpressured: this session sits the round out
            }
            let frame = cursor.next_unit();
            push_frame(&mut st, link.retain, s, frame);
            progressed = true;
        }
        if all_done {
            st.shutdown_sent = true;
            if let Some(writer) = st.writer.as_mut() {
                let sent = writer
                    .write_frame(&Frame::Shutdown)
                    .and_then(|()| writer.flush());
                if sent.is_err() {
                    st.writer = None;
                }
            }
            return Ok(());
        }
        if !progressed {
            // Every live session is waiting on ring space: sleep until
            // an ack (or failure) changes that. The re-check happens
            // at the top of the loop under the same lock, so a wakeup
            // cannot be missed.
            drop(link.cv.wait(st).expect("mux link poisoned"));
        }
    }
}

/// The collector's connection-level view: reader, breaker, recovery
/// bookkeeping.
/// One session brought back by a restart: `(session index, boundary it
/// resumed from, frames replayed)`.
type RestoredSession = (usize, u64, usize);

struct MuxCollector<'a, F> {
    link: &'a MuxLink,
    specs: &'a [SessionSpec],
    policy: &'a RecoveryPolicy,
    reader: FrameReader<BufReader<Conn>>,
    breaker: Conn,
    respawn: F,
    restarts: u32,
    journal: &'a EventJournal,
    worker_stats: Vec<WorkerStats>,
}

impl<F: FnMut() -> io::Result<Conn>> MuxCollector<'_, F> {
    /// Ask the worker for a heartbeat echo (proof its event loop is
    /// alive). Session 0 is named arbitrarily; the worker echoes
    /// regardless of session state.
    fn probe(&self) -> io::Result<()> {
        let mut st = self.link.state.lock().expect("mux link poisoned");
        let st = &mut *st;
        match st.writer.as_mut() {
            Some(writer) => {
                let sent = writer
                    .write_frame(&Frame::Heartbeat { session: 0 })
                    .and_then(|()| writer.flush());
                if sent.is_err() {
                    st.writer = None;
                }
                sent
            }
            None => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "worker link is down",
            )),
        }
    }

    /// Read one frame, probing through read deadlines (same two-silent-
    /// intervals verdict as the supervised coordinator).
    fn read_with_probe(&mut self) -> Result<Frame, (FailureKind, u64, io::Error)> {
        let mut silent_since: Option<Stopwatch> = None;
        let mut probed = false;
        loop {
            match self.reader.read_frame() {
                Ok(Frame::Heartbeat { .. }) => {
                    silent_since = None;
                    probed = false;
                }
                // A stats scrape reply is absorbed here (latest report
                // wins — a replayed scrape after recovery overwrites);
                // it also proves the worker is alive.
                Ok(Frame::StatsReport {
                    session,
                    batches,
                    events,
                    boundaries,
                    responses,
                }) => {
                    if let Some(slot) = usize::try_from(session)
                        .ok()
                        .filter(|&s| s < self.worker_stats.len())
                    {
                        self.worker_stats[slot] = WorkerStats {
                            session,
                            batches,
                            events,
                            boundaries,
                            responses,
                        };
                    }
                    silent_since = None;
                    probed = false;
                }
                Ok(frame) => return Ok(frame),
                Err(e) if is_timeout(&e) => {
                    let since = *silent_since.get_or_insert_with(Stopwatch::start);
                    if probed {
                        return Err((FailureKind::Stall, since.elapsed_us(), e));
                    }
                    if self.probe().is_err() {
                        return Err((FailureKind::Crash, since.elapsed_us(), e));
                    }
                    probed = true;
                }
                Err(e) => {
                    let detect_us = silent_since.map(|s| s.elapsed_us()).unwrap_or(0);
                    return Err((FailureKind::Crash, detect_us, e));
                }
            }
        }
    }

    /// One restart attempt: respawn a worker process, handshake the new
    /// connection, then re-open **every unfinished session** on it —
    /// each with its own `OpenSession` + session-scoped `Restore` to
    /// its own acknowledged boundary + its own ring replay. Returns
    /// `(restored sessions, restore_us, replay_us)`.
    fn try_restart(&mut self) -> io::Result<(Vec<RestoredSession>, u64, u64)> {
        let restore_start = Stopwatch::start();
        let conn = (self.respawn)()?;
        self.policy.arm(&conn)?;
        let breaker = conn.try_clone()?;
        let (reader, mut writer) = hello_handshake(conn)?;
        let restore_us = restore_start.elapsed_us();
        let replay_start = Stopwatch::start();
        let mut st = self.link.state.lock().expect("mux link poisoned");
        let st = &mut *st;
        let mut restored = Vec::new();
        for (s, sess) in st.sessions.iter().enumerate() {
            if sess.closed {
                continue;
            }
            writer.write_frame(&Frame::OpenSession {
                session: s as u64,
                config: self.specs[s].config.clone(),
                mode: WorkerMode::Shard,
            })?;
            writer.write_frame(&Frame::Restore {
                session: s as u64,
                boundary: sess.acked,
                checkpoint: QloveSummary::default(),
            })?;
            for frame in &sess.ring {
                writer.write_frame(frame)?;
            }
            restored.push((s, sess.acked, sess.ring.len()));
        }
        if st.shutdown_sent {
            writer.write_frame(&Frame::Shutdown)?;
        }
        writer.flush()?;
        st.writer = Some(writer);
        self.link.cv.notify_all();
        let replay_us = replay_start.elapsed_us();
        self.reader = reader;
        self.breaker = breaker;
        Ok((restored, restore_us, replay_us))
    }

    /// Drive recovery of the whole connection to completion or declare
    /// the run dead. Every unfinished session is restored individually;
    /// one [`EventKind::Recovery`] record is journaled per restored
    /// session (surfacing as one [`FailureEvent`] each in the view).
    fn recover(&mut self, kind: FailureKind, detect_us: u64, cause: io::Error) -> io::Result<()> {
        // Sever the old socket first: a stalled worker that wakes up
        // later must find its stream dead, never the recovered one.
        let _ = self.breaker.shutdown();
        if !self.policy.enabled() {
            return Err(cause);
        }
        let stall = kind == FailureKind::Stall;
        let lowest_acked = {
            let st = self.link.state.lock().expect("mux link poisoned");
            st.sessions
                .iter()
                .filter(|s| !s.closed)
                .map(|s| s.acked)
                .min()
                .unwrap_or(0)
        };
        self.journal.emit(EventKind::Failure {
            // The whole connection is one failure domain (every session
            // shares the socket): domain 0, at the least-restored
            // unfinished session's boundary.
            domain: 0,
            boundary: lowest_acked,
            stall,
            detect_us,
        });
        let policy = self.policy;
        let (restarts, outcome) = drive_restarts(policy, 0, self.restarts, || self.try_restart());
        self.restarts = restarts;
        match outcome {
            Some((restored, restore_us, replay_us)) => {
                for (s, boundary, replayed) in restored {
                    self.journal.emit(EventKind::Recovery {
                        domain: s,
                        boundary,
                        stall,
                        restarts,
                        detect_us,
                        restore_us,
                        replay_us,
                        replayed_frames: replayed,
                        recovered: true,
                    });
                }
                Ok(())
            }
            None => {
                self.journal.emit(EventKind::Recovery {
                    domain: 0,
                    boundary: 0,
                    stall,
                    restarts,
                    detect_us,
                    restore_us: 0,
                    replay_us: 0,
                    replayed_frames: 0,
                    recovered: false,
                });
                Err(cause)
            }
        }
    }

    fn fail_all(&mut self) {
        let _ = self.breaker.shutdown();
        self.link.fail();
    }
}

/// Run every `spec` to completion over the single established
/// connection `conn`, with no supervision: any worker failure ends the
/// run with an error. Sessions may freely mix shard/operator modes and
/// tree/dense backends.
///
/// Each outcome's answers are **bit-identical** to a sequential
/// single-instance run of the same config over the same values (locked
/// by the multi-session transport differential).
///
/// # Panics
/// Panics when `specs` is empty (same contract as the distributed
/// runtimes).
pub fn run_sessions(conn: Conn, specs: &[SessionSpec]) -> io::Result<Vec<SessionOutcome>> {
    let run = drive_sessions(conn, specs, &RecoveryPolicy::disabled(), || {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "no respawn hook: supervision disabled",
        ))
    })?;
    Ok(run.outcomes)
}

/// [`run_sessions`] with whole-process recovery: when the worker dies,
/// `respawn()` produces a replacement connection and **each unfinished
/// session is individually restored** to its own acknowledged boundary
/// and replayed from its own ring — already-closed sessions are left
/// alone. Requires every spec to be in shard mode ([`WorkerMode::
/// Shard`]): operator sessions hold remote-only state that replay
/// cannot rebuild, so supervising them is rejected with
/// `InvalidInput` (run them unsupervised, or detect-only via
/// [`crate::run_remote_operator_with_policy`]).
pub fn run_sessions_supervised<F>(
    conn: Conn,
    specs: &[SessionSpec],
    policy: &RecoveryPolicy,
    respawn: F,
) -> io::Result<SessionsRun>
where
    F: FnMut() -> io::Result<Conn>,
{
    if policy.enabled() {
        if let Some(s) = specs.iter().position(|s| s.mode != WorkerMode::Shard) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "session {s} is operator-mode: replay recovery requires shard sessions \
                     (operator state cannot be rebuilt)"
                ),
            ));
        }
    }
    drive_sessions(conn, specs, policy, respawn)
}

fn drive_sessions<F>(
    conn: Conn,
    specs: &[SessionSpec],
    policy: &RecoveryPolicy,
    respawn: F,
) -> io::Result<SessionsRun>
where
    F: FnMut() -> io::Result<Conn>,
{
    let n = specs.len();
    assert!(n > 0, "need at least one session");
    for spec in specs {
        assert!(spec.config.period > 0, "need a positive sub-window period");
    }

    policy.arm(&conn)?;
    let breaker = conn.try_clone()?;
    let (reader, mut writer) = hello_handshake(conn)?;
    for (s, spec) in specs.iter().enumerate() {
        writer.write_frame(&Frame::OpenSession {
            session: s as u64,
            config: spec.config.clone(),
            mode: spec.mode,
        })?;
    }
    writer.flush()?;

    let link = MuxLink::new(writer, n, policy.enabled());
    let journal = EventJournal::new();
    let mut collector = MuxCollector {
        link: &link,
        specs,
        policy,
        reader,
        breaker,
        respawn,
        restarts: 0,
        journal: &journal,
        worker_stats: vec![WorkerStats::default(); n],
    };

    // Client-side merge state per shard session (operator sessions get
    // their answers pre-evaluated by the worker).
    let mut merges: Vec<Option<Qlove>> = specs
        .iter()
        .map(|spec| match spec.mode {
            WorkerMode::Shard => Some(Qlove::new(spec.config.clone())),
            WorkerMode::Operator => None,
        })
        .collect();
    let mut answers: Vec<Vec<QloveAnswer>> = vec![Vec::new(); n];
    let mut merged: Vec<u64> = vec![0; n];
    let mut closed: Vec<bool> = vec![false; n];

    let (outcomes, worker_stats) = thread::scope(|scope| -> io::Result<_> {
        let link_ref = &link;
        let dealer = scope.spawn(move || deal_all(link_ref, specs));

        let mut open = n;
        let collected = loop {
            let frame = match collector.read_with_probe() {
                Ok(frame) => frame,
                Err((kind, detect_us, cause)) => match collector.recover(kind, detect_us, cause) {
                    Ok(()) => continue,
                    Err(e) => break Err(e),
                },
            };
            let session_index = |session: u64| -> io::Result<usize> {
                usize::try_from(session)
                    .ok()
                    .filter(|&s| s < n)
                    .ok_or_else(|| protocol(format!("frame for unknown session {session}")))
            };
            match frame {
                Frame::BoundarySummary {
                    session,
                    boundary,
                    epoch: 0,
                    summary,
                } => {
                    let s = match session_index(session) {
                        Ok(s) => s,
                        Err(e) => break Err(e),
                    };
                    let Some(merge) = merges[s].as_mut() else {
                        break Err(protocol(format!(
                            "session {s}: boundary summary from an operator session"
                        )));
                    };
                    if closed[s] || boundary != merged[s] {
                        break Err(protocol(format!(
                            "session {s}: summary for boundary {boundary} out of order \
                             (expected {})",
                            merged[s]
                        )));
                    }
                    let len = specs[s].values.len();
                    let period = specs[s].config.period;
                    let expected = (len - (boundary as usize) * period).min(period) as u64;
                    if summary.total() != expected {
                        break Err(protocol(format!(
                            "session {s} boundary {boundary}: summary covers {} elements, \
                             dealt {expected}",
                            summary.total()
                        )));
                    }
                    if let Some(answer) = merge.merge(&summary) {
                        answers[s].push(answer);
                    }
                    merged[s] += 1;
                    link.ack(s, boundary);
                }
                Frame::Answer {
                    session,
                    boundary,
                    answer,
                } => {
                    let s = match session_index(session) {
                        Ok(s) => s,
                        Err(e) => break Err(e),
                    };
                    if merges[s].is_some() {
                        break Err(protocol(format!(
                            "session {s}: answer frame from a shard session"
                        )));
                    }
                    if closed[s] || boundary != answers[s].len() as u64 {
                        break Err(protocol(format!(
                            "session {s}: answer {boundary} out of order (expected {})",
                            answers[s].len()
                        )));
                    }
                    answers[s].push(answer);
                }
                Frame::CloseSession { session } => {
                    let s = match session_index(session) {
                        Ok(s) => s,
                        Err(e) => break Err(e),
                    };
                    if closed[s] {
                        break Err(protocol(format!("session {s}: duplicate close ack")));
                    }
                    closed[s] = true;
                    open -= 1;
                    link.close_acked(s);
                }
                Frame::Shutdown => {
                    if open > 0 {
                        break Err(protocol(format!(
                            "shutdown ack with {open} sessions still open"
                        )));
                    }
                    break Ok(());
                }
                other => break Err(protocol(format!("unexpected frame {other:?}"))),
            }
        };
        if collected.is_err() {
            collector.fail_all();
        }
        let dealt = join_io(dealer, "dealer");
        collected?;
        dealt?;

        let outcomes = specs
            .iter()
            .enumerate()
            .map(|(s, spec)| SessionOutcome {
                mode: spec.mode,
                answers: std::mem::take(&mut answers[s]),
                pending: merges[s].as_ref().map_or(0, Qlove::pending),
                boundaries: merged[s],
            })
            .collect();
        Ok((outcomes, collector.worker_stats))
    })?;

    Ok(SessionsRun {
        outcomes,
        failures: failures_view(&journal),
        journal,
        worker_stats,
    })
}
