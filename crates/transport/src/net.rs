//! Socket plumbing shared by workers and coordinators: endpoint
//! addressing, listeners, and a duplex connection type that abstracts
//! over TCP and Unix-domain sockets.
//!
//! Endpoints are spelled `tcp:HOST:PORT` (bare `HOST:PORT` also parses
//! as TCP) or `unix:/path/to.sock`. TCP connections set `TCP_NODELAY`:
//! boundary frames are small and latency-sensitive, and the batched
//! event frames are already large enough to fill segments.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A worker address: TCP host:port or a Unix-domain socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path (Unix targets only).
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse `tcp:HOST:PORT`, bare `HOST:PORT`, or `unix:PATH`.
    pub fn parse(spec: &str) -> io::Result<Self> {
        if let Some(path) = spec.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                if path.is_empty() {
                    return Err(bad_spec(spec, "empty unix socket path"));
                }
                return Ok(Endpoint::Unix(PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            {
                return Err(bad_spec(spec, "unix sockets unsupported on this target"));
            }
        }
        let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
        if addr.rsplit_once(':').is_none_or(|(host, port)| {
            host.is_empty() || port.is_empty() || port.parse::<u16>().is_err()
        }) {
            return Err(bad_spec(spec, "expected tcp:HOST:PORT or unix:PATH"));
        }
        Ok(Endpoint::Tcp(addr.to_string()))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

fn bad_spec(spec: &str, why: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("bad endpoint {spec:?}: {why}"),
    )
}

/// A bound worker listener. Dropping a Unix listener removes its socket
/// file.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Bind to `endpoint`. A TCP port of 0 picks a free port (read the
    /// chosen one back with [`Listener::local_endpoint`]); a stale Unix
    /// socket file left by a killed worker is removed first.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// The endpoint this listener is actually bound to (resolves TCP
    /// port 0 to the kernel-chosen port).
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix listener"))?;
                Ok(Endpoint::Unix(path.to_path_buf()))
            }
        }
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

#[cfg(unix)]
impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(l) = self {
            if let Ok(addr) = l.local_addr() {
                if let Some(path) = addr.as_pathname() {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

/// A duplex byte stream to a peer, over TCP or a Unix-domain socket.
///
/// [`Conn::try_clone`] yields an independently usable handle to the
/// same socket, which is how the coordinator splits each worker
/// connection into a dealer-owned write half and a collector-owned
/// read half.
#[derive(Debug)]
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connect to `endpoint` once.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Connect to `endpoint`, retrying until `timeout` elapses — the
    /// normal way for a coordinator to reach workers that are still
    /// starting up.
    pub fn connect_retry(endpoint: &Endpoint, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(endpoint) {
                Ok(conn) => return Ok(conn),
                Err(e) if Instant::now() >= deadline => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connecting to {endpoint} timed out: {e}"),
                    ));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// A second handle to the same socket.
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }

    /// Set a deadline on blocking reads: a read that makes no progress
    /// for `timeout` returns `WouldBlock`/`TimedOut` instead of
    /// blocking forever. `None` restores indefinite blocking.
    ///
    /// The deadline is a property of the underlying socket, so it is
    /// shared with every [`Conn::try_clone`] handle — the coordinator
    /// relies on this to bound both the collector's summary reads and
    /// the dealer's writes with one setup call per worker.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Set a deadline on blocking writes, mirroring
    /// [`Conn::set_read_timeout`]: a write stalled on a full socket
    /// buffer (the signature of a frozen peer) errors after `timeout`
    /// instead of wedging the writer thread.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(timeout),
        }
    }

    /// Shut down both directions — unblocks any thread blocked on this
    /// socket (the coordinator's error path uses this to free a dealer
    /// stuck writing to a wedged worker).
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_and_display_roundtrip() {
        let tcp = Endpoint::parse("127.0.0.1:9000").unwrap();
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:9000".into()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:9000");
        assert_eq!(
            Endpoint::parse("tcp:localhost:80").unwrap().to_string(),
            "tcp:localhost:80"
        );
        #[cfg(unix)]
        {
            let unix = Endpoint::parse("unix:/tmp/w.sock").unwrap();
            assert_eq!(unix.to_string(), "unix:/tmp/w.sock");
            assert_eq!(Endpoint::parse(&unix.to_string()).unwrap(), unix);
        }
    }

    #[test]
    fn endpoint_parse_rejects_garbage() {
        for bad in [
            "",
            "unix:",
            "nohost",
            "host:",
            ":80",
            "host:notaport",
            "tcp:host",
        ] {
            assert!(Endpoint::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn tcp_listener_resolves_port_zero() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let Endpoint::Tcp(addr) = &ep else {
            panic!("expected tcp endpoint")
        };
        assert!(!addr.ends_with(":0"), "port 0 must resolve, got {addr}");
        // And the resolved endpoint is connectable.
        let _conn = Conn::connect(&ep).unwrap();
    }

    #[test]
    fn read_timeout_unblocks_a_silent_peer() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let ep = listener.local_endpoint().unwrap();
        let mut conn = Conn::connect(&ep).unwrap();
        let _peer = listener.accept().unwrap(); // never writes
        conn.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let start = Instant::now();
        let err = conn.read(&mut [0u8; 8]).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a timeout kind, got {err:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(5), "must not block");
        // Clearing the deadline restores a usable connection.
        conn.set_read_timeout(None).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_listener_cleans_up_socket_file() {
        let path = std::env::temp_dir().join(format!("qlove-net-test-{}.sock", std::process::id()));
        let ep = Endpoint::Unix(path.clone());
        {
            let listener = Listener::bind(&ep).unwrap();
            assert!(path.exists());
            let _conn = Conn::connect_retry(&ep, Duration::from_secs(1)).unwrap();
            let _accepted = listener.accept().unwrap();
        }
        assert!(
            !path.exists(),
            "dropping the listener must remove the socket file"
        );
        // Re-binding over a stale file (simulated) also works.
        std::fs::write(&path, b"stale").unwrap();
        let _listener = Listener::bind(&ep).unwrap();
    }
}
